"""Quickstart: the paper's running example, end to end.

Reconstructs the Employee table of Figure 1 through the transactional API
and runs the three example queries of Section 3.1:

* Example 1 (Figure 2) — one-dimensional temporal aggregation: total
  payroll in 1995 for each version of the database;
* Example 2 (Figure 3) — two-dimensional temporal aggregation: payroll
  for every business moment and every version;
* Example 3 (Figure 4) — windowed temporal aggregation: payroll at the
  beginning of each year, current database state.

Run:  python examples/quickstart.py
"""

from repro import ParTime, TemporalAggregationQuery, WindowSpec, date_to_ts
from repro.temporal import (
    Column,
    ColumnType,
    CurrentVersion,
    Overlaps,
    TableSchema,
    TemporalTable,
)


def build_employee_table() -> TemporalTable:
    """The 9-row history of Figure 1."""
    schema = TableSchema(
        name="employee",
        columns=[
            Column("name", ColumnType.STRING),
            Column("descr", ColumnType.STRING),
            Column("salary", ColumnType.INT),
        ],
        business_dims=["bt"],
        key="name",
    )
    table = TemporalTable(schema)

    jan_1993 = date_to_ts(1993)
    aug_1993 = date_to_ts(1993, 8, 1)
    jun_1994 = date_to_ts(1994, 6, 1)
    jan_1995 = date_to_ts(1995)

    table.begin()  # transaction t0: initial hires
    table.insert({"name": "Anna", "descr": "CEO", "salary": 10_000}, {"bt": jan_1993})
    table.insert({"name": "Ben", "descr": "Coder", "salary": 5_000}, {"bt": jan_1993})
    table.commit()
    for _ in range(4):  # t1 .. t4 happen elsewhere in the database
        table.commit()
    table.insert(  # t5: Chris joins
        {"name": "Chris", "descr": "Coder", "salary": 5_000}, {"bt": aug_1993}
    )
    table.commit()  # t6
    table.begin()  # t7: Anna's raise and Ben's promotion, as of June 1994
    table.update("Anna", {"salary": 15_000}, {"bt": jun_1994})
    table.update("Ben", {"descr": "Manager"}, {"bt": jun_1994})
    table.commit()
    for _ in range(3):  # t8 .. t10
        table.commit()
    table.update("Ben", {"salary": 8_000}, {"bt": jun_1994})  # t11
    for _ in range(4):  # t12 .. t15
        table.commit()
    table.delete("Chris", {"bt": jan_1995})  # t16: Chris leaves end of 1994
    return table


def main() -> None:
    table = build_employee_table()
    partime = ParTime()

    print("=== Example 1: payroll in 1995, per database version (Fig. 2) ===")
    query1 = TemporalAggregationQuery(
        varied_dims=("tt",),
        value_column="salary",
        aggregate="sum",
        predicate=Overlaps("bt", date_to_ts(1995), date_to_ts(1996)),
    )
    result1 = partime.execute(table, query1, workers=2)
    print(result1.format_table(), "\n")

    print("=== Example 2: payroll per business moment and version (Fig. 3) ===")
    query2 = TemporalAggregationQuery(
        varied_dims=("bt", "tt"),
        value_column="salary",
        aggregate="sum",
        pivot="tt",
    )
    result2 = partime.execute(table, query2, workers=2)
    print(result2.format_table(), "\n")

    print("=== Example 3: payroll at the start of each year (Fig. 4) ===")
    query3 = TemporalAggregationQuery(
        varied_dims=("bt",),
        value_column="salary",
        aggregate="sum",
        predicate=CurrentVersion("tt"),
        window=WindowSpec(origin=date_to_ts(1993), stride=365, count=3),
    )
    result3 = partime.execute(table, query3, workers=2)
    for row in result3:
        year = 1993 + (row.interval().start - date_to_ts(1993)) // 365
        print(f"  payroll at 01-01-{year}: {row.value:,.0f}")

    print("\n=== Bonus: who earns the median salary over time? ===")
    query4 = TemporalAggregationQuery(
        varied_dims=("tt",), value_column="salary", aggregate="median"
    )
    result4 = partime.execute(table, query4, workers=2)
    print(result4.format_table())


if __name__ == "__main__":
    main()
