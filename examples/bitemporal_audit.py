"""Bi-temporal auditing: "what did we know, and when did we know it?"

Bi-temporal tables answer two different questions at once: what was true
in the real world (business time) and what the database *believed* at any
past moment (transaction time).  This example builds a small portfolio
ledger with retroactive corrections and uses ParTime to audit it:

* a two-dimensional aggregation shows how the reported exposure for every
  business day changed as corrections arrived;
* time-travel point queries reconstruct "the report as printed" on a
  given day vs. "the truth as known today";
* a MAX aggregation finds the peak single-position exposure over time —
  exercising the non-incremental aggregate path (Section 3.2.3).

Run:  python examples/bitemporal_audit.py
"""

from repro import ParTime, TemporalAggregationQuery
from repro.temporal import (
    Column,
    ColumnType,
    CurrentVersion,
    TableSchema,
    TemporalTable,
    TimeTravel,
)


def build_ledger() -> TemporalTable:
    """A positions ledger; business time = day the position was held."""
    schema = TableSchema(
        name="positions",
        columns=[
            Column("position", ColumnType.STRING),
            Column("exposure", ColumnType.INT),
        ],
        business_dims=["day"],
        key="position",
    )
    ledger = TemporalTable(schema)

    # v0: initial bookings — alpha held from day 0, beta from day 2.
    ledger.begin()
    ledger.insert({"position": "alpha", "exposure": 100}, {"day": (0, 10)})
    ledger.insert({"position": "beta", "exposure": 50}, {"day": (2, 10)})
    ledger.commit()

    # v1: alpha doubled from day 5 onward.
    ledger.update("alpha", {"exposure": 200}, {"day": (5, 10)})

    # v2: a *retroactive correction* — beta's exposure from day 2 to 4 was
    # actually 80, not 50 (back-office found a booking error).
    ledger.update("beta", {"exposure": 80}, {"day": (2, 4)})

    # v3: gamma was booked late, valid from day 1.
    ledger.insert({"position": "gamma", "exposure": 40}, {"day": (1, 10)})
    return ledger


def main() -> None:
    ledger = build_ledger()
    partime = ParTime()

    print("=== Exposure by (business day, database version) ===")
    audit = partime.execute(
        ledger,
        TemporalAggregationQuery(
            varied_dims=("day", "tt"), value_column="exposure", pivot="tt"
        ),
        workers=2,
    )
    print(audit.format_table())

    print("\n=== The day-3 exposure, as believed at each version ===")
    for version in range(4):
        value = audit.value_at(3, version)
        print(f"  as of v{version}: total exposure on day 3 = {value}")

    print("\n=== Report reconstruction ===")
    printed = partime.execute(
        ledger,
        TemporalAggregationQuery(
            varied_dims=("day",),
            value_column="exposure",
            predicate=TimeTravel("tt", 1),  # the report printed after v1
        ),
        workers=2,
    )
    truth = partime.execute(
        ledger,
        TemporalAggregationQuery(
            varied_dims=("day",),
            value_column="exposure",
            predicate=CurrentVersion("tt"),  # what we know today
        ),
        workers=2,
    )
    for day in range(0, 10, 2):
        was = printed.value_at(day) or 0
        now = truth.value_at(day) or 0
        delta = "  <-- restated!" if was != now else ""
        print(f"  day {day}: printed {was:>4}, corrected {now:>4}{delta}")

    print("\n=== Peak single-position exposure over versions (MAX) ===")
    peak = partime.execute(
        ledger,
        TemporalAggregationQuery(
            varied_dims=("tt",), value_column="exposure", aggregate="max"
        ),
        workers=2,
    )
    print(peak.format_table())


if __name__ == "__main__":
    main()
