"""The SQL surface and the future-work extensions, in one tour.

Shows what a downstream user of the library touches:

1. the temporal SQL dialect (``GROUP BY TEMPORAL``, ``AS OF``,
   ``CURRENT``, ``OVERLAPS``, ``WINDOW``) over a registered table;
2. ``EXPLAIN`` and optimizer-tuned degrees of parallelism (the paper's
   future work #3);
3. the ParTime-style parallel temporal join (future work #1): which
   customer residences overlapped which order validity spans.

Run:  python examples/sql_interface.py
"""

from repro.core import ParTimeJoin
from repro.sql import Database
from repro.workloads import TPCBiHConfig, TPCBiHDataset


def main() -> None:
    print("generating a TPC-BiH instance ...")
    dataset = TPCBiHDataset(TPCBiHConfig(scale_factor=0.3, seed=21))
    db = Database(workers=4)
    db.register("customer", dataset.customer)
    db.register("orders", dataset.orders)

    print("\n--- COUNT(*) time travel ---")
    mid = dataset.mid_version(dataset.orders)
    n = db.query(f"SELECT COUNT(*) FROM orders WHERE tt AS OF {mid}")
    print(f"orders visible at version {mid}: {n:,}")

    print("\n--- r1 via SQL: US customers over system time ---")
    result = db.query(
        "SELECT COUNT(*) FROM customer WHERE nationkey = 24 "
        "GROUP BY TEMPORAL (tt)"
    )
    print(f"{len(result)} intervals; last 3:")
    for iv, value in result.pairs()[-3:]:
        print(f"  {iv}: {value}")

    print("\n--- windowed revenue over business time ---")
    result = db.query(
        "SELECT SUM(totalprice) FROM orders WHERE CURRENT(tt) "
        "GROUP BY TEMPORAL (bt) WINDOW FROM 0 STRIDE 240 COUNT 10"
    )
    for point, value in result.points():
        print(f"  day {point:>5}: {value or 0:>14,.0f}")

    sql = (
        "SELECT AVG(totalprice) FROM orders WHERE CURRENT(tt) "
        "GROUP BY TEMPORAL (bt)"
    )
    print("\n--- EXPLAIN + optimizer-tuned parallelism ---")
    print(db.explain(sql))
    best = db.tune_workers(sql, max_workers=16, probe_workers=4)
    print(f"optimizer-chosen workers: {best}")
    result = db.query(sql, workers=best)
    print(f"{len(result)} result intervals")

    print("\n--- parallel temporal join (future work #1) ---")
    rows = ParTimeJoin().execute(
        dataset.orders,
        dataset.customer,
        left_key="custkey",
        right_key="custkey",
        dim="bt",
        workers=4,
    )
    print(
        f"orders x customer on custkey with business-time overlap: "
        f"{len(rows):,} matched version pairs"
    )
    sample = rows[0]
    print(f"  e.g. key={sample.key}: overlap {sample.interval}")


if __name__ == "__main__":
    main()
