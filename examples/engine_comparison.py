"""Engine comparison on TPC-BiH: the paper's Section 5.4 in miniature.

Generates a small TPC-BiH instance, loads it into all four engines —
Crescando+ParTime, the Timeline Index, System D and System M — and runs a
representative subset of the Table 2 queries on each, printing response
times, bulk-load times and memory footprints (Figures 17, Tables 3-4).

Run:  python examples/engine_comparison.py
"""

import math

from repro.bench import measure_response_time
from repro.bench.tpcbih_runner import VALUE_COLUMNS
from repro.storage import CrescandoEngine
from repro.systems import SystemD, SystemM
from repro.timeline import TimelineEngine
from repro.workloads import TPCBIH_QUERIES, TPCBiHConfig, TPCBiHDataset


def fmt(seconds: float) -> str:
    if math.isinf(seconds):
        return "TIMEOUT"
    if math.isnan(seconds):
        return "n/a"
    return f"{seconds * 1e3:10.3f} ms"


def main() -> None:
    print("generating TPC-BiH (SF=0.5) ...")
    dataset = TPCBiHDataset(TPCBiHConfig(scale_factor=0.5, seed=9))
    tables = {"customer": dataset.customer, "orders": dataset.orders}
    for name, table in tables.items():
        print(f"  {name}: {len(table):,} versions")

    engines = {
        "ParTime (8 cores)": lambda _t: CrescandoEngine.response_time_config(8),
        "Timeline (1 core)": lambda t: TimelineEngine(VALUE_COLUMNS[t]),
        "System D": lambda _t: SystemD(),
        "System M": lambda _t: SystemM(),
    }

    print("\nbulk load (simulated seconds) and memory (bytes), orders table:")
    loaded: dict[str, dict[str, object]] = {}
    for ename, factory in engines.items():
        loaded[ename] = {}
        for tname, table in tables.items():
            engine = factory(tname)
            load_s = engine.bulkload(table)
            loaded[ename][tname] = engine
            if tname == "orders":
                print(
                    f"  {ename:>18}: load {load_s * 1e3:9.2f} ms,"
                    f" resident {engine.memory_bytes():>12,} B"
                )

    subset = ["t2", "t6_sys", "t9", "r1", "r2", "r4"]
    print(f"\nresponse times for {subset}:")
    header = f"  {'query':>7} " + "".join(f"{e:>22}" for e in engines)
    print(header)
    for qname in subset:
        table_name, ops = TPCBIH_QUERIES[qname](dataset)
        if not isinstance(ops, list):
            ops = [ops]
        cells = []
        for ename in engines:
            engine = loaded[ename][table_name]
            total = 0.0
            for op in ops:
                seconds = measure_response_time(engine, op)
                total = seconds if not math.isfinite(seconds) else total + seconds
            cells.append(f"{fmt(total):>22}")
        print(f"  {qname:>7} " + "".join(cells))

    print(
        "\nexpected shape: Timeline fastest (precomputation), ParTime close"
        "\nbehind (parallelism), System M an order slower, System D far worse."
    )

    # Bonus: the future-work hybrid — frozen history from a partial index,
    # fresh data by scan, zero maintenance under updates.
    from repro.timeline import HybridAggregator
    from repro.core import TemporalAggregationQuery

    hybrid = HybridAggregator(dataset.orders)
    query = TemporalAggregationQuery(
        varied_dims=("tt",), value_column="totalprice", aggregate="sum"
    )
    import time as _time

    t0 = _time.perf_counter()
    result = hybrid.execute(query, workers=4)
    seconds = _time.perf_counter() - t0
    print(
        f"\nhybrid index+scan (future work #2): full TT aggregation in "
        f"{seconds * 1e3:.2f} ms, {len(result)} intervals, "
        f"{hybrid.fresh_rows} fresh rows to scan"
    )


if __name__ == "__main__":
    main()
