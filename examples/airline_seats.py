"""Airline scenario: the workload that motivated ParTime.

Section 1: "analysts are interested to plot the number of available seats
of all flights for a certain connection over time", inside a system that
simultaneously serves lookups and absorbs a constant update stream — all
through shared scans (Section 4).

This example:

1. generates a synthetic bookings table (the Amadeus substitute);
2. builds a Crescando-style cluster (8 storage nodes, 2 aggregators);
3. runs one *mixed batch*: booking lookups, a passenger list, two
   temporal aggregations (ta1/ta2 of Table 1) and a burst of updates —
   all in one shared-scan cycle;
4. plots (as ASCII) the booked seats of one flight over business time.

Run:  python examples/airline_seats.py
"""

from repro.storage import Cluster
from repro.workloads import AmadeusConfig, AmadeusWorkload


def ascii_plot(points, width: int = 48) -> str:
    """A tiny horizontal bar chart for (label, value) pairs."""
    if not points:
        return "(no data)"
    peak = max(v for _l, v in points) or 1
    lines = []
    for label, value in points:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"  {label:>10}  {bar} {value:.0f}")
    return "\n".join(lines)


def main() -> None:
    print("generating bookings ...")
    workload = AmadeusWorkload(AmadeusConfig(num_bookings=30_000, seed=4))
    print(
        f"  {workload.config.num_bookings:,} bookings, "
        f"{len(workload.table):,} versions "
        f"({len(workload.table) / workload.config.num_bookings:.1f} per booking)"
    )

    cluster = Cluster.from_table(
        workload.table, num_storage=8, num_aggregators=2, sharing=True
    )

    # One shared-scan cycle: updates + a mixed query batch.
    flight = 42
    ta1 = workload.ta1(flight_id=flight)
    ta2 = workload.ta2(flight_id=flight)
    seats = workload.seats_over_time(flight_id=flight)
    lookups = [workload.booking_lookup() for _ in range(20)]
    updates = workload.update_stream(25)
    batch = cluster.execute_batch(updates + [ta1, ta2, seats] + lookups)

    print(
        f"\nmixed batch: {len(updates)} updates + {3 + len(lookups)} queries "
        f"in one shared scan cycle"
    )
    print(
        f"  simulated cycle time: {batch.simulated_seconds * 1e3:.2f} ms "
        f"(writes {batch.write_seconds * 1e3:.2f}, scan "
        f"{batch.scan_seconds * 1e3:.2f}, merge {batch.merge_seconds * 1e3:.2f})"
    )

    print(f"\nta1 — open bookings of flight {flight} per database version:")
    result = batch.results[ta1.op_id]
    for iv, value in result.pairs()[-5:]:
        print(f"  version {iv}: {value}")

    print(f"\nta2 — valid tickets of flight {flight} over business time:")
    result = batch.results[ta2.op_id]
    print(f"  {len(result)} intervals; last: {result.pairs()[-1]}")

    print(f"\nbooked seats of flight {flight}, weekly samples (current state):")
    points = [
        (f"day {iv.start:>3}", value)
        for iv, value in batch.results[seats.op_id].pairs()
        if value
    ]
    print(ascii_plot(points[:20]))


if __name__ == "__main__":
    main()
