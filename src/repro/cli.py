"""Command-line interface: ``python -m repro``.

Subcommands:

``demo``
    The paper's running example (Figures 1-4) on stdout.
``sql``
    Run one statement of the temporal SQL dialect against a generated
    dataset (``employee``, ``amadeus`` or ``tpcbih``); with no statement,
    an interactive REPL.
``serve``
    The SQL front door: an asyncio PostgreSQL wire-protocol server with
    batch admission control over a generated dataset (docs/serving.md).
``tables``
    Show the tables and schemas of a generated dataset.
``experiments``
    List the paper's experiments and the pytest targets that regenerate
    them (and show any results already produced).
``lint``
    Run the parallel-safety lint rules — module-local PT001–PT005 plus
    the whole-program PT006–PT010 family — over source paths; supports
    ``--format=sarif``, ``--baseline`` ratcheting, an mtime+hash summary
    cache and a runtime ``--budget``; exits nonzero when findings remain
    (see ``docs/static_analysis.md``).
``trace``
    Run a workload (``demo`` or a Python script) under the observability
    layer and print its span tree and metric snapshot; ``--json`` writes
    both to a file and ``--chrome`` exports the reconstructed per-core
    schedule for chrome://tracing / Perfetto (see
    ``docs/observability.md``).
``bench``
    The unified benchmark runner: execute any subset of the
    ``benchmarks/bench_*.py`` scripts (or ``all``), optionally on smoke
    datasets, and emit one schema-versioned ``BENCH_<name>.json``
    telemetry file each; ``--check BASELINE`` diffs the produced files
    against a committed baseline and exits nonzero on regression.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.simtime.executor import BACKENDS
from repro.sql import Database, SqlError
from repro.temporal import TemporalTable


def _load_dataset(
    name: str,
    scale: float,
    seed: int,
    backend: str = "serial",
    faults: str | None = None,
    adaptive: bool = False,
) -> Database:
    """Build a Database with the requested dataset registered."""
    db = Database(workers=4, backend=backend, faults=faults, adaptive=adaptive)
    if name == "employee":
        db.register("employee", _employee_fallback())
    elif name == "amadeus":
        from repro.workloads import AmadeusConfig, AmadeusWorkload

        workload = AmadeusWorkload(
            AmadeusConfig(num_bookings=max(100, int(20_000 * scale)), seed=seed)
        )
        db.register("bookings", workload.table)
    elif name == "tpcbih":
        from repro.workloads import TPCBiHConfig, TPCBiHDataset

        dataset = TPCBiHDataset(TPCBiHConfig(scale_factor=scale, seed=seed))
        db.register("customer", dataset.customer)
        db.register("orders", dataset.orders)
    else:
        raise SystemExit(f"unknown dataset {name!r}")
    return db


def _employee_fallback() -> TemporalTable:
    """Build Figure 1 without importing the examples package (installed
    environments may not ship ``examples/``)."""
    from repro.temporal import Column, ColumnType, TableSchema
    from repro.temporal.timestamps import date_to_ts

    schema = TableSchema(
        "employee",
        [
            Column("name", ColumnType.STRING),
            Column("descr", ColumnType.STRING),
            Column("salary", ColumnType.INT),
        ],
        business_dims=["bt"],
        key="name",
    )
    table = TemporalTable(schema)
    table.begin()
    table.insert({"name": "Anna", "descr": "CEO", "salary": 10_000},
                 {"bt": date_to_ts(1993)})
    table.insert({"name": "Ben", "descr": "Coder", "salary": 5_000},
                 {"bt": date_to_ts(1993)})
    table.commit()
    for _ in range(4):
        table.commit()
    table.insert({"name": "Chris", "descr": "Coder", "salary": 5_000},
                 {"bt": date_to_ts(1993, 8, 1)})
    table.commit()
    table.begin()
    table.update("Anna", {"salary": 15_000}, {"bt": date_to_ts(1994, 6, 1)})
    table.update("Ben", {"descr": "Manager"}, {"bt": date_to_ts(1994, 6, 1)})
    table.commit()
    for _ in range(3):
        table.commit()
    table.update("Ben", {"salary": 8_000}, {"bt": date_to_ts(1994, 6, 1)})
    for _ in range(4):
        table.commit()
    table.delete("Chris", {"bt": date_to_ts(1995)})
    return table


def cmd_demo(_args) -> int:
    from repro.core import ParTime, TemporalAggregationQuery, WindowSpec
    from repro.temporal import CurrentVersion, Overlaps
    from repro.temporal.timestamps import date_to_ts

    table = _employee_fallback()
    partime = ParTime()
    print("Figure 2 — payroll in 1995 per database version:")
    result = partime.execute(
        table,
        TemporalAggregationQuery(
            varied_dims=("tt",), value_column="salary",
            predicate=Overlaps("bt", date_to_ts(1995), date_to_ts(1996)),
        ),
        workers=2,
    )
    print(result.format_table())
    print("\nFigure 3 — payroll per business moment and version:")
    result = partime.execute(
        table,
        TemporalAggregationQuery(
            varied_dims=("bt", "tt"), value_column="salary", pivot="tt"
        ),
        workers=2,
    )
    print(result.format_table())
    print("\nFigure 4 — payroll at the start of each year (current state):")
    result = partime.execute(
        table,
        TemporalAggregationQuery(
            varied_dims=("bt",), value_column="salary",
            predicate=CurrentVersion("tt"),
            window=WindowSpec(date_to_ts(1993), 365, 3),
        ),
        workers=2,
    )
    print(result.format_table())
    return 0


def cmd_sql(args) -> int:
    db = _load_dataset(
        args.dataset,
        args.scale,
        args.seed,
        backend=args.backend,
        faults=args.faults or None,
        adaptive=args.adaptive,
    )
    try:
        if args.statement is None:
            return _sql_repl(db, args)
        if args.explain:
            print(db.explain(args.statement))
            return 0
        result = db.query(args.statement, workers=args.workers)
    except SqlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        db.close()
    if isinstance(result, int):
        print(result)
    else:
        print(result.format_table(max_rows=args.max_rows))
    return 0


def _sql_repl(db, args) -> int:
    """Interactive statement loop (``python -m repro sql`` with no
    statement).

    Exits cleanly — no traceback, executor closed by the caller's
    ``finally`` — on EOF (^D), ``\\q``, *and* Ctrl-C: a REPL that dumps a
    KeyboardInterrupt traceback while holding a process pool leaks
    workers and ``partime_*`` shm blocks (tests/test_sql_repl.py pins
    all three exits against a real subprocess)."""
    interactive = sys.stdin.isatty()
    prompt = "partime> " if interactive else ""
    if interactive:
        print(
            f"ParTime SQL ({args.dataset} dataset, backend={args.backend}) "
            "— \\q or ^D to quit"
        )
    while True:
        try:
            line = input(prompt)
        except EOFError:
            break
        except KeyboardInterrupt:
            # ^C at the prompt: leave quietly, like ^D.  (A newline keeps
            # the shell prompt off the interrupted input line.)
            print()
            break
        statement = line.strip()
        if not statement:
            continue
        if statement in ("\\q", "quit", "exit"):
            break
        try:
            if statement.upper().startswith("EXPLAIN "):
                print(db.explain(statement[len("EXPLAIN "):]))
                continue
            result = db.query(statement, workers=args.workers)
        except SqlError as exc:
            print(f"error: {exc}", file=sys.stderr)
            continue
        except KeyboardInterrupt:
            print("\n(statement interrupted)", file=sys.stderr)
            continue
        if isinstance(result, int):
            print(result)
        else:
            print(result.format_table(max_rows=args.max_rows))
    return 0


def cmd_serve(args) -> int:
    """``python -m repro serve`` — the wire-protocol front door."""
    import asyncio

    from repro.server import ParTimeServer, ServingEngine

    db = _load_dataset(
        args.dataset,
        args.scale,
        args.seed,
        backend=args.backend,
        faults=args.faults or None,
    )
    engine = ServingEngine(
        db, storage_nodes=args.nodes, aggregators=args.aggregators
    )
    server = ParTimeServer(
        engine,
        host=args.host,
        port=args.port,
        min_cycle_seconds=args.min_cycle_ms / 1000.0,
    )

    async def _serve() -> None:
        import signal

        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await server.start()
        print(
            f"partime server listening on {server.host}:{server.port} "
            f"(dataset={args.dataset}, nodes={args.nodes}, "
            f"backend={args.backend}"
            + (f", faults={args.faults}" if args.faults else "")
            + ") — psql quickstart: "
            f"psql -h {server.host} -p {server.port} -d partime",
            flush=True,
        )
        await stop.wait()
        await server.stop()

    try:
        asyncio.run(_serve())
    finally:
        engine.close()
    former = server.former
    print(
        "server closed: "
        f"connections={server.connections_served} "
        f"queries={former.queries_served} batches={former.batches_cut}"
    )
    if db.faults is not None:
        summary = db.faults.summary()
        print(
            "faults: "
            f"injected={summary['injected']} retries={summary['retries']} "
            f"gave_up={summary['gave_up']}"
        )
    if args.events_jsonl:
        from repro.obs.events import events

        count = events().write_jsonl(args.events_jsonl)
        print(f"events: wrote {count} record(s) to {args.events_jsonl}")
    return 0


def cmd_tables(args) -> int:
    db = _load_dataset(args.dataset, args.scale, args.seed)
    for name in sorted(db._tables):  # noqa: SLF001 — CLI introspection
        table = db.table(name)
        schema = table.schema
        dims = ", ".join(d.name for d in schema.time_dimensions)
        print(f"{name} ({len(table):,} version rows)")
        for column in schema.columns:
            marker = "  key " if column.name == schema.key else "      "
            print(f"{marker}{column.name}: {column.ctype.value}")
        print(f"      time dimensions: {dims}")
    return 0


_EXPERIMENTS = [
    ("Table 1", "Amadeus query mix", "bench_table1_amadeus_mix.py"),
    ("Table 2", "TPC-BiH query set", "bench_table2_tpcbih_queries.py"),
    ("Figure 12", "Throughput small DB, no sharing", "bench_fig12_tput_small_nosharing.py"),
    ("Figure 13", "Response times small DB", "bench_fig13_resptime_small.py"),
    ("Figure 14", "Throughput large DB, sharing", "bench_fig14_tput_large_sharing.py"),
    ("Figure 15", "Response time vs cores", "bench_fig15_resptime_large_cores.py"),
    ("Figure 16", "Throughput with 250 upd/s", "bench_fig16_tput_updates.py"),
    ("Figure 17", "TPC-BiH SF=1, all systems", "bench_fig17_tpcbih_small.py"),
    ("Figure 18", "TPC-BiH SF=100, timeouts", "bench_fig18_tpcbih_large.py"),
    ("Figure 19", "r2/r4 vs cores", "bench_fig19_parallelization.py"),
    ("Table 3", "Memory consumption", "bench_table3_memory.py"),
    ("Table 4", "Bulk-load time", "bench_table4_bulkload.py"),
    ("Ablation", "Delta-map backends", "bench_ablation_deltamap.py"),
    ("Ablation", "Pivot choice", "bench_ablation_pivot.py"),
    ("Ablation", "Windowed fast path", "bench_ablation_windowed.py"),
    ("Ablation", "Parallel Step 2", "bench_ablation_parallel_merge.py"),
    ("Ablation", "Partitioning/stragglers", "bench_ablation_partitioning.py"),
    ("Ablation", "Timeline maintenance", "bench_ablation_maintenance.py"),
    ("Ablation", "NUMA placement", "bench_ablation_numa.py"),
    ("Ablation", "Aggregation Trees", "bench_ablation_aggtree.py"),
    ("Ablation", "Hybrid index + scan", "bench_ablation_hybrid.py"),
]


def cmd_experiments(_args) -> int:
    repo = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    results_dir = os.path.join(repo, "benchmarks", "results")
    print("experiment   what                             regenerate with")
    print("-" * 78)
    for exp, what, bench in _EXPERIMENTS:
        print(f"{exp:<12} {what:<32} pytest benchmarks/{bench} --benchmark-only")
    if os.path.isdir(results_dir):
        produced = sorted(os.listdir(results_dir))
        print(f"\n{len(produced)} result artifact(s) in benchmarks/results/")
    else:
        print("\nno results yet — run: pytest benchmarks/ --benchmark-only")
    return 0


def cmd_lint(args) -> int:
    import time as _time

    from repro.analysis import explain_rules, format_findings, lint_paths
    from repro.analysis.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )

    if args.explain:
        print(explain_rules())
        return 0
    paths = args.paths
    if not paths:
        # Default lint surface when run from a checkout: the package
        # source plus the measurement and example entry points.
        defaults = [
            p for p in ("src/repro", "benchmarks", "examples")
            if os.path.isdir(p)
        ]
        paths = defaults or ["."]
    select = args.select.split(",") if args.select else None
    cache = None
    if args.cache:
        from repro.analysis.cache import SummaryCache

        cache = SummaryCache(args.cache)
    start = _time.perf_counter()
    try:
        findings = lint_paths(paths, select=select, cache=cache)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = _time.perf_counter() - start

    if args.write_baseline:
        count = write_baseline(findings, args.write_baseline)
        print(
            f"wrote baseline {args.write_baseline} "
            f"({count} accepted finding(s))"
        )
        return 0
    baselined = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, baselined = apply_baseline(findings, baseline)

    print(format_findings(findings, fmt=args.format))
    if baselined and args.format == "text":
        print(f"({baselined} baselined finding(s) not shown)", file=sys.stderr)
    if cache is not None and args.format == "text":
        print(
            f"(summary cache: {cache.hits} hit(s), "
            f"{cache.misses} miss(es))",
            file=sys.stderr,
        )
    if args.budget and elapsed > args.budget:
        print(
            f"error: lint took {elapsed:.1f}s, over the "
            f"{args.budget:.0f}s budget",
            file=sys.stderr,
        )
        return 3
    return 1 if findings else 0


def cmd_trace(args) -> int:
    """Run a workload under an active tracer; print tree + metrics."""
    import json
    import runpy

    from repro.obs import metrics, tracing

    target = args.target
    if target != "demo" and not target.endswith(".py"):
        print(
            f"error: trace target must be 'demo' or a .py workload script, "
            f"got {target!r}",
            file=sys.stderr,
        )
        return 2
    if target != "demo" and not os.path.isfile(target):
        print(f"error: no such workload script: {target}", file=sys.stderr)
        return 2

    metrics().reset()
    label = "demo" if target == "demo" else os.path.basename(target)
    with tracing(f"trace:{label}") as tracer:
        if target == "demo":
            cmd_demo(args)
        else:
            runpy.run_path(target, run_name="__main__")

    print("\n=== trace ===")
    print(tracer.root.format_tree())
    print("\n=== metrics ===")
    print(metrics().format_table())
    if args.json:
        payload = {
            "target": target,
            "trace": tracer.root.to_dict(),
            "metrics": metrics().snapshot(),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\ntrace JSON written to {args.json}")
    if args.chrome:
        from repro.obs import schedule_from_span, write_chrome_trace

        report = schedule_from_span(tracer.root)
        out = write_chrome_trace(args.chrome, report, label=f"trace:{label}")
        print(f"chrome trace written to {out} "
              "(load in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def cmd_bench(args) -> int:
    """The unified benchmark runner + regression gate."""
    from repro.bench.runner import (
        BenchContext,
        check_results,
        discover,
        run_many,
    )

    try:
        registry = discover()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.list:
        for name in sorted(registry):
            print(name)
        return 0

    run_names: list[str] = []
    if args.names:
        if "all" in args.names:
            run_names = sorted(registry)
        else:
            unknown = [n for n in args.names if n not in registry]
            if unknown:
                known = ", ".join(sorted(registry))
                print(
                    f"error: unknown benchmark(s): {', '.join(unknown)}\n"
                    f"known: {known}",
                    file=sys.stderr,
                )
                return 2
            run_names = list(args.names)
    elif not args.check and args.trend is None:
        print(
            "error: give benchmark names, 'all', --list, --check BASELINE, "
            "or --trend",
            file=sys.stderr,
        )
        return 2

    if args.faults:
        from repro.faults import FaultPlan

        try:
            FaultPlan.parse(args.faults)
        except (TypeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    status = 0
    if run_names:
        ctx = BenchContext(
            smoke=args.smoke,
            backend=args.backend,
            trace_chrome=args.trace_chrome,
            faults=args.faults or None,
            deltamap=args.deltamap,
            adaptive=args.adaptive,
        )
        payloads, failures = run_many(
            run_names, ctx, results_dir=args.results_dir or None
        )
        print(
            f"\nbench: {len(payloads)}/{len(run_names)} benchmark(s) "
            f"completed ({'smoke' if args.smoke else 'full'} scale, "
            f"backend={args.backend})"
        )
        if failures:
            for failure in failures:
                print(f"bench failure: {failure}", file=sys.stderr)
            status = 1
        if args.append_history is not None:
            from repro.bench.history import (
                append_history,
                default_history_path,
            )

            history_path = args.append_history or default_history_path()
            rows = append_history(payloads, history_path)
            print(f"history: appended {len(rows)} row(s) to {history_path}")
    if args.trend is not None:
        from repro.bench.history import (
            default_history_path,
            read_history,
            trend_report,
        )

        trend_path = args.trend or default_history_path()
        trend_report(read_history(trend_path), path=trend_path)
    if args.check:
        violations = check_results(
            args.check,
            results_dir=args.results_dir or None,
            tolerance_scale=args.tolerance,
        )
        if violations:
            status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParTime (SIGMOD 2016) reproduction — temporal "
        "aggregation toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's Figures 1-4").set_defaults(
        fn=cmd_demo
    )

    sql = sub.add_parser("sql", help="run a temporal SQL statement (or a REPL)")
    sql.add_argument(
        "statement", nargs="?", default=None,
        help="one SELECT in the temporal dialect; omitted, an interactive "
        "REPL starts (\\q or ^D to quit)",
    )
    sql.add_argument("--dataset", default="employee",
                     choices=["employee", "amadeus", "tpcbih"])
    sql.add_argument("--scale", type=float, default=0.2,
                     help="dataset scale factor")
    sql.add_argument("--seed", type=int, default=7)
    sql.add_argument("--workers", type=int, default=4)
    sql.add_argument(
        "--backend", default="serial", choices=list(BACKENDS),
        help="how parallel phases physically run: 'serial' (simulated-"
        "parallel accounting, the default), 'threads', or 'process' "
        "(real multiprocessing with shared-memory chunk transport)",
    )
    sql.add_argument(
        "--faults", metavar="SEED[:RATE]", default="",
        help="run the statement under a deterministic fault plan; the "
        "query retries injected faults and still returns exact results "
        "(see docs/fault_injection.md)",
    )
    sql.add_argument("--max-rows", type=int, default=40)
    sql.add_argument("--explain", action="store_true",
                     help="show the plan instead of executing")
    sql.add_argument(
        "--adaptive", action="store_true",
        help="answer eligible aggregations from a cracked Timeline Index "
        "built incrementally by the query traffic itself "
        "(see docs/adaptive_indexing.md)",
    )
    sql.set_defaults(fn=cmd_sql)

    serve = sub.add_parser(
        "serve",
        help="serve a dataset over the PostgreSQL wire protocol",
        description="Start the asyncio SQL front door (docs/serving.md): "
        "clients (psql, DBeaver, any raw socket) connect with the simple "
        "query protocol; arriving statements queue in the admission "
        "batch former and execute one shared-scan batch per cycle. "
        "SIGINT/SIGTERM shut down cleanly and print serving stats.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=5433,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--dataset", default="amadeus",
                       choices=["employee", "amadeus", "tpcbih"])
    serve.add_argument("--scale", type=float, default=0.2,
                       help="dataset scale factor")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--nodes", type=int, default=4,
                       help="storage nodes per table's shared-scan cluster")
    serve.add_argument("--aggregators", type=int, default=1,
                       help="aggregator nodes (ParTime Step 2 tier)")
    serve.add_argument(
        "--backend", default="serial", choices=list(BACKENDS),
        help="physical executor behind the scan cycles",
    )
    serve.add_argument(
        "--faults", metavar="SEED[:RATE]", default="",
        help="serve under a deterministic fault plan; injected faults are "
        "retried inside the engine and never drop client connections "
        "(see docs/fault_injection.md)",
    )
    serve.add_argument(
        "--events-jsonl", metavar="PATH", default="",
        help="on shutdown, dump the structured event log (query "
        "admissions, batch cuts, fault injections, ...) as JSON Lines; "
        "the same records are queryable live via "
        "SELECT * FROM partime_events",
    )
    serve.add_argument(
        "--min-cycle-ms", type=float, default=0.0,
        help="floor on the batch-former cycle cadence in milliseconds "
        "(0 = cut as fast as the engine drains; a small floor restores "
        "shared-scan batching under a trickle of clients)",
    )
    serve.set_defaults(fn=cmd_serve)

    tables = sub.add_parser("tables", help="show a dataset's tables")
    tables.add_argument("--dataset", default="tpcbih",
                        choices=["employee", "amadeus", "tpcbih"])
    tables.add_argument("--scale", type=float, default=0.2)
    tables.add_argument("--seed", type=int, default=7)
    tables.set_defaults(fn=cmd_tables)

    sub.add_parser(
        "experiments", help="list the paper's experiments and bench targets"
    ).set_defaults(fn=cmd_experiments)

    lint = sub.add_parser(
        "lint",
        help="run the parallel-safety lint rules (PT001-PT010)",
        description="AST + whole-program parallel-safety lint for the "
        "simtime substrate; exits 1 when findings remain, 0 when clean, "
        "3 when over the --budget.",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint "
        "(default: src/repro benchmarks examples)",
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"]
    )
    lint.add_argument(
        "--select", default="",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--explain", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--baseline", default="",
        help="baseline file of accepted findings; only new findings fail",
    )
    lint.add_argument(
        "--write-baseline", default="", metavar="PATH",
        help="record current findings as the accepted baseline and exit",
    )
    lint.add_argument(
        "--cache", default="", metavar="PATH",
        help="mtime+hash summary-cache file (skips re-extraction of "
        "unchanged files on warm runs)",
    )
    lint.add_argument(
        "--budget", type=float, default=0.0, metavar="SECONDS",
        help="fail (exit 3) if the lint run exceeds this many seconds",
    )
    lint.set_defaults(fn=cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="run a workload under the tracer and print its span tree",
        description="Activates the repro.obs tracer around a workload — "
        "'demo' (the paper's Figures 1-4) or a Python script executed as "
        "__main__ — then prints the hierarchical span tree (simulated and "
        "measured time per phase) and the metric snapshot.",
    )
    trace.add_argument(
        "target",
        help="'demo' or a path to a Python workload script "
        "(e.g. examples/quickstart.py)",
    )
    trace.add_argument(
        "--json", metavar="PATH", default="",
        help="also write the span tree and metrics snapshot as JSON",
    )
    trace.add_argument(
        "--chrome", metavar="PATH", default="",
        help="also export the reconstructed per-core schedule as a "
        "chrome://tracing / Perfetto-loadable event array",
    )
    trace.set_defaults(fn=cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="run registered benchmarks and emit BENCH_*.json telemetry",
        description="Unified benchmark runner. Executes benchmarks/"
        "bench_*.py scripts (by name, or 'all'), reconstructs each run's "
        "per-core schedule, and writes one schema-versioned "
        "BENCH_<name>.json telemetry file per benchmark. With --check "
        "BASELINE the produced files are diffed against a committed "
        "baseline (file or directory) with per-metric relative "
        "tolerances; exits nonzero on regression.",
    )
    bench.add_argument(
        "names", nargs="*",
        help="benchmark names (see --list) or 'all'; may be empty in "
        "--check-only mode",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="run on tiny smoke datasets (seconds instead of minutes)",
    )
    bench.add_argument(
        "--backend", default="serial", choices=list(BACKENDS),
        help="physical execution backend for benchmarks that honour it",
    )
    bench.add_argument(
        "--deltamap", default="columnar",
        choices=["columnar", "btree", "hash"],
        help="Step-1 delta-map representation: 'columnar' (NumPy kernels, "
        "default) or a scalar oracle backend — the kernel-parity CI step "
        "runs both and diffs the results",
    )
    bench.add_argument(
        "--list", action="store_true", help="list benchmark names and exit"
    )
    bench.add_argument(
        "--check", metavar="BASELINE", default="",
        help="diff produced BENCH_*.json files against a baseline payload "
        "file or a directory of them; exits nonzero on regression",
    )
    bench.add_argument(
        "--results-dir", metavar="DIR", default="",
        help="where BENCH_*.json files are written/read "
        "(default: the repo root)",
    )
    bench.add_argument(
        "--faults", metavar="SEED[:RATE]", default="",
        help="activate deterministic fault injection for every benchmark: "
        "a seeded FaultPlan (default rate 0.1) is threaded through the "
        "executors and WALs the run builds; retries/backoff are booked "
        "into the simulated clock and summarised in the telemetry "
        "payload (see docs/fault_injection.md)",
    )
    bench.add_argument(
        "--adaptive", action="store_true",
        help="run benchmarks that honour it in adaptive-indexing mode: "
        "Timeline indexes crack incrementally under the query sequence "
        "instead of bulk-loading up front (see docs/adaptive_indexing.md)",
    )
    bench.add_argument(
        "--trace-chrome", action="store_true",
        help="additionally export each benchmark's schedule as a "
        "chrome://tracing event array under benchmarks/results/",
    )
    bench.add_argument(
        "--tolerance", type=float, default=1.0, metavar="SCALE",
        help="scale factor applied to every regression tolerance "
        "(e.g. 2.0 doubles the allowed slack on noisy CI machines)",
    )
    bench.add_argument(
        "--append-history", nargs="?", const="", default=None,
        metavar="PATH",
        help="after the run, append one schema-versioned row per "
        "benchmark — keyed by git SHA and run mode — to the persistent "
        "history ledger (default: benchmarks/history.jsonl)",
    )
    bench.add_argument(
        "--trend", nargs="?", const="", default=None, metavar="PATH",
        help="read the history ledger back and flag metric drift between "
        "the latest and previous run of each (benchmark, mode) series; "
        "informational — does not affect the exit status",
    )
    bench.set_defaults(fn=cmd_bench)
    return parser


def lint_entry() -> int:
    """Console-script entry point (``repro-lint [paths...]``)."""
    return main(["lint", *sys.argv[1:]])


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # ^C outside the REPL's own handling (e.g. mid-query in one-shot
        # mode): exit with the conventional 130, never a traceback.
        print(file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
