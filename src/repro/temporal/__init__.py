"""Bi-temporal data model substrate.

This package implements the data model of Section 3.1 of the paper:
tables whose rows carry one *transaction time* interval (assigned by the
system when a transaction commits) and any number of *business time*
intervals (assigned by the application).  All intervals are half-open
``[start, end)`` and ``end == FOREVER`` denotes a currently-valid version.

The main entry points are:

* :class:`~repro.temporal.schema.TableSchema` — declares value columns and
  time dimensions.
* :class:`~repro.temporal.table.TemporalTable` — an append-only versioned
  table with transactional updates that follow the row-splitting semantics
  of Figure 1 of the paper.
* :mod:`~repro.temporal.predicates` — selection and time-travel predicates
  evaluable both per record and vectorized over column chunks.
"""

from repro.temporal.timestamps import (
    FOREVER,
    MIN_TIME,
    Interval,
    date_to_ts,
    ts_to_date,
)
from repro.temporal.schema import (
    Column,
    ColumnType,
    TimeDimension,
    TimeKind,
    TableSchema,
)
from repro.temporal.table import TemporalTable, TableChunk
from repro.temporal.predicates import (
    And,
    ColumnBetween,
    ColumnEquals,
    ColumnIn,
    CurrentVersion,
    Not,
    Or,
    Overlaps,
    Predicate,
    TimeTravel,
    TrueP,
)

__all__ = [
    "FOREVER",
    "MIN_TIME",
    "Interval",
    "date_to_ts",
    "ts_to_date",
    "Column",
    "ColumnType",
    "TimeDimension",
    "TimeKind",
    "TableSchema",
    "TemporalTable",
    "TableChunk",
    "Predicate",
    "TrueP",
    "ColumnEquals",
    "ColumnIn",
    "ColumnBetween",
    "And",
    "Or",
    "Not",
    "TimeTravel",
    "Overlaps",
    "CurrentVersion",
]
