"""Timestamps, the FOREVER sentinel, and half-open intervals.

All points in time in this reproduction are 64-bit integers:

* *transaction time* is the commit sequence number of the transaction that
  created (or invalidated) a version — exactly the ``t0, t5, t7, ...``
  notation of the paper;
* *business time* is application-assigned; for date-valued dimensions we
  map calendar dates to days since 1970-01-01 via :func:`date_to_ts`.

``FOREVER`` plays the role of the paper's ``∞``: a version whose end
timestamp is ``FOREVER`` is still valid.  It is chosen as ``2**62`` so that
modest arithmetic on timestamps can never overflow a signed 64-bit integer.
"""

from __future__ import annotations

import datetime
from typing import NamedTuple

#: The ``∞`` sentinel.  A version with ``end == FOREVER`` is currently valid.
FOREVER: int = 2**62

#: The smallest representable point in time (used as "beginning of time").
MIN_TIME: int = -(2**62)

_EPOCH = datetime.date(1970, 1, 1)


def date_to_ts(year: int, month: int = 1, day: int = 1) -> int:
    """Map a calendar date to an integer timestamp (days since 1970-01-01).

    The paper's examples use dates like ``01-06-1994``; this helper lets the
    running examples and workload generators express business time in the
    same vocabulary:

    >>> date_to_ts(1970, 1, 2)
    1
    >>> date_to_ts(1993) < date_to_ts(1994, 6, 1)
    True
    """
    return (datetime.date(year, month, day) - _EPOCH).days


def ts_to_date(ts: int) -> datetime.date:
    """Inverse of :func:`date_to_ts` for finite timestamps.

    >>> ts_to_date(date_to_ts(1994, 6, 1))
    datetime.date(1994, 6, 1)
    """
    if ts >= FOREVER:
        raise ValueError("FOREVER has no calendar representation")
    return _EPOCH + datetime.timedelta(days=int(ts))


def format_ts(ts: int) -> str:
    """Human-readable rendering used by result pretty-printers.

    ``FOREVER`` renders as the infinity symbol, mirroring the paper's
    figures.
    """
    if ts >= FOREVER:
        return "inf"
    if ts <= MIN_TIME:
        return "-inf"
    return str(int(ts))


class Interval(NamedTuple):
    """A half-open time interval ``[start, end)``.

    Half-open intervals are the standard temporal-database convention and
    the one the paper implicitly uses: a version created by transaction
    ``t0`` and invalidated by ``t7`` is visible in versions ``t0 .. t6``.

    Implemented as a NamedTuple: immutable, ordered lexicographically by
    ``(start, end)``, usable as a dictionary key, and cheap to construct —
    result merges build one per output row, so construction cost is on the
    Step 2 critical path.  Construction does not validate (hot path); use
    :meth:`checked` where inputs are untrusted.
    """

    start: int
    end: int = FOREVER

    @classmethod
    def checked(cls, start: int, end: int = FOREVER) -> "Interval":
        """Validating constructor: rejects ``end < start``."""
        if end < start:
            raise ValueError(
                f"invalid interval: end {end} precedes start {start}"
            )
        return cls(start, end)

    @property
    def is_empty(self) -> bool:
        """``True`` when the interval contains no point at all."""
        return self.start == self.end

    @property
    def is_open_ended(self) -> bool:
        """``True`` when the interval extends to FOREVER (the paper's ∞)."""
        return self.end >= FOREVER

    def contains(self, ts: int) -> bool:
        """Point containment under half-open semantics.

        >>> Interval(1, 5).contains(1), Interval(1, 5).contains(5)
        (True, False)
        """
        return self.start <= ts < self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point.

        Empty intervals share no point with anything — including when
        they lie strictly inside the other interval.

        >>> Interval(1, 5).overlaps(Interval(5, 9))
        False
        >>> Interval(1, 5).overlaps(Interval(4, 9))
        True
        >>> Interval(1, 5).overlaps(Interval(3, 3))
        False
        """
        return (
            self.start < other.end
            and other.start < self.end
            and not self.is_empty
            and not other.is_empty
        )

    def intersect(self, other: "Interval") -> "Interval | None":
        """The overlapping part of the two intervals, or ``None``.

        >>> Interval(1, 5).intersect(Interval(3, 9))
        Interval(start=3, end=5)
        """
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def clamp(self, lo: int, hi: int) -> "Interval | None":
        """Restrict the interval to ``[lo, hi)``; ``None`` if disjoint."""
        return self.intersect(Interval(lo, hi))

    def duration(self) -> int:
        """Length of the interval; ``FOREVER``-ended intervals are infinite
        and represented by a very large number rather than a float."""
        return self.end - self.start

    def __str__(self) -> str:
        return f"[{format_ts(self.start)}, {format_ts(self.end)})"


#: The interval covering all of time.
ALL_TIME = Interval(MIN_TIME, FOREVER)
