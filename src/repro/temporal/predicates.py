"""Selection and time-travel predicates.

Predicates are the filtering vocabulary of the storage nodes: every query in
the shared scan carries one, and ParTime's Step 1 first applies the query's
predicate before generating deltas (Section 3.2.1: "these rows are filtered
out before the ParTime algorithm takes effect").

Every predicate supports two evaluation modes:

* :meth:`Predicate.mask` — vectorized over a :class:`TableChunk`, returning
  a boolean NumPy array (the production path);
* :meth:`Predicate.matches` — per record dict (the pedagogical path,
  mirroring the paper's per-record pseudo-code).

The time-travel operator of SQL:2011 is the :class:`TimeTravel` predicate —
"a simple selection on the time dimensions" as Section 3.1 observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.temporal.table import TableChunk
from repro.temporal.timestamps import FOREVER, Interval


class Predicate:
    """Abstract base class of all predicates."""

    def mask(self, chunk: TableChunk) -> np.ndarray:
        raise NotImplementedError

    def matches(self, record: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class TrueP(Predicate):
    """The always-true predicate (no filtering)."""

    def mask(self, chunk: TableChunk) -> np.ndarray:
        return np.ones(len(chunk), dtype=bool)

    def matches(self, record: Mapping[str, Any]) -> bool:
        return True


@dataclass(frozen=True)
class ColumnEquals(Predicate):
    """``column == value``."""

    column: str
    value: Any

    def mask(self, chunk: TableChunk) -> np.ndarray:
        return chunk.column(self.column) == self.value

    def matches(self, record: Mapping[str, Any]) -> bool:
        return record[self.column] == self.value


@dataclass(frozen=True)
class ColumnIn(Predicate):
    """``column IN values``."""

    column: str
    values: tuple

    def __init__(self, column: str, values) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def mask(self, chunk: TableChunk) -> np.ndarray:
        return np.isin(chunk.column(self.column), np.array(list(self.values)))

    def matches(self, record: Mapping[str, Any]) -> bool:
        return record[self.column] in self.values


@dataclass(frozen=True)
class ColumnBetween(Predicate):
    """``lo <= column < hi`` (half-open, like all intervals here)."""

    column: str
    lo: Any
    hi: Any

    def mask(self, chunk: TableChunk) -> np.ndarray:
        col = chunk.column(self.column)
        return (col >= self.lo) & (col < self.hi)

    def matches(self, record: Mapping[str, Any]) -> bool:
        return self.lo <= record[self.column] < self.hi


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    children: tuple

    def __init__(self, children: Sequence[Predicate]) -> None:
        object.__setattr__(self, "children", tuple(children))

    def mask(self, chunk: TableChunk) -> np.ndarray:
        out = np.ones(len(chunk), dtype=bool)
        for child in self.children:
            out &= child.mask(chunk)
        return out

    def matches(self, record: Mapping[str, Any]) -> bool:
        return all(child.matches(record) for child in self.children)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    children: tuple

    def __init__(self, children: Sequence[Predicate]) -> None:
        object.__setattr__(self, "children", tuple(children))

    def mask(self, chunk: TableChunk) -> np.ndarray:
        out = np.zeros(len(chunk), dtype=bool)
        for child in self.children:
            out |= child.mask(chunk)
        return out

    def matches(self, record: Mapping[str, Any]) -> bool:
        return any(child.matches(record) for child in self.children)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    child: Predicate

    def mask(self, chunk: TableChunk) -> np.ndarray:
        return ~self.child.mask(chunk)

    def matches(self, record: Mapping[str, Any]) -> bool:
        return not self.child.matches(record)


@dataclass(frozen=True)
class TimeTravel(Predicate):
    """Fix a time dimension to a single point: versions visible *at* ``at``.

    ``dim_start <= at < dim_end`` — e.g. "given Version t3 of the database"
    is ``TimeTravel("tt", 3)``; "on June 1, 1994" is
    ``TimeTravel("bt", date_to_ts(1994, 6, 1))``.
    """

    dim: str
    at: int

    def mask(self, chunk: TableChunk) -> np.ndarray:
        start = chunk.column(f"{self.dim}_start")
        end = chunk.column(f"{self.dim}_end")
        return (start <= self.at) & (self.at < end)

    def matches(self, record: Mapping[str, Any]) -> bool:
        return record[f"{self.dim}_start"] <= self.at < record[f"{self.dim}_end"]


@dataclass(frozen=True)
class Overlaps(Predicate):
    """Versions whose validity in ``dim`` overlaps ``[lo, hi)``.

    This is the range filter of windowed and range-restricted temporal
    aggregation queries (e.g. Example 1 fixes business time to the year
    1995 by requiring the BT interval to overlap 1995).
    """

    dim: str
    lo: int
    hi: int = FOREVER

    @classmethod
    def interval(cls, dim: str, iv: Interval) -> "Overlaps":
        return cls(dim, iv.start, iv.end)

    def mask(self, chunk: TableChunk) -> np.ndarray:
        start = chunk.column(f"{self.dim}_start")
        end = chunk.column(f"{self.dim}_end")
        return (start < self.hi) & (end > self.lo)

    def matches(self, record: Mapping[str, Any]) -> bool:
        return record[f"{self.dim}_start"] < self.hi and record[f"{self.dim}_end"] > self.lo


@dataclass(frozen=True)
class CurrentVersion(Predicate):
    """Only currently-valid versions: ``dim_end == FOREVER``.

    With the transaction dimension this is the paper's Example 3 filter
    ("the query asks only for tuples of the current version of the
    database; i.e., records with END_TT = ∞").
    """

    dim: str = "tt"

    def mask(self, chunk: TableChunk) -> np.ndarray:
        return chunk.column(f"{self.dim}_end") >= FOREVER

    def matches(self, record: Mapping[str, Any]) -> bool:
        return record[f"{self.dim}_end"] >= FOREVER
