"""Schemas for bi-temporal tables.

A :class:`TableSchema` consists of ordinary value columns plus an ordered
list of *time dimensions*.  Following the data model of Section 3.1 there is
always exactly one :data:`~TimeKind.TRANSACTION` dimension (versioning of
the database, timestamps assigned at commit) and zero or more
:data:`~TimeKind.BUSINESS` dimensions (application-assigned validity).

Each time dimension materialises as a pair of int64 columns
``<name>_start`` / ``<name>_end`` in the physical layout — the paper's
``START_BT``/``END_BT``/``START_TT``/``END_TT`` columns of Figure 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class ColumnType(enum.Enum):
    """Physical type of a value column."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def numpy_dtype(self):
        """dtype used by the columnar backing store."""
        if self is ColumnType.INT:
            return np.int64
        if self is ColumnType.FLOAT:
            return np.float64
        return object


@dataclass(frozen=True)
class Column:
    """An ordinary (non-temporal) value column."""

    name: str
    ctype: ColumnType = ColumnType.INT

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"column name must be an identifier: {self.name!r}")


class TimeKind(enum.Enum):
    """Whether a time dimension is system- or application-controlled."""

    TRANSACTION = "transaction"
    BUSINESS = "business"


@dataclass(frozen=True)
class TimeDimension:
    """One temporal dimension of a bi-temporal table.

    ``kind == TRANSACTION`` timestamps are assigned by
    :class:`~repro.temporal.table.TemporalTable` at commit; ``BUSINESS``
    timestamps are supplied by the application on insert/update.
    """

    name: str
    kind: TimeKind = TimeKind.BUSINESS

    @property
    def start_column(self) -> str:
        return f"{self.name}_start"

    @property
    def end_column(self) -> str:
        return f"{self.name}_end"


@dataclass
class TableSchema:
    """Schema of a bi-temporal table.

    Parameters
    ----------
    name:
        Table name.
    columns:
        The value columns.
    business_dims:
        Names of the business-time dimensions, in order.  May be empty for a
        plain *temporal table* (transaction time only).
    key:
        Optional name of the value column that identifies a logical entity
        across versions (e.g. the employee name in Figure 1).  Updates and
        deletes address rows through this key.
    transaction_dim:
        Name of the transaction-time dimension (default ``"tt"``).

    Examples
    --------
    The Employee table of Figure 1:

    >>> schema = TableSchema(
    ...     name="employee",
    ...     columns=[Column("name", ColumnType.STRING),
    ...              Column("descr", ColumnType.STRING),
    ...              Column("salary", ColumnType.INT)],
    ...     business_dims=["bt"],
    ...     key="name",
    ... )
    >>> [d.name for d in schema.time_dimensions]
    ['bt', 'tt']
    """

    name: str
    columns: list[Column]
    business_dims: list[str] = field(default_factory=list)
    key: str | None = None
    transaction_dim: str = "tt"

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {self.name}")
        if self.key is not None and self.key not in names:
            raise ValueError(f"key column {self.key!r} is not a column")
        if self.transaction_dim in self.business_dims:
            raise ValueError("transaction dimension may not double as business time")
        reserved = set()
        for dim in self.business_dims + [self.transaction_dim]:
            reserved.add(f"{dim}_start")
            reserved.add(f"{dim}_end")
        clash = reserved.intersection(names)
        if clash:
            raise ValueError(f"value columns clash with time columns: {sorted(clash)}")

    @property
    def time_dimensions(self) -> list[TimeDimension]:
        """All temporal dimensions, business times first, transaction time
        last (the convention used throughout the paper's examples)."""
        dims = [TimeDimension(d, TimeKind.BUSINESS) for d in self.business_dims]
        dims.append(TimeDimension(self.transaction_dim, TimeKind.TRANSACTION))
        return dims

    @property
    def transaction_dimension(self) -> TimeDimension:
        return TimeDimension(self.transaction_dim, TimeKind.TRANSACTION)

    def dimension(self, name: str) -> TimeDimension:
        """Look up a time dimension by name."""
        for dim in self.time_dimensions:
            if dim.name == name:
                return dim
        raise KeyError(f"no time dimension named {name!r} in table {self.name}")

    def column(self, name: str) -> Column:
        """Look up a value column by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column named {name!r} in table {self.name}")

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def physical_columns(self) -> list[str]:
        """Value columns followed by start/end pairs of every dimension."""
        cols = self.column_names()
        for dim in self.time_dimensions:
            cols.append(dim.start_column)
            cols.append(dim.end_column)
        return cols
