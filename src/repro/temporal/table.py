"""Append-only, columnar, bi-temporal tables.

:class:`TemporalTable` implements the versioning semantics of Figure 1 of
the paper:

* every *insert* creates a new version whose transaction-time start is the
  sequence number of the committing transaction and whose end is FOREVER;
* every *update* of a logical entity (addressed by the schema's key column)
  closes the transaction time of the affected current versions, re-inserts
  the fragments of their business-time validity that the update does *not*
  cover, and inserts the new version — exactly the three-row outcome that
  transaction ``t7`` produces for Anna in Figure 1;
* a *delete* closes versions and re-inserts the uncovered fragments only.

Physically the table is columnar: one growable NumPy array per value column
and per time boundary (``<dim>_start`` / ``<dim>_end``).  This is what makes
the ParTime scan (Step 1) vectorizable, mirroring the role of the columnar
layout in Crescando.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.temporal.schema import TableSchema, TimeDimension
from repro.temporal.timestamps import FOREVER, Interval


class _GrowArray:
    """A NumPy array with amortised O(1) append (capacity doubling)."""

    __slots__ = ("_buf", "_len")

    def __init__(self, dtype, capacity: int = 16) -> None:
        self._buf = np.empty(capacity, dtype=dtype)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def _grow_to(self, needed: int) -> None:
        cap = len(self._buf)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        new = np.empty(cap, dtype=self._buf.dtype)
        new[: self._len] = self._buf[: self._len]
        self._buf = new

    def append(self, value) -> None:
        self._grow_to(self._len + 1)
        self._buf[self._len] = value
        self._len += 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=self._buf.dtype)
        self._grow_to(self._len + len(values))
        self._buf[self._len : self._len + len(values)] = values
        self._len += len(values)

    def view(self) -> np.ndarray:
        """A zero-copy view of the live prefix.  Callers must not resize
        the owning array while holding the view."""
        return self._buf[: self._len]

    def __getitem__(self, idx):
        return self.view()[idx]

    def __setitem__(self, idx, value) -> None:
        self.view()[idx] = value

    @property
    def nbytes(self) -> int:
        return self.view().nbytes


@dataclass
class TableChunk:
    """A contiguous, read-only slice of a table's columns.

    Chunks are what storage nodes scan: ``columns`` maps every physical
    column name to a NumPy array of identical length, and ``row_offset``
    records where the chunk starts in the parent table so row ids remain
    globally meaningful.
    """

    schema: TableSchema
    columns: dict[str, np.ndarray]
    row_offset: int = 0

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def record(self, i: int) -> dict[str, Any]:
        """Materialise row ``i`` of the chunk as a plain dict (used by the
        pedagogical per-record code paths)."""
        return {name: arr[i] for name, arr in self.columns.items()}

    def records(self) -> Iterator[dict[str, Any]]:
        for i in range(len(self)):
            yield self.record(i)

    def select(self, mask: np.ndarray) -> "TableChunk":
        """A new chunk holding only the rows where ``mask`` is true."""
        return TableChunk(
            schema=self.schema,
            columns={name: arr[mask] for name, arr in self.columns.items()},
            row_offset=self.row_offset,
        )


def _as_interval(value) -> Interval:
    if isinstance(value, Interval):
        return value
    if isinstance(value, tuple):
        return Interval(*value)
    return Interval(int(value), FOREVER)


def _rectangle_difference(
    old: Sequence[Interval], new: Sequence[Interval]
) -> list[tuple[Interval, ...]]:
    """Fragments of the hyper-rectangle ``old`` not covered by ``new``.

    Standard axis-by-axis decomposition: for each dimension, emit the part
    of ``old`` before and after ``new`` (full extent in later dimensions,
    clamped extent in earlier ones).  Used to implement the business-time
    row splitting of updates and deletes; with a single business dimension
    this degenerates to at most two fragments (before / after), matching
    the paper's Figure 1.
    """
    fragments: list[tuple[Interval, ...]] = []
    clamped: list[Interval] = []
    for axis, (o, n) in enumerate(zip(old, new)):
        inter = o.intersect(n)
        if inter is None:
            # Disjoint in this axis: nothing of old is covered at all.
            return [tuple(old)]
        if o.start < inter.start:
            fragments.append(
                tuple(clamped) + (Interval(o.start, inter.start),) + tuple(old[axis + 1 :])
            )
        if inter.end < o.end:
            fragments.append(
                tuple(clamped) + (Interval(inter.end, o.end),) + tuple(old[axis + 1 :])
            )
        clamped.append(inter)
    return fragments


class TemporalTable:
    """A bi-temporal table with transactional versioning.

    Operations (:meth:`insert`, :meth:`update`, :meth:`delete`) are buffered
    into the *current transaction*; :meth:`commit` stamps them with the next
    transaction-time sequence number and makes them durable.  For
    convenience, operations issued outside an explicit :meth:`begin` are
    auto-committed individually.

    The table is append-only except for closing ``tt_end`` of superseded
    versions, which is exactly the mutation model of the paper (and what
    keeps scans race-free under a shared scan).
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._cols: dict[str, _GrowArray] = {}
        for col in schema.columns:
            self._cols[col.name] = _GrowArray(col.ctype.numpy_dtype)
        for dim in schema.time_dimensions:
            self._cols[dim.start_column] = _GrowArray(np.int64)
            self._cols[dim.end_column] = _GrowArray(np.int64)
        self._next_tt = 0
        self._in_txn = False
        self._txn_dirty = False

    # ------------------------------------------------------------------ txn

    @property
    def current_version(self) -> int:
        """The transaction time the *next* commit will receive."""
        return self._next_tt

    @property
    def last_committed_version(self) -> int:
        """Sequence number of the most recent commit (-1 if none)."""
        return self._next_tt - 1

    def begin(self) -> None:
        """Open an explicit transaction grouping several operations."""
        if self._in_txn:
            raise RuntimeError("transaction already open")
        self._in_txn = True
        self._txn_dirty = False

    def commit(self) -> int:
        """Commit the open (or implicit) transaction; returns its TT."""
        tt = self._next_tt
        self._next_tt += 1
        self._in_txn = False
        self._txn_dirty = False
        return tt

    def _autocommit(self) -> None:
        if not self._in_txn:
            self.commit()

    def sync_version(self, next_tt: int) -> None:
        """Align this table's next transaction time with a cluster-wide
        commit counter.  Storage nodes hold one partition each; the cluster
        stamps every batch with a global version and synchronises the
        partitions before applying it.  Rewinding is refused."""
        if next_tt < self._next_tt:
            raise ValueError(
                f"cannot rewind version from {self._next_tt} to {next_tt}"
            )
        self._next_tt = next_tt

    # ------------------------------------------------------------ mutation

    def _business_intervals(
        self, business: Mapping[str, Any] | None
    ) -> list[Interval]:
        business = dict(business or {})
        out = []
        for dim_name in self.schema.business_dims:
            if dim_name in business:
                out.append(_as_interval(business.pop(dim_name)))
            else:
                out.append(Interval(0, FOREVER))
        if business:
            raise KeyError(f"unknown business dimensions: {sorted(business)}")
        return out

    def _append_version(
        self, values: Mapping[str, Any], business: Sequence[Interval], tt_start: int
    ) -> int:
        row_id = len(self)
        for col in self.schema.columns:
            if col.name not in values:
                raise KeyError(f"missing value for column {col.name!r}")
            self._cols[col.name].append(values[col.name])
        for dim_name, iv in zip(self.schema.business_dims, business):
            self._cols[f"{dim_name}_start"].append(iv.start)
            self._cols[f"{dim_name}_end"].append(iv.end)
        tdim = self.schema.transaction_dim
        self._cols[f"{tdim}_start"].append(tt_start)
        self._cols[f"{tdim}_end"].append(FOREVER)
        return row_id

    def insert(
        self, values: Mapping[str, Any], business: Mapping[str, Any] | None = None
    ) -> int:
        """Insert a new version valid from the committing transaction on.

        ``business`` maps business-dimension names to ``Interval`` (or
        ``(start, end)`` tuples, or a bare start timestamp meaning
        ``[start, FOREVER)``).  Unspecified dimensions default to all time.
        Returns the physical row id.
        """
        row = self._append_version(
            values, self._business_intervals(business), self._next_tt
        )
        self._autocommit()
        return row

    def _current_versions_of(self, key_value) -> list[int]:
        key = self.schema.key
        if key is None:
            raise RuntimeError(
                f"table {self.schema.name} has no key column; updates need one"
            )
        tt_end = self._cols[f"{self.schema.transaction_dim}_end"].view()
        keys = self._cols[key].view()
        mask = (tt_end == FOREVER) & (keys == key_value)
        return [int(i) for i in np.nonzero(mask)[0]]

    def _business_of_row(self, row: int) -> list[Interval]:
        return [
            Interval(
                int(self._cols[f"{d}_start"][row]), int(self._cols[f"{d}_end"][row])
            )
            for d in self.schema.business_dims
        ]

    def _values_of_row(self, row: int) -> dict[str, Any]:
        return {c.name: self._cols[c.name][row] for c in self.schema.columns}

    def close_versions(
        self, key_value, business: Mapping[str, Any] | None = None
    ) -> tuple[list[dict[str, Any]], list[int]]:
        """First half of a bi-temporal update: close every current version
        of ``key_value`` whose business validity overlaps the given
        interval(s) and re-insert the uncovered fragments.

        Returns ``(templates, created_row_ids)`` where ``templates`` holds
        the value dicts of the closed versions (what the update's new
        version inherits unchanged columns from).  Does *not* commit — in
        a distributed setting the coordinator closes on all partitions,
        inserts the new version on exactly one, then commits everywhere.
        """
        new_business = self._business_intervals(business)
        tt = self._next_tt
        created: list[int] = []
        templates: list[dict[str, Any]] = []
        affected = self._current_versions_of(key_value)
        tt_end_col = self._cols[f"{self.schema.transaction_dim}_end"]
        fallback: dict[str, Any] | None = None
        for row in affected:
            old_business = self._business_of_row(row)
            if not all(o.overlaps(n) for o, n in zip(old_business, new_business)):
                fallback = self._values_of_row(row)
                continue
            tt_end_col[row] = tt
            old_values = self._values_of_row(row)
            templates.append(old_values)
            for fragment in _rectangle_difference(old_business, new_business):
                created.append(self._append_version(old_values, fragment, tt))
        if not templates and fallback is not None:
            # The entity exists here but none of its validity overlaps the
            # update: nothing to close, but its values can still serve as
            # the template for an update that extends validity.
            templates.append(fallback)
        return templates, created

    def update(
        self,
        key_value,
        changes: Mapping[str, Any],
        business: Mapping[str, Any] | None = None,
        missing_ok: bool = False,
    ) -> list[int]:
        """Bi-temporally update the entity identified by ``key_value``.

        Every current version whose business validity overlaps the update's
        business interval(s) is closed at the committing transaction time;
        the uncovered fragments of its validity are re-inserted with the old
        values, and one new version with ``changes`` applied is inserted for
        the update's validity — the Figure 1 row-splitting semantics.

        Returns the row ids of the versions created by this update.
        """
        templates, created = self.close_versions(key_value, business)
        if not templates:
            if missing_ok:
                # A partition that holds no version of the entity: the
                # broadcast update is a no-op here (another node owns it).
                self._autocommit()
                return created
            raise KeyError(f"no current version of {key_value!r} to update")
        new_values = dict(templates[0])
        for name, value in changes.items():
            self.schema.column(name)  # validates the column exists
            new_values[name] = value
        created.append(
            self._append_version(
                new_values, self._business_intervals(business), self._next_tt
            )
        )
        self._autocommit()
        return created

    def delete(
        self,
        key_value,
        business: Mapping[str, Any] | None = None,
        missing_ok: bool = False,
    ) -> list[int]:
        """Bi-temporally delete ``key_value`` over the given business range.

        Affected current versions are closed; fragments of their validity
        outside the deleted range survive as re-inserted versions.  Returns
        the ids of the surviving fragment rows.
        """
        del_business = self._business_intervals(business)
        tt = self._next_tt
        created: list[int] = []
        tt_end_col = self._cols[f"{self.schema.transaction_dim}_end"]
        touched = False
        for row in self._current_versions_of(key_value):
            old_business = self._business_of_row(row)
            if not all(o.overlaps(n) for o, n in zip(old_business, del_business)):
                continue
            touched = True
            tt_end_col[row] = tt
            old_values = self._values_of_row(row)
            for fragment in _rectangle_difference(old_business, del_business):
                created.append(self._append_version(old_values, fragment, tt))
        if not touched:
            if missing_ok:
                self._autocommit()
                return created
            raise KeyError(f"no current version of {key_value!r} to delete")
        self._autocommit()
        return created

    # ------------------------------------------------------------- reading

    def __len__(self) -> int:
        first = next(iter(self._cols.values()))
        return len(first)

    def column(self, name: str) -> np.ndarray:
        """Zero-copy view of one physical column."""
        return self._cols[name].view()

    def chunk(self, lo: int = 0, hi: int | None = None) -> TableChunk:
        """A chunk covering rows ``[lo, hi)`` (the whole table by default)."""
        hi = len(self) if hi is None else hi
        return TableChunk(
            schema=self.schema,
            columns={name: arr.view()[lo:hi] for name, arr in self._cols.items()},
            row_offset=lo,
        )

    def chunks(self, n: int) -> list[TableChunk]:
        """Split the table into ``n`` contiguous chunks of near-equal size
        (the round-robin/range partitioning used by the storage nodes)."""
        if n <= 0:
            raise ValueError("need at least one chunk")
        total = len(self)
        bounds = [round(i * total / n) for i in range(n + 1)]
        return [self.chunk(bounds[i], bounds[i + 1]) for i in range(n)]

    def record(self, row: int) -> dict[str, Any]:
        """Row ``row`` as a plain dict of all physical columns."""
        return {name: arr[row] for name, arr in self._cols.items()}

    def records(self) -> Iterator[dict[str, Any]]:
        for row in range(len(self)):
            yield self.record(row)

    def memory_bytes(self) -> int:
        """Approximate resident size of the columnar data (Table 3)."""
        total = 0
        for name, arr in self._cols.items():
            view = arr.view()
            if view.dtype == object:
                # Strings: count the characters, as a compressed engine would.
                total += sum(len(str(v)) for v in view)
            else:
                total += view.nbytes
        return total

    def as_of(self, **dims: int) -> TableChunk:
        """Time-travel snapshot: the versions visible at the given point
        of each named time dimension (SQL:2011 ``AS OF``).

        >>> # table.as_of(tt=3)            — version t3 of the database
        >>> # table.as_of(tt=3, bt=8_900)  — and business time fixed too
        """
        chunk = self.chunk()
        known = {d.name for d in self.schema.time_dimensions}
        mask = np.ones(len(chunk), dtype=bool)
        for dim, at in dims.items():
            if dim not in known:
                raise KeyError(f"no time dimension named {dim!r}")
            mask &= chunk.column(f"{dim}_start") <= at
            mask &= chunk.column(f"{dim}_end") > at
        return chunk.select(mask)

    def snapshot_interval(self, dim: TimeDimension) -> Interval:
        """The `[min start, max finite end or last version]` span of a
        dimension — used by windowed queries and statistics."""
        starts = self.column(dim.start_column)
        ends = self.column(dim.end_column)
        if len(starts) == 0:
            return Interval(0, 0)
        finite = ends[ends < FOREVER]
        hi = int(finite.max()) if len(finite) else int(starts.max()) + 1
        hi = max(hi, int(starts.max()) + 1)
        return Interval(int(starts.min()), hi)
