"""The Crescando-style parallel main-memory database substrate (Section 4).

A two-tier shared-nothing architecture (Figure 11):

* :class:`~repro.storage.node.StorageNode` — holds one horizontal partition
  of a table and processes batches of queries and updates with a
  ClockScan-style shared scan (:mod:`repro.storage.clockscan`);
* :class:`~repro.storage.aggregator.AggregatorNode` — coordinates queries,
  merges the per-node delta maps (ParTime's Step 2), and produces final
  results;
* :class:`~repro.storage.cluster.Cluster` — wires the tiers together,
  routes operation batches, stamps global commit versions, and accounts
  the simulated elapsed time of every cycle.

ParTime's Step 1 is embedded directly in the shared scan: a storage node
generates one delta map per temporal aggregation query *in the same pass*
that answers all other queries of the batch — the integration that
Section 4.2 describes and that Experiment 2 shows to be decisive.
"""

from repro.storage.partitioning import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
)
from repro.storage.queries import (
    InsertOp,
    SelectQuery,
    TemporalAggQuery,
    UpdateOp,
    DeleteOp,
)
from repro.storage.clockscan import ClockScan, ScanCycleReport
from repro.storage.node import StorageNode
from repro.storage.aggregator import AggregatorNode
from repro.storage.cluster import BatchResult, Cluster
from repro.storage.engine import CrescandoEngine
from repro.storage.recovery import WriteAheadLog, recover_cluster

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "RangePartitioner",
    "SelectQuery",
    "TemporalAggQuery",
    "UpdateOp",
    "DeleteOp",
    "InsertOp",
    "ClockScan",
    "ScanCycleReport",
    "StorageNode",
    "AggregatorNode",
    "Cluster",
    "BatchResult",
    "CrescandoEngine",
    "WriteAheadLog",
    "recover_cluster",
]
