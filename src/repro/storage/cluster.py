"""The Crescando cluster: two tiers, global versioning, shared scans.

:class:`Cluster` wires storage nodes and aggregator nodes together
(Figure 11) and executes *batches* of mixed operations:

* writes are applied first, each stamped with the next global commit
  version; updates and deletes are broadcast (round-robin partitioning
  cannot route them), inserts are routed round-robin;
* all read operations of the batch are then processed by every storage
  node in one shared-scan cycle (or one cycle per query with sharing
  disabled — the *No sharing* mode of Section 5.1);
* temporal aggregation queries finish on an aggregator node (Step 2),
  distributed round-robin over the aggregator tier.

Simulated elapsed time follows the substitution of DESIGN.md: node cycles
are a parallel phase over the storage cores (makespan), merges a parallel
phase over the aggregator cores, writes a sequence of broadcast steps.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass, field

from repro.core.pivot import choose_pivot, collect_statistics
from repro.faults.inject import FaultInjector, attempt_locally, current_injector
from repro.obs.metrics import metrics
from repro.obs.tracer import span
from repro.simtime.clock import SimClock, makespan
from repro.simtime.machine import PAPER_MACHINE, MachineSpec
from repro.storage.aggregator import AggregatorNode
from repro.storage.node import StorageNode
from repro.storage.partitioning import (
    Partitioner,
    RoundRobinPartitioner,
    split_table,
)
from repro.storage.queries import (
    InsertOp,
    ReadOp,
    SelectQuery,
    TemporalAggQuery,
    UpdateOp,
    WriteOp,
)
from repro.temporal.table import TemporalTable


@dataclass(frozen=True)
class _NodeReadCycleTask:
    """One storage node's shared-scan cycle, as a picklable task.

    Fanning the node cycles out through an :class:`Executor` needs a
    payload the process backend can ship: the reads travel in the task
    (queries and predicates are frozen dataclasses), the node is the
    mapped item.  ``run_read_cycle`` is read-only over node state, so a
    worker-side copy of the node produces the same partials and report as
    the parent's.
    """

    reads: tuple

    def __call__(self, node: StorageNode):
        return node.run_read_cycle(list(self.reads))


@dataclass
class BatchResult:
    """Outcome of one batch: final results and the time decomposition."""

    results: dict[int, object]
    simulated_seconds: float
    write_seconds: float
    scan_seconds: float
    merge_seconds: float
    node_scan_seconds: list[float] = field(default_factory=list)
    op_response_seconds: dict[int, float] = field(default_factory=dict)

    def response_time(self, op_id: int) -> float:
        """Stand-alone response time of one read operation: the slowest
        node's scan for that query plus its merge (the paper's No-sharing
        response-time metric).

        Raises a :class:`KeyError` naming the operation and the ids the
        batch did execute — a bare ``KeyError: 7`` from the dict lookup
        gives no hint that the id belongs to a write (writes have no
        response time) or to a different batch entirely.
        """
        try:
            return self.op_response_seconds[op_id]
        except KeyError:
            known = sorted(self.op_response_seconds)
            raise KeyError(
                f"no response time recorded for op_id {op_id!r}: this batch "
                f"timed read operations {known!r} (writes and ops from "
                "other batches have no response time here)"
            ) from None

    def result_of(self, op_id: int) -> object:
        """The result of one operation, with a diagnosable failure mode."""
        try:
            return self.results[op_id]
        except KeyError:
            known = sorted(self.results)
            raise KeyError(
                f"no result recorded for op_id {op_id!r}: this batch "
                f"executed operations {known!r}"
            ) from None


class Cluster:
    """A Crescando deployment."""

    def __init__(
        self,
        nodes: list[StorageNode],
        num_aggregators: int = 1,
        sharing: bool = True,
        wal=None,
        machine: MachineSpec | None = None,
        numa_aware: bool = True,
        executor=None,
        faults: FaultInjector | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one storage node")
        if num_aggregators < 1:
            raise ValueError("need at least one aggregator")
        self.nodes = nodes
        self.aggregators = [AggregatorNode(i) for i in range(num_aggregators)]
        self.sharing = sharing
        self.clock = SimClock()
        self._version = max(n.table.current_version for n in nodes)
        self._insert_rr = 0
        #: Optional write-ahead log: writes are logged before application
        #: (Section 4.1, crash recovery).
        self.wal = wal
        #: Optional hot standby replicating this cluster's write stream
        #: (state-machine replication; see attach_standby).
        self.standby: "Cluster | None" = None
        #: NUMA model (Section 5.1: "we made sure that the allocated
        #: memory was close to the used cores ... This NUMA-awareness was
        #: critical").  With ``numa_aware`` each node's partition lives in
        #: its own region (penalty 1.0); without it, all partitions live
        #: in region 0 and remote workers pay the remote-access penalty.
        self.machine = machine or PAPER_MACHINE
        self.numa_aware = numa_aware
        #: Optional physical executor for the node scan cycles.  ``None``
        #: keeps the historical in-process loop.  When set (e.g. a
        #: :class:`~repro.simtime.executor.ProcessExecutor`), the cycles
        #: fan out for real; the cluster still books ``cluster.scan`` into
        #: its own clock from the *reported* per-node seconds — the
        #: executor carries a separate clock precisely so the phase is not
        #: double-booked.
        self.executor = executor
        #: Fault plane for the three batch phases (write/scan/merge);
        #: omitted, the ambient injector activated by
        #: :func:`repro.faults.fault_injection` (if any) is picked up at
        #: construction time — same contract as the executors.
        self.faults = faults if faults is not None else current_injector()

    @classmethod
    def from_table(
        cls,
        table: TemporalTable,
        num_storage: int,
        num_aggregators: int = 1,
        partitioner: Partitioner | None = None,
        sharing: bool = True,
        scan_mode: str = "vectorized",
        wal=None,
        machine: MachineSpec | None = None,
        numa_aware: bool = True,
        executor=None,
        deltamap: str | None = None,
    ) -> "Cluster":
        """Partition ``table`` across ``num_storage`` nodes.

        Each node is pinned to a NUMA region in socket-major order,
        matching the "allocated memory was close to the used cores"
        placement of Section 5.1.
        """
        partitioner = partitioner or RoundRobinPartitioner()
        spec = machine or PAPER_MACHINE
        parts = split_table(table, partitioner, num_storage)
        nodes = [
            StorageNode(
                i,
                part,
                numa_region=spec.numa_region(i % spec.cores),
                scan_mode=scan_mode,
                deltamap=deltamap,
            )
            for i, part in enumerate(parts)
        ]
        return cls(
            nodes,
            num_aggregators=num_aggregators,
            sharing=sharing,
            wal=wal,
            machine=spec,
            numa_aware=numa_aware,
            executor=executor,
        )

    def _numa_penalty(self, node_index: int) -> float:
        """Scan-work multiplier for one storage node's worker.

        NUMA-aware placement co-locates partition and worker; naive
        placement allocates everything in region 0 while workers spread
        over the sockets, so remote workers pay the penalty."""
        core = node_index % self.machine.cores
        data_region = (
            self.nodes[node_index].numa_region if self.numa_aware else 0
        )
        return self.machine.scan_penalty(core, data_region, self.numa_aware)

    # ------------------------------------------------------------- batches

    @property
    def num_storage(self) -> int:
        return len(self.nodes)

    @property
    def num_aggregators(self) -> int:
        return len(self.aggregators)

    @property
    def total_rows(self) -> int:
        return sum(len(n) for n in self.nodes)

    def memory_bytes(self) -> int:
        return sum(n.memory_bytes() for n in self.nodes)

    def _fix_pivot(self, op: TemporalAggQuery) -> TemporalAggQuery:
        """Multi-dimensional queries need one cluster-wide pivot choice;
        decide it from the statistics of the first non-empty node."""
        query = op.query
        if not query.is_multidim or query.pivot is not None:
            return op
        for node in self.nodes:
            if len(node.table):
                stats = collect_statistics(node.table, query.varied_dims)
                pivot = choose_pivot(stats, query.varied_dims)
                break
        else:
            pivot = query.varied_dims[-1]
        return dataclasses.replace(op, query=dataclasses.replace(query, pivot=pivot))

    def _apply_update(self, op: UpdateOp, version: int) -> tuple[list, list[float]]:
        """A broadcast update in two phases: every node closes and
        fragments its overlapping versions; exactly one node (the first
        that held an overlapping version) inserts the new version; then all
        nodes commit the version together."""
        for node in self.nodes:
            node.begin_write(version)
        created: list[int] = []
        durations: list[float] = []
        target: StorageNode | None = None
        template: dict | None = None
        for node in self.nodes:
            templates, part, seconds = node.close_for_update(op)
            created.extend(part)
            durations.append(seconds)
            if templates and target is None:
                target = node
                template = templates[0]
        if target is None:
            for node in self.nodes:
                node.table.commit()
            raise KeyError(f"no current version of {op.key_value!r} to update")
        new_values = dict(template)
        for name, value in op.changes.items():
            target.table.schema.column(name)  # validates
            new_values[name] = value
        created.append(target.insert_version(new_values, op.business))
        for node in self.nodes:
            node.commit_write()
        return created, durations

    def execute_batch(self, ops: list) -> BatchResult:
        """Run one batch of mixed operations; see module docstring."""
        writes = [op for op in ops if isinstance(op, WriteOp)]
        reads = [
            self._fix_pivot(op) if isinstance(op, TemporalAggQuery) else op
            for op in ops
            if isinstance(op, ReadOp)
        ]
        unknown = [
            op for op in ops if not isinstance(op, ReadOp + WriteOp)
        ]
        if unknown:
            raise TypeError(f"unsupported operations: {unknown[:3]}")
        metrics().counter("cluster.batches").add(1)
        with span(
            "cluster.batch",
            kind="span",
            writes=len(writes),
            reads=len(reads),
            nodes=len(self.nodes),
            sharing=self.sharing,
        ):
            return self._run_batch(writes, reads)

    def _faulted(self, label: str, index: int, work):
        """Run one batch phase under the fault plane (if any attached).

        Injected faults fire *before* the work body (same contract as
        :func:`repro.faults.inject.attempt_locally`), so a retried phase
        performs its work exactly once and results stay bit-identical to
        a fault-free run; only the retry backoff is booked into the
        clock.  Without an injector this is a plain call.
        """
        if self.faults is None:
            return work()
        session = self.faults.begin_phase(label)
        result, _ = session.execute(
            index,
            functools.partial(attempt_locally, fn=lambda _item: work(), item=None),
        )
        session.finish(self.clock)
        return result

    def _apply_one_write(self, op, version: int) -> tuple[list, list[float]]:
        """Apply a single write op to the node tier; returns the created
        version ids and the per-node simulated durations."""
        durations: list[float] = []
        if isinstance(op, InsertOp):
            node = self.nodes[self._insert_rr % len(self.nodes)]
            self._insert_rr += 1
            created, seconds = node.apply_write(op, version)
            durations.append(seconds)
        elif isinstance(op, UpdateOp):
            created, durations = self._apply_update(op, version)
        else:  # DeleteOp: broadcast, self-contained
            created = []
            for node in self.nodes:
                part, seconds = node.apply_write(op, version)
                created.extend(part)
                durations.append(seconds)
        return created, durations

    def _scan_cycle(self, reads: list) -> list:
        """One read cycle across the node tier (in-process or fanned out
        through the attached physical executor)."""
        if self.executor is None:
            return [node.run_read_cycle(reads) for node in self.nodes]
        return self.executor.map_parallel(
            _NodeReadCycleTask(reads=tuple(reads)),
            self.nodes,
            label="cluster.scan.cycle",
        )

    def _merge_reads(
        self, reads: list, partials: dict, results: dict
    ) -> tuple[dict, list]:
        """Aggregation tier: merge every read's partials (round-robin
        across aggregators); fills ``results`` in place."""
        merge_seconds_per_op: dict[int, float] = {}
        merge_durations: list[float] = []
        for i, op in enumerate(reads):
            aggregator = self.aggregators[i % len(self.aggregators)]
            if isinstance(op, SelectQuery):
                results[op.op_id] = aggregator.merge_select(partials[op.op_id])
                merge_seconds_per_op[op.op_id] = 0.0
            else:
                result, seconds = aggregator.merge_temporal(
                    op.query, partials[op.op_id]
                )
                results[op.op_id] = result
                merge_seconds_per_op[op.op_id] = seconds
                merge_durations.append(seconds)
        return merge_seconds_per_op, merge_durations

    def _run_batch(self, writes: list, reads: list) -> BatchResult:
        results: dict[int, object] = {}

        # --- writes: one global version per operation --------------------
        write_seconds = 0.0
        for w, op in enumerate(writes):
            version = self._version
            if self.wal is not None:
                self.wal.append(version, op)
            created, durations = self._faulted(
                "cluster.write", w,
                functools.partial(self._apply_one_write, op, version),
            )
            results[op.op_id] = created
            step = makespan(durations, len(self.nodes))
            self.clock.parallel("cluster.write", durations, len(self.nodes))
            write_seconds += step
            self._version = version + 1
        for node in self.nodes:  # re-align partitions that saw no write
            node.table.sync_version(self._version)
        if writes and self.standby is not None:
            # State-machine replication: the standby applies the identical
            # write stream and therefore reaches the identical state.
            self.standby.execute_batch(list(writes))

        # --- shared (or per-query) scan cycles ---------------------------
        scan_seconds = 0.0
        node_scan_seconds: list[float] = []
        reports = []
        partials: dict[int, list] = {}
        if reads:
            per_node = self._faulted(
                "cluster.scan", 0,
                functools.partial(self._scan_cycle, reads),
            )
            reports = [report for _, report in per_node]
            for node_results, _report in per_node:
                for op_id, value in node_results.items():
                    partials.setdefault(op_id, []).append(value)
            penalties = [self._numa_penalty(i) for i in range(len(self.nodes))]
            metrics().counter("cluster.numa_penalty_applied").add(
                sum(1 for p in penalties if p > 1.0)
            )
            if self.sharing:
                node_scan_seconds = [
                    r.shared_seconds * p for r, p in zip(reports, penalties)
                ]
            else:
                node_scan_seconds = [
                    r.unshared_seconds * p for r, p in zip(reports, penalties)
                ]
            scan_seconds = makespan(node_scan_seconds, len(self.nodes))
            self.clock.parallel(
                "cluster.scan", node_scan_seconds, len(self.nodes)
            )

        # --- aggregation tier --------------------------------------------
        merge_seconds_per_op, merge_durations = (
            self._faulted(
                "cluster.merge", 0,
                functools.partial(self._merge_reads, reads, partials, results),
            )
            if reads
            else ({}, [])
        )
        merge_seconds = makespan(merge_durations, len(self.aggregators))
        if merge_durations:
            self.clock.parallel(
                "cluster.merge", merge_durations, len(self.aggregators)
            )

        # --- per-operation stand-alone response times ---------------------
        op_response: dict[int, float] = {}
        for op in reads:
            node_times = [
                r.op_seconds(op.op_id) * self._numa_penalty(i)
                for i, r in enumerate(reports)
            ]
            op_response[op.op_id] = (
                makespan(node_times, len(self.nodes))
                + merge_seconds_per_op[op.op_id]
            )

        return BatchResult(
            results=results,
            simulated_seconds=write_seconds + scan_seconds + merge_seconds,
            write_seconds=write_seconds,
            scan_seconds=scan_seconds,
            merge_seconds=merge_seconds,
            node_scan_seconds=node_scan_seconds,
            op_response_seconds=op_response,
        )

    def attach_standby(self, standby: "Cluster") -> None:
        """Register a hot standby (same node count, same current state).

        Every subsequent write batch is forwarded to the standby, which —
        being a deterministic state machine fed the same op stream — stays
        an exact replica (Section 4.1 / [17])."""
        if standby.num_storage != self.num_storage:
            raise ValueError("standby must mirror the storage tier")
        if standby._version != self._version:  # noqa: SLF001
            raise ValueError("standby must start from the same version")
        self.standby = standby

    def failover_node(self, node_id: int) -> None:
        """Shoot down a straggling or failed storage node and continue
        with its hot-standby twin (Section 4.1)."""
        if self.standby is None:
            raise RuntimeError("no standby attached")
        if not 0 <= node_id < len(self.nodes):
            raise IndexError(node_id)
        self.nodes[node_id] = self.standby.nodes[node_id]

    def execute_query(self, op) -> tuple[object, float]:
        """Convenience: run one read operation alone (No-sharing response
        time, the metric of Figures 13, 15, 17-19)."""
        batch = self.execute_batch([op])
        return batch.result_of(op.op_id), batch.response_time(op.op_id)
