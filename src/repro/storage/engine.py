"""Crescando + ParTime wrapped as a benchmark engine.

Core accounting follows Section 5.1: a deployment with ``c`` cores runs
``num_storage`` storage nodes and ``num_aggregators`` aggregator nodes
(the default splits cores half/half as in the throughput experiments; the
response-time experiments of Figures 17-19 use ``c-1`` storage nodes and
one aggregator).  Crescando uses no data indexes, ever (Section 5.1) —
``indexed`` hints on selections are ignored.
"""

from __future__ import annotations

from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.obs.tracer import span
from repro.storage.cluster import Cluster
from repro.storage.partitioning import Partitioner, RoundRobinPartitioner
from repro.faults.inject import FaultInjector, current_injector, make_injector
from repro.simtime.executor import make_executor
from repro.simtime.measure import measured
from repro.storage.queries import SelectQuery, TemporalAggQuery
from repro.systems.base import Engine
from repro.temporal.predicates import Predicate
from repro.temporal.table import TemporalTable


class CrescandoEngine(Engine):
    """Engine facade over a :class:`~repro.storage.cluster.Cluster`."""

    def __init__(
        self,
        num_storage: int = 1,
        num_aggregators: int = 1,
        sharing: bool = False,
        partitioner: Partitioner | None = None,
        scan_mode: str = "vectorized",
        backend: str | None = None,
        faults: "FaultInjector | int | str | None" = None,
        retry=None,
        deltamap: str | None = None,
    ) -> None:
        self.num_storage = num_storage
        self.num_aggregators = num_aggregators
        self.sharing = sharing
        self.partitioner = partitioner or RoundRobinPartitioner()
        self.scan_mode = scan_mode
        #: Step-1 delta-map representation for every node scan
        #: (``"columnar"`` / ``"btree"`` / ``"hash"``); ``None`` derives
        #: from ``scan_mode`` inside :class:`~repro.storage.clockscan.ClockScan`.
        self.deltamap = deltamap
        #: Physical execution backend for the node scan cycles: ``None``
        #: (historical in-process loop) or one of
        #: :data:`repro.simtime.executor.BACKENDS`.  The executor carries
        #: its own clock — the cluster's simulated accounting stays driven
        #: by the reported per-node scan seconds either way.
        self.faults = make_injector(faults, retry)
        if self.faults is None:
            # Ambient activation (``bench --faults``): engines built inside
            # a fault_injection() block join its plan automatically.
            self.faults = current_injector()
        if backend is None and self.faults is not None:
            # Fault injection needs an executor to run the cycles through;
            # the serial backend is the reference substrate.
            backend = "serial"
        self.backend = backend
        self._executor = (
            None
            if backend is None
            else make_executor(backend, workers=num_storage, faults=self.faults)
        )
        if self.faults is None and self._executor is not None:
            self.faults = getattr(self._executor, "faults", None)
        self.cluster: Cluster | None = None
        self.name = f"ParTime ({num_storage + num_aggregators} cores)"

    @classmethod
    def with_cores(
        cls, cores: int, sharing: bool = False, **kwargs
    ) -> "CrescandoEngine":
        """The paper's default split: half storage, half aggregators."""
        if cores < 2:
            raise ValueError("Crescando needs at least 2 cores")
        num_storage = cores // 2
        return cls(
            num_storage=num_storage,
            num_aggregators=cores - num_storage,
            sharing=sharing,
            **kwargs,
        )

    @classmethod
    def response_time_config(cls, cores: int, **kwargs) -> "CrescandoEngine":
        """The Figure 17-19 split: one aggregator, the rest storage."""
        if cores < 2:
            raise ValueError("Crescando needs at least 2 cores")
        return cls(num_storage=cores - 1, num_aggregators=1, **kwargs)

    # -------------------------------------------------------------- engine

    def bulkload(self, table: TemporalTable) -> float:
        """Partitioning the columns across nodes is the whole load — "the
        temporal columns are no different than any other column and
        Crescando creates no data structures that are specific to temporal
        data" (Section 5.7)."""
        with span("crescando.bulkload", kind="span", rows=len(table)):
            with measured() as sw:
                self.cluster = Cluster.from_table(
                    table,
                    num_storage=self.num_storage,
                    num_aggregators=self.num_aggregators,
                    partitioner=self.partitioner,
                    sharing=self.sharing,
                    scan_mode=self.scan_mode,
                    executor=self._executor,
                    deltamap=self.deltamap,
                )
        return sw.elapsed

    def close(self) -> None:
        """Release executor resources (worker processes, if any)."""
        close = getattr(self._executor, "close", None)
        if close is not None:
            close()

    def _require_loaded(self) -> Cluster:
        if self.cluster is None:
            raise RuntimeError("Crescando: bulkload a table first")
        return self.cluster

    def memory_bytes(self) -> int:
        return self._require_loaded().memory_bytes()

    def temporal_aggregation(
        self, query: TemporalAggregationQuery
    ) -> tuple[TemporalAggregationResult, float]:
        cluster = self._require_loaded()
        result, seconds = cluster.execute_query(TemporalAggQuery(query))
        return result, seconds

    def select(self, predicate: Predicate, indexed: bool = False) -> tuple[int, float]:
        # ``indexed`` intentionally ignored: no data indexes in Crescando.
        cluster = self._require_loaded()
        count, seconds = cluster.execute_query(SelectQuery(predicate))
        return count, seconds
