"""Operations that flow through a shared scan.

A batch submitted to the cluster mixes four kinds of operations — exactly
the Amadeus mix of Table 1: cheap selections, temporal aggregations,
updates and inserts.  Each carries an ``op_id`` so results can be matched
back to their submitters by the aggregator tier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.query import TemporalAggregationQuery
from repro.temporal.predicates import Predicate

_ids = itertools.count()


def _next_id() -> int:
    return next(_ids)


@dataclass(frozen=True)
class SelectQuery:
    """A selection (possibly with time-travel predicates): returns the
    number of matching rows (result shipping is out of scope — the paper's
    throughput experiments count queries, not bytes)."""

    predicate: Predicate
    op_id: int = field(default_factory=_next_id)
    #: Whether a conventional engine could serve this from an index
    #: (equality on an indexed key).  Crescando ignores this — it never
    #: uses data indexes (Section 5.1) — but Systems D/M honour it.
    indexed: bool = False


@dataclass(frozen=True)
class TemporalAggQuery:
    """A temporal aggregation query processed with ParTime: Step 1 happens
    inside each node's shared scan, Step 2 on an aggregator node."""

    query: TemporalAggregationQuery
    op_id: int = field(default_factory=_next_id)


@dataclass(frozen=True)
class UpdateOp:
    """A bi-temporal update broadcast to all nodes (round-robin
    partitioning cannot route it); nodes that hold no current version of
    the key apply it as a no-op."""

    key_value: Any
    changes: Mapping[str, Any]
    business: Mapping[str, Any] | None = None
    op_id: int = field(default_factory=_next_id)


@dataclass(frozen=True)
class DeleteOp:
    """A bi-temporal delete, broadcast like an update."""

    key_value: Any
    business: Mapping[str, Any] | None = None
    op_id: int = field(default_factory=_next_id)


@dataclass(frozen=True)
class InsertOp:
    """An insert, routed to exactly one storage node by the cluster."""

    values: Mapping[str, Any]
    business: Mapping[str, Any] | None = None
    op_id: int = field(default_factory=_next_id)


ReadOp = (SelectQuery, TemporalAggQuery)
WriteOp = (UpdateOp, DeleteOp, InsertOp)
