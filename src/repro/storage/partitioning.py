"""Horizontal partitioning schemes for storage nodes.

"Crescando supports any kind of partitioning scheme; in particular, it
supports round-robin partitioning as used in the examples" (Section 4.1),
and ParTime "works best if all cores process the same number of records so
that random or round-robin are good partitioning schemes" (Section 3.2.1).

A partitioner assigns every source row to one of ``n`` partitions.  The
skew a bad scheme introduces is what the partitioning ablation bench
demonstrates (stragglers dominating the parallel phase).
"""

from __future__ import annotations

import numpy as np

from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import FOREVER


class Partitioner:
    """Assigns rows of a source table to partitions."""

    name: str = "?"

    def assign(self, table: TemporalTable, num_partitions: int) -> np.ndarray:
        """Partition index (int array of len(table)) for every row."""
        raise NotImplementedError


class RoundRobinPartitioner(Partitioner):
    """Row ``i`` goes to partition ``i mod n`` — the default and the
    scheme of the paper's running examples (Core 1 even rows, Core 2 odd
    rows)."""

    name = "round-robin"

    def assign(self, table: TemporalTable, num_partitions: int) -> np.ndarray:
        return np.arange(len(table), dtype=np.int64) % num_partitions


class HashPartitioner(Partitioner):
    """Hash of a key column — co-locates all versions of an entity, which
    lets updates be routed to a single node instead of broadcast."""

    name = "hash"

    def __init__(self, key_column: str) -> None:
        self.key_column = key_column

    def assign(self, table: TemporalTable, num_partitions: int) -> np.ndarray:
        keys = table.column(self.key_column)
        return np.array(
            [hash(k) % num_partitions for k in keys], dtype=np.int64
        )


class RangePartitioner(Partitioner):
    """Contiguous ranges of a (time) column.

    Range partitioning on a time column is the *bad* scheme for ParTime
    with range-restricted queries: one partition holds all the relevant
    data and becomes a straggler while the others idle.
    """

    name = "range"

    def __init__(self, column: str) -> None:
        self.column = column

    def assign(self, table: TemporalTable, num_partitions: int) -> np.ndarray:
        values = table.column(self.column).astype(np.int64)
        finite = values[values < FOREVER]
        if len(finite) == 0:
            return np.zeros(len(values), dtype=np.int64)
        # Equi-depth boundaries over the observed values.
        quantiles = np.quantile(finite, np.linspace(0, 1, num_partitions + 1)[1:-1])
        return np.searchsorted(quantiles, np.minimum(values, finite.max())).astype(
            np.int64
        )


def split_table(
    table: TemporalTable, partitioner: Partitioner, num_partitions: int
) -> list[TemporalTable]:
    """Materialise per-partition tables from a source table.

    The per-partition tables share the source schema and are synchronised
    to the source's commit counter so subsequent cluster updates continue
    the same transaction-time sequence.
    """
    assignment = partitioner.assign(table, num_partitions)
    parts: list[TemporalTable] = []
    chunk = table.chunk()
    for p in range(num_partitions):
        part = TemporalTable(table.schema)
        mask = assignment == p
        sub = chunk.select(mask)
        # Bulk-append the partition's rows column by column.
        for name in table.schema.physical_columns():
            part._cols[name].extend(sub.column(name))  # noqa: SLF001
        part.sync_version(table.current_version)
        parts.append(part)
    return parts
