"""Aggregator nodes: ParTime's Step 2 and final result assembly.

"Step 2, merging the delta maps, is carried out by the aggregator that
handles the temporal aggregation query.  To this end, the aggregator waits
until it has received the delta maps of all storage nodes" (Section 4.2).
Aggregators are stateless; any aggregator can handle any query, and each
query is handled by exactly one aggregator — which is why Step 2 is not
parallelised inside Crescando (Section 4.2).
"""

from __future__ import annotations

from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.core.step2 import (
    consolidate_pair,
    merge_delta_maps,
    merge_multidim_maps,
    merge_sorted_arrays,
    merge_window_maps,
    vectorized_mergeable,
)
from repro.simtime.measure import measured
from repro.temporal.timestamps import FOREVER


class AggregatorNode:
    """A stateless aggregator."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.queries_merged = 0

    def merge_select(self, partial_counts: list[int]) -> int:
        """Final result of a selection: the sum of per-node match counts."""
        return int(sum(partial_counts))

    def merge_temporal(
        self, query: TemporalAggregationQuery, partials: list
    ) -> tuple[TemporalAggregationResult, float]:
        """ParTime Step 2 over the storage nodes' partial delta maps;
        returns the final result and the measured merge seconds."""
        agg = query.aggregate_fn
        with measured() as sw:
            if query.is_windowed:
                points = merge_window_maps(
                    partials, query.window, agg, drop_empty=query.drop_empty
                )
                result = TemporalAggregationResult.from_points(
                    query.varied_dims[0], query.window.stride, points, agg.name
                )
            elif query.is_multidim:
                pivot = query.pivot
                nonpivot = [d for d in query.varied_dims if d != pivot]
                raw = merge_multidim_maps(
                    partials,
                    agg,
                    num_dims=len(query.varied_dims),
                    pivot_until=self._until(query, pivot),
                    nonpivot_untils=[self._until(query, d) for d in nonpivot],
                )
                order = nonpivot + [pivot]
                perm = [order.index(d) for d in query.varied_dims]
                rows = [(tuple(ivs[i] for i in perm), v) for ivs, v in raw]
                result = TemporalAggregationResult.from_multidim(
                    query.varied_dims, rows, agg.name
                )
            else:
                until = self._until(query, query.varied_dims[0])
                if vectorized_mergeable(partials):
                    pairs = merge_sorted_arrays(
                        partials, agg, until=until, drop_empty=query.drop_empty
                    )
                else:
                    # Scalar delta maps arrive from the storage nodes one
                    # by one and are consolidated incrementally (the
                    # accumulated map is rewritten per arrival).  For
                    # queries whose delta maps are nearly as large as the
                    # base table — TPC-BiH r2 — this costs ~n*k/2 over k
                    # partitions, which is why r2 *degrades* with the
                    # number of cores in Figure 19 under the scalar
                    # oracles.  Columnar partials take the vectorized
                    # one-pass merge above instead, erasing that Amdahl
                    # floor.
                    merged = partials[0]
                    for partial in partials[1:]:
                        merged = consolidate_pair(merged, partial, agg)
                    pairs = merge_delta_maps(
                        [merged], agg, until=until, drop_empty=query.drop_empty
                    )
                result = TemporalAggregationResult.from_pairs(
                    query.varied_dims[0], pairs, agg.name
                )
        self.queries_merged += 1
        return result, sw.elapsed

    @staticmethod
    def _until(query: TemporalAggregationQuery, dim: str) -> int:
        iv = query.interval_of(dim)
        return FOREVER if iv is None else iv.end
