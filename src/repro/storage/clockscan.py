"""The ClockScan-style shared scan of a storage node.

One scan cycle serves a whole batch of read operations: conceptually the
scan cursor sweeps the partition once, and every tuple is tested against
all queries of the batch ([25]).  The cost structure of sharing is

``cycle = base + sum(per-query increments)``

whereas processing the queries one at a time costs

``sum over queries of (base + increment)``

— the base tuple-access pass is amortised exactly once under sharing.
:class:`ClockScan` measures both components for real: ``base_seconds`` is
a measured pass over the partition's rows, and each operation's increment
is its measured predicate / delta-map work.  The cluster then books either
the shared or the unshared figure, so Experiment 2's comparison (Figure
14) comes out of one physical execution.

ParTime's Step 1 runs *inside* the cycle: a temporal aggregation query's
"result" from a storage node is its partial delta map (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.step1 import (
    generate_delta_map,
    generate_multidim_delta_map,
    generate_windowed_delta_map,
    resolve_deltamap,
)
from repro.obs.metrics import metrics
from repro.simtime.measure import measured
from repro.storage.queries import SelectQuery, TemporalAggQuery
from repro.temporal.predicates import And, ColumnEquals, CurrentVersion
from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import FOREVER


@dataclass
class ScanCycleReport:
    """Measured cost decomposition of one scan cycle on one node.

    ``per_op_seconds`` holds each operation's *marginal* cost inside the
    shared cycle; for query-indexed lookup groups that is the group pass
    divided over its members.  ``standalone_seconds`` holds what the same
    operation costs when executed alone (used by the No-sharing pricing
    and by response times); for non-indexed operations the two coincide.
    """

    rows_scanned: int
    base_seconds: float
    per_op_seconds: dict[int, float] = field(default_factory=dict)
    standalone_seconds: dict[int, float] = field(default_factory=dict)

    @property
    def shared_seconds(self) -> float:
        """Cycle time with scan sharing: one base pass for the batch plus
        every operation's marginal (query-indexed where possible) cost."""
        return self.base_seconds + sum(self.per_op_seconds.values())

    @property
    def unshared_seconds(self) -> float:
        """Total time without sharing: one base pass per operation plus
        its stand-alone evaluation."""
        return sum(
            self.base_seconds + self.standalone_of(op_id)
            for op_id in self.per_op_seconds
        )

    def standalone_of(self, op_id: int) -> float:
        return self.standalone_seconds.get(op_id, self.per_op_seconds[op_id])

    def op_seconds(self, op_id: int) -> float:
        """Stand-alone time of one operation (base + its increment)."""
        return self.base_seconds + self.standalone_of(op_id)


class ClockScan:
    """Shared-scan executor over one partition.

    ``deltamap`` picks the Step-1 delta-map representation (``"columnar"``
    for the NumPy kernels, ``"btree"``/``"hash"`` for a scalar oracle);
    by default it derives from the legacy ``mode`` knob.
    """

    def __init__(
        self,
        table: TemporalTable,
        mode: str = "vectorized",
        deltamap: str | None = None,
    ) -> None:
        self.table = table
        self.mode = mode
        self.deltamap = resolve_deltamap(mode, "btree", deltamap)

    def _measure_base(self) -> float:
        """One pass over the partition — the shared tuple-access cost.

        Summing a time column touches every row once, which is the NumPy
        equivalent of the scan cursor's per-tuple fetch.
        """
        dim = self.table.schema.transaction_dim
        with measured() as sw:
            if len(self.table):
                self.table.column(f"{dim}_start").sum()
        return sw.elapsed

    @staticmethod
    def _indexable(op) -> "tuple[str, bool] | None":
        """Lookup pattern a query index can serve: an equality on one
        value column, optionally AND a current-version filter.  Returns
        the grouping key ``(column, current_only)`` or ``None``."""
        if not isinstance(op, SelectQuery):
            return None
        pred = op.predicate
        current = False
        if isinstance(pred, And) and len(pred.children) == 2:
            eq = [c for c in pred.children if isinstance(c, ColumnEquals)]
            cur = [c for c in pred.children if isinstance(c, CurrentVersion)]
            if len(eq) == 1 and len(cur) == 1:
                pred, current = eq[0], True
        if isinstance(pred, ColumnEquals):
            return pred.column, current
        return None

    def _lookup_value(self, op):
        pred = op.predicate
        if isinstance(pred, And):
            (pred,) = [c for c in pred.children if isinstance(c, ColumnEquals)]
        return pred.value

    def _run_index_group(
        self,
        chunk,
        key: "tuple[str, bool]",
        ops: list,
        results: dict,
        report: ScanCycleReport,
    ) -> None:
        """One pass answers every lookup of the group (the ClockScan
        "index on queries": probe the batch's value set while scanning,
        instead of evaluating each predicate against each tuple)."""
        column, current = key
        with measured() as sw:
            values = chunk.column(column)
            if current:
                dim = self.table.schema.transaction_dim
                values = values[chunk.column(f"{dim}_end") >= FOREVER]
            uniques, counts = np.unique(values, return_counts=True)
            histogram = dict(zip(uniques.tolist(), counts.tolist()))
            for op in ops:
                results[op.op_id] = int(
                    histogram.get(self._lookup_value(op), 0)
                )
        group_seconds = sw.elapsed
        # Stand-alone pricing: one representative predicate evaluated the
        # conventional way (what a single lookup would cost alone).
        with measured() as sw:
            int(ops[0].predicate.mask(chunk).sum())
        standalone = sw.elapsed
        for op in ops:
            report.per_op_seconds[op.op_id] = group_seconds / len(ops)
            report.standalone_seconds[op.op_id] = standalone

    def run_cycle(
        self, reads: list
    ) -> tuple[dict[int, object], ScanCycleReport]:
        """Process a batch of read operations against the partition.

        Returns per-operation partial results (match counts for selects,
        Step 1 delta maps for temporal aggregations) and the measured cost
        report.  Equality lookups are grouped into query indexes: one pass
        per (column, current-only) group serves every lookup in it.
        """
        metrics().counter("scan.cycles").add(1)
        metrics().counter("scan.rows_scanned").add(len(self.table))
        report = ScanCycleReport(
            rows_scanned=len(self.table), base_seconds=self._measure_base()
        )
        chunk = self.table.chunk()
        results: dict[int, object] = {}
        index_groups: dict[tuple[str, bool], list] = {}
        for op in reads:
            key = self._indexable(op)
            if key is not None:
                index_groups.setdefault(key, []).append(op)
                continue
            with measured() as sw:
                if isinstance(op, SelectQuery):
                    results[op.op_id] = int(op.predicate.mask(chunk).sum())
                elif isinstance(op, TemporalAggQuery):
                    results[op.op_id] = self._step1(chunk, op.query)
                else:
                    raise TypeError(f"not a read operation: {op!r}")
            report.per_op_seconds[op.op_id] = sw.elapsed
        for key, ops in index_groups.items():
            self._run_index_group(chunk, key, ops, results, report)
        return results, report

    def _step1(self, chunk, query):
        if query.is_windowed:
            agg = query.aggregate_fn
            return generate_windowed_delta_map(
                chunk,
                query.value_column,
                query.varied_dims[0],
                query.window,
                agg,
                predicate=query.predicate,
                mode=(
                    "vectorized"
                    if agg.columnar and self.deltamap == "columnar"
                    else "pure"
                ),
            )
        if query.is_multidim:
            if query.pivot is None:
                raise ValueError(
                    "multi-dimensional queries must have their pivot fixed "
                    "by the cluster before scanning (all nodes must agree)"
                )
            return generate_multidim_delta_map(
                chunk,
                query.value_column,
                query.varied_dims,
                query.pivot,
                query.aggregate_fn,
                predicate=query.predicate,
                query_intervals=query.query_intervals or None,
            )
        return generate_delta_map(
            chunk,
            query.value_column,
            query.varied_dims[0],
            query.aggregate_fn,
            predicate=query.predicate,
            query_interval=query.interval_of(query.varied_dims[0]),
            mode=self.mode,
            deltamap=self.deltamap,
        )
