"""Write-ahead logging, recovery and hot-standby replication.

Section 4.1: "All read-requests are served completely out of main memory.
Write-requests are logged to disk for crash recovery.  In order to improve
fault-tolerance, each storage node has a hot stand-by node ... that fully
replicates all the data and events of the storage node, thereby following
state-machine replication [17]."  And on stragglers: "Crescando treats
stragglers in the same way as failed nodes: It shoots them down and
continues to operate with the hot standby node."

This module provides:

* :class:`WriteAheadLog` — durable, append-only JSON-lines log of write
  operations, stamped with their global commit version;
* :func:`recover_cluster` — rebuilds a cluster by deterministic replay
  (state-machine recovery: same op stream + same routing decisions =
  same state);
* hot-standby support lives on the cluster itself
  (:meth:`~repro.storage.cluster.Cluster.attach_standby` /
  :meth:`~repro.storage.cluster.Cluster.failover_node`).
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator

from repro.faults.inject import FaultInjector, current_injector
from repro.faults.plan import WAL_KINDS, FaultInjected
from repro.storage.queries import DeleteOp, InsertOp, UpdateOp
from repro.temporal.schema import TableSchema
from repro.temporal.timestamps import Interval


def _encode_business(business) -> dict | None:
    if business is None:
        return None
    out = {}
    for dim, value in dict(business).items():
        if isinstance(value, Interval):
            out[dim] = [int(value.start), int(value.end)]
        elif isinstance(value, tuple):
            out[dim] = [int(value[0]), int(value[1])]
        else:
            out[dim] = int(value)
    return out


def _decode_business(payload):
    if payload is None:
        return None
    out = {}
    for dim, value in payload.items():
        if isinstance(value, list):
            out[dim] = Interval(value[0], value[1])
        else:
            out[dim] = value
    return out


def _plain(values: dict) -> dict:
    """JSON-encodable copies of value dicts (NumPy scalars -> Python)."""
    out = {}
    for name, value in values.items():
        if hasattr(value, "item"):
            value = value.item()
        out[name] = value
    return out


def encode_op(op) -> dict:
    """Serialise one write operation to a JSON-encodable record."""
    if isinstance(op, InsertOp):
        return {
            "kind": "insert",
            "values": _plain(dict(op.values)),
            "business": _encode_business(op.business),
        }
    if isinstance(op, UpdateOp):
        return {
            "kind": "update",
            "key": _plain({"k": op.key_value})["k"],
            "changes": _plain(dict(op.changes)),
            "business": _encode_business(op.business),
        }
    if isinstance(op, DeleteOp):
        return {
            "kind": "delete",
            "key": _plain({"k": op.key_value})["k"],
            "business": _encode_business(op.business),
        }
    raise TypeError(f"not a loggable write: {op!r}")


def decode_op(record: dict):
    """Inverse of :func:`encode_op` (a fresh op_id is assigned)."""
    kind = record["kind"]
    if kind == "insert":
        return InsertOp(record["values"], _decode_business(record["business"]))
    if kind == "update":
        return UpdateOp(
            record["key"], record["changes"], _decode_business(record["business"])
        )
    if kind == "delete":
        return DeleteOp(record["key"], _decode_business(record["business"]))
    raise ValueError(f"unknown WAL record kind {kind!r}")


class WriteAheadLog:
    """Append-only, fsync-on-append log of versioned write operations.

    ``faults`` attaches a :class:`~repro.faults.FaultInjector` whose plan
    may schedule ``wal_torn`` faults against :meth:`append`: the append
    writes only a deterministic prefix of its record (a torn write, as
    after a crash mid-``write``), the torn bytes are truncated away and
    the append retried under the injector's
    :class:`~repro.faults.RetryPolicy`.  An append that exhausts its
    retries leaves the torn record on disk — exactly the crash state
    :func:`recover_cluster` is specified against.  Omitted, the ambient
    injector (if any) is picked up at construction, like the executors.
    """

    def __init__(
        self,
        path: str,
        sync: bool = False,
        faults: FaultInjector | None = None,
    ) -> None:
        self.path = path
        self.sync = sync
        self._file: IO[str] = open(path, "a", encoding="utf-8")
        self.appended = 0
        self.faults = faults if faults is not None else current_injector()

    def append(self, version: int, op) -> None:
        """Durably record one write *before* it is applied."""
        record = {"version": int(version), "op": encode_op(op)}
        line = json.dumps(record) + "\n"
        if self.faults is None:
            self._write(line)
        else:
            self._append_with_faults(line)
        self.appended += 1

    def _write(self, text: str) -> None:
        self._file.write(text)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def _append_with_faults(self, line: str) -> None:
        """One logical append under the fault plane.

        Each attempt first truncates the file back to the pre-append
        offset (dropping any torn prefix a previous attempt left — the
        file is opened ``O_APPEND``, so truncate-then-write still lands
        the record at the end), then either writes the full record or
        enacts the scheduled tear.  The torn prefix is capped at
        ``len(line) - 2`` bytes: a proper prefix of a JSON object is
        never valid JSON, so :meth:`replay` provably discards it.
        """
        session = self.faults.begin_phase("wal.append", kinds=WAL_KINDS)
        self._file.flush()
        start = os.path.getsize(self.path)

        def attempt(spec) -> tuple[None, float]:
            os.truncate(self.path, start)
            if spec is not None and spec.kind == "wal_torn":
                torn = line[: min(int(len(line) * spec.fraction), len(line) - 2)]
                self._write(torn)
                raise FaultInjected(
                    "wal_torn",
                    site="wal.append",
                    detail=f"{len(torn)}/{len(line)} bytes written",
                )
            self._write(line)
            return None, 0.0

        try:
            session.execute(0, attempt)
        finally:
            # Book backoff even when the append gives up: the torn record
            # stays on disk (the crash state recovery is defined against).
            session.finish()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def replay(path: str) -> Iterator[tuple[int, object]]:
        """Yield (version, op) records in log order.

        A torn final line (crash mid-append) is discarded, never raised:
        it was never acknowledged.  The trailing newline is the *commit
        marker* — a crash can land exactly between a record's last byte
        and its newline, leaving a parseable-but-unterminated line, so
        parseability alone must not imply durability (pinned byte-by-byte
        by the crash-point matrix in ``tests/test_fault_injection.py``).
        """
        with open(path, encoding="utf-8") as f:
            for raw in f:
                if not raw.endswith("\n"):
                    break  # torn tail: the commit marker never landed
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail with a (rarer) mid-record crash
                yield record["version"], decode_op(record["op"])


def recover_cluster(
    schema: TableSchema,
    wal_path: str,
    num_storage: int,
    num_aggregators: int = 1,
    sharing: bool = True,
):
    """Rebuild a cluster from an empty table plus WAL replay.

    Recovery is deterministic state-machine replay: the fresh cluster
    makes the same routing decisions (round-robin insert targets,
    broadcast updates) for the same op stream, so it converges to the
    crashed cluster's exact state.  Versions recorded in the log are
    asserted against the replayed commit counter.
    """
    from repro.storage.cluster import Cluster
    from repro.temporal.table import TemporalTable

    empty = TemporalTable(schema)
    cluster = Cluster.from_table(
        empty, num_storage, num_aggregators=num_aggregators, sharing=sharing
    )
    for version, op in WriteAheadLog.replay(wal_path):
        if version != cluster._version:  # noqa: SLF001 — recovery invariant
            raise RuntimeError(
                f"WAL replay out of order: log version {version}, "
                f"cluster at {cluster._version}"  # noqa: SLF001
            )
        cluster.execute_batch([op])
    return cluster
