"""Storage nodes: one partition, one shared scan, NUMA affinity.

"Each storage node keeps a different partition of a (temporal or
non-temporal) table ... All read-requests are served completely out of
main memory" (Section 4.1).  A node applies the write operations the
cluster routes to it (updates and deletes arrive broadcast, inserts are
routed) and answers read batches through its :class:`ClockScan`.
"""

from __future__ import annotations

from repro.simtime.measure import measured
from repro.storage.clockscan import ClockScan, ScanCycleReport
from repro.storage.queries import DeleteOp, InsertOp, UpdateOp
from repro.temporal.table import TemporalTable


class StorageNode:
    """One shared-nothing storage node."""

    def __init__(
        self,
        node_id: int,
        table: TemporalTable,
        numa_region: int = 0,
        scan_mode: str = "vectorized",
        deltamap: str | None = None,
    ) -> None:
        self.node_id = node_id
        self.table = table
        self.numa_region = numa_region
        self.scan = ClockScan(table, mode=scan_mode, deltamap=deltamap)
        self.updates_applied = 0

    def __len__(self) -> int:
        return len(self.table)

    def apply_write(self, op, version: int) -> tuple[object, float]:
        """Apply a self-contained write (insert or delete) at the given
        global version; returns (created row ids, measured seconds).

        Updates are *not* self-contained under broadcast — the new version
        must be inserted on exactly one node — so the cluster drives them
        through :meth:`begin_write` / :meth:`close_for_update` /
        :meth:`insert_version` / :meth:`commit_write` instead.
        """
        self.table.sync_version(version)
        with measured() as sw:
            if isinstance(op, DeleteOp):
                created = self.table.delete(
                    op.key_value, op.business, missing_ok=True
                )
            elif isinstance(op, InsertOp):
                created = [self.table.insert(op.values, op.business)]
            else:
                raise TypeError(f"not a self-contained write: {op!r}")
        self.updates_applied += 1
        return created, sw.elapsed

    # --- two-phase (distributed) updates --------------------------------

    def begin_write(self, version: int) -> None:
        self.table.sync_version(version)
        self.table.begin()

    def close_for_update(self, op: UpdateOp) -> tuple[list[dict], list[int], float]:
        """Phase 1 of a broadcast update on this partition: close the
        overlapping current versions and re-insert their uncovered
        fragments.  Returns (value templates, created row ids, seconds)."""
        with measured() as sw:
            templates, created = self.table.close_versions(
                op.key_value, op.business
            )
        return templates, created, sw.elapsed

    def insert_version(self, values, business) -> int:
        """Phase 2, on the one chosen node: the update's new version."""
        return self.table.insert(values, business)

    def commit_write(self) -> None:
        self.table.commit()
        self.updates_applied += 1

    def run_read_cycle(self, reads: list) -> tuple[dict[int, object], ScanCycleReport]:
        """One shared-scan cycle over this node's partition."""
        return self.scan.run_cycle(reads)

    def memory_bytes(self) -> int:
        return self.table.memory_bytes()
