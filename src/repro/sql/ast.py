"""Abstract syntax of the temporal SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` with op in =, <>, <, <=, >, >=."""

    column: str
    op: str
    value: object


@dataclass(frozen=True)
class InList:
    """``column IN (v1, v2, ...)``."""

    column: str
    values: tuple


@dataclass(frozen=True)
class BetweenCond:
    """``column BETWEEN lo AND hi`` (half-open, like all ranges here)."""

    column: str
    lo: object
    hi: object


@dataclass(frozen=True)
class AsOfCond:
    """``<dim> AS OF <ts>`` — SQL:2011 time travel on one dimension."""

    dim: str
    ts: int


@dataclass(frozen=True)
class CurrentCond:
    """``CURRENT(<dim>)`` — only currently valid versions."""

    dim: str


@dataclass(frozen=True)
class OverlapsCond:
    """``<dim> OVERLAPS (lo, hi)`` — validity intersects the range."""

    dim: str
    lo: int
    hi: int


Condition = (Comparison, InList, BetweenCond, AsOfCond, CurrentCond, OverlapsCond)


@dataclass(frozen=True)
class WindowClause:
    """``WINDOW FROM <origin> STRIDE <stride> COUNT <count>``."""

    origin: int
    stride: int
    count: int


@dataclass(frozen=True)
class SelectStmt:
    """One parsed SELECT."""

    aggregate: str  # sum/count/avg/min/max/median/product
    argument: str | None  # column name, or None for COUNT(*)
    table: str
    conditions: tuple = field(default_factory=tuple)
    temporal_dims: tuple[str, ...] = ()
    window: WindowClause | None = None
    pivot: str | None = None
    drop_empty: bool = False

    @property
    def is_temporal_aggregation(self) -> bool:
        return bool(self.temporal_dims)


@dataclass(frozen=True)
class JoinStmt:
    """A temporal equi-join (the future-work operator as SQL).

    ``SELECT COUNT(*) FROM left TEMPORAL JOIN right ON lkey = rkey
    USING dim`` counts the matched version pairs; ``SELECT * ...``
    returns the :class:`~repro.core.joins.JoinRow` list.
    """

    left: str
    right: str
    left_key: str
    right_key: str
    dim: str
    count_only: bool
