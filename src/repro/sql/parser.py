"""Recursive-descent parser for the temporal SQL dialect.

Grammar (keywords case-insensitive)::

    select     := SELECT agg_call FROM IDENT
                  [ WHERE condition (AND condition)* ]
                  [ GROUP BY TEMPORAL '(' IDENT (',' IDENT)* ')' ]
                  [ WINDOW FROM NUMBER STRIDE NUMBER COUNT NUMBER ]
                  [ PIVOT IDENT ]
                  [ DROP EMPTY ]
    agg_call   := IDENT '(' ( IDENT | '*' ) ')'
    condition  := CURRENT '(' IDENT ')'
                | IDENT AS OF literal
                | IDENT OVERLAPS '(' literal ',' literal ')'
                | IDENT BETWEEN literal AND literal
                | IDENT IN '(' literal (',' literal)* ')'
                | IDENT cmp_op literal
    literal    := NUMBER | STRING | DATE 'YYYY-MM-DD' | INF
"""

from __future__ import annotations

from repro.sql.ast import (
    AsOfCond,
    BetweenCond,
    Comparison,
    CurrentCond,
    InList,
    JoinStmt,
    OverlapsCond,
    SelectStmt,
    WindowClause,
)
from repro.sql.errors import SqlError
from repro.sql.lexer import Token, tokenize

_AGGREGATES = {"sum", "count", "avg", "min", "max", "median", "product"}
_CMP_OPS = {"EQ": "=", "NE": "<>", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.i = 0

    # ------------------------------------------------------------ plumbing

    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        token = self.cur
        self.i += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.cur.kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str, what: str | None = None) -> Token:
        if self.cur.kind != kind:
            raise SqlError(
                f"expected {what or kind}, found {self.cur.value!r}",
                self.source,
                self.cur.pos,
            )
        return self.advance()

    # ------------------------------------------------------------- grammar

    def parse(self) -> "SelectStmt | JoinStmt":
        self.expect("SELECT")
        if self.cur.kind == "STAR":
            # ``SELECT *`` is only meaningful for TEMPORAL JOIN statements.
            self.advance()
            aggregate, argument = "*", None
        else:
            aggregate, argument = self._agg_call()
        self.expect("FROM")
        table = str(self.expect("IDENT", "table name").value)

        if self.cur.kind == "TEMPORAL":
            return self._join_tail(aggregate, argument, table)
        if aggregate == "*":
            raise SqlError(
                "SELECT * is only supported with TEMPORAL JOIN",
                self.source,
                self.cur.pos,
            )

        conditions: list = []
        if self.accept("WHERE"):
            conditions.append(self._condition())
            while self.accept("AND"):
                conditions.append(self._condition())

        temporal_dims: tuple[str, ...] = ()
        if self.accept("GROUP"):
            self.expect("BY")
            self.expect("TEMPORAL")
            self.expect("LPAREN")
            dims = [str(self.expect("IDENT", "time dimension").value)]
            while self.accept("COMMA"):
                dims.append(str(self.expect("IDENT", "time dimension").value))
            self.expect("RPAREN")
            temporal_dims = tuple(dims)

        window = None
        if self.accept("WINDOW"):
            self.expect("FROM")
            origin = self._int("window origin")
            self.expect("STRIDE")
            stride = self._int("window stride")
            self.expect("COUNT")
            count = self._int("window count")
            window = WindowClause(origin, stride, count)

        pivot = None
        if self.accept("PIVOT"):
            pivot = str(self.expect("IDENT", "pivot dimension").value)

        drop_empty = False
        if self.accept("DROP"):
            self.expect("EMPTY")
            drop_empty = True

        self.expect("EOF", "end of statement")
        return SelectStmt(
            aggregate=aggregate,
            argument=argument,
            table=table,
            conditions=tuple(conditions),
            temporal_dims=temporal_dims,
            window=window,
            pivot=pivot,
            drop_empty=drop_empty,
        )

    def _join_tail(self, aggregate, argument, left: str) -> JoinStmt:
        """``... FROM left TEMPORAL JOIN right ON lkey = rkey USING dim``."""
        if aggregate not in ("*", "count") or argument is not None:
            raise SqlError(
                "a TEMPORAL JOIN selects * (the matched pairs) or COUNT(*)",
                self.source,
                self.cur.pos,
            )
        self.expect("TEMPORAL")
        self.expect("JOIN")
        right = str(self.expect("IDENT", "right table name").value)
        self.expect("ON")
        left_key = str(self.expect("IDENT", "left join key").value)
        self.expect("EQ", "'='")
        right_key = str(self.expect("IDENT", "right join key").value)
        self.expect("USING")
        dim = str(self.expect("IDENT", "join time dimension").value)
        self.expect("EOF", "end of statement")
        return JoinStmt(
            left=left,
            right=right,
            left_key=left_key,
            right_key=right_key,
            dim=dim,
            count_only=aggregate == "count",
        )

    def _agg_call(self) -> tuple[str, str | None]:
        # COUNT doubles as a keyword (WINDOW ... COUNT n), so accept it
        # here explicitly alongside plain identifiers.
        if self.cur.kind == "COUNT":
            name_tok = self.advance()
        else:
            name_tok = self.expect("IDENT", "aggregate function")
        name = str(name_tok.value).lower()
        if name not in _AGGREGATES:
            raise SqlError(
                f"unknown aggregate {name_tok.value!r}; "
                f"known: {sorted(_AGGREGATES)}",
                self.source,
                name_tok.pos,
            )
        self.expect("LPAREN")
        if self.accept("STAR"):
            argument = None
        else:
            argument = str(self.expect("IDENT", "column name").value)
        self.expect("RPAREN")
        return name, argument

    def _condition(self):
        if self.accept("CURRENT"):
            self.expect("LPAREN")
            dim = str(self.expect("IDENT", "time dimension").value)
            self.expect("RPAREN")
            return CurrentCond(dim)
        ident = self.expect("IDENT", "column or dimension")
        name = str(ident.value)
        if self.accept("AS"):
            self.expect("OF")
            return AsOfCond(name, self._int("AS OF timestamp"))
        if self.accept("OVERLAPS"):
            self.expect("LPAREN")
            lo = self._int("range start")
            self.expect("COMMA")
            hi = self._int("range end")
            self.expect("RPAREN")
            return OverlapsCond(name, lo, hi)
        if self.accept("BETWEEN"):
            lo = self._literal()
            self.expect("AND")
            hi = self._literal()
            return BetweenCond(name, lo, hi)
        if self.accept("IN"):
            self.expect("LPAREN")
            values = [self._literal()]
            while self.accept("COMMA"):
                values.append(self._literal())
            self.expect("RPAREN")
            return InList(name, tuple(values))
        for kind, op in _CMP_OPS.items():
            if self.accept(kind):
                return Comparison(name, op, self._literal())
        raise SqlError(
            f"expected a condition operator after {name!r}",
            self.source,
            self.cur.pos,
        )

    def _literal(self):
        token = self.cur
        if token.kind in ("NUMBER", "STRING"):
            return self.advance().value
        raise SqlError(
            f"expected a literal, found {token.value!r}", self.source, token.pos
        )

    def _int(self, what: str) -> int:
        token = self.expect("NUMBER", what)
        if not isinstance(token.value, int):
            raise SqlError(f"{what} must be an integer", self.source, token.pos)
        return token.value


def parse(source: str) -> SelectStmt:
    """Parse one SELECT statement.

    >>> stmt = parse("SELECT SUM(salary) FROM employee GROUP BY TEMPORAL (tt)")
    >>> stmt.aggregate, stmt.temporal_dims
    ('sum', ('tt',))
    """
    return _Parser(source).parse()
