"""A tiny database facade: registered tables + SQL entry point.

:class:`Database` is what a downstream user touches first: register
bi-temporal tables, then run the temporal SQL dialect against them.
Temporal aggregations execute through :class:`~repro.core.partime.ParTime`
with a configurable (or optimizer-chosen) degree of parallelism;
selections are vectorized counts.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.joins import ParTimeJoin
from repro.core.optimizer import ParallelismOptimizer
from repro.core.partime import ParTime
from repro.faults.inject import make_injector
from repro.obs.tracer import Span, tracing
from repro.sql.ast import JoinStmt
from repro.sql.errors import SqlError
from repro.sql.parser import parse
from repro.sql.planner import annotate_plan, plan, plan_join
from repro.simtime.executor import make_executor
from repro.temporal.schema import ColumnType
from repro.temporal.table import TemporalTable


def _statement_key(sql: str) -> str:
    """Whitespace-normalised statement text, the key under which the last
    execution's trace is remembered for ``EXPLAIN``."""
    return " ".join(sql.split())


class Database:
    """A named collection of bi-temporal tables, queryable with SQL.

    >>> # db = Database(workers=8)
    >>> # db.register("employee", table)
    >>> # db.query("SELECT SUM(salary) FROM employee GROUP BY TEMPORAL (tt)")

    ``backend`` selects how the parallel phases physically run (see
    docs/executors.md): ``"serial"`` (default; simulated-parallel),
    ``"threads"`` or ``"process"``.  The answers are backend-independent
    — the parity suite pins that — only wall-clock time changes.
    """

    #: Default bound on the per-statement trace history (see ``query``).
    TRACE_CACHE_SIZE = 128

    def __init__(
        self,
        workers: int = 4,
        mode: str = "vectorized",
        backend: str = "serial",
        faults: "FaultInjector | FaultPlan | int | str | None" = None,
        retry: "RetryPolicy | None" = None,
        trace_cache_size: int | None = None,
        adaptive: bool = False,
    ) -> None:
        self.workers = workers
        self.backend = backend
        #: Adaptive indexing (docs/adaptive_indexing.md): eligible
        #: one-dimensional columnar aggregations route to a per-table
        #: cracked Timeline Index that refines itself under the query
        #: traffic; everything else still executes through ParTime.
        self.adaptive = bool(adaptive)
        self._adaptive_engines: dict[str, tuple] = {}
        #: The fault injector (if any) every statement executes under —
        #: an explicit plan/seed, or the ambient one picked up by the
        #: executor at construction (see docs/fault_injection.md).
        self.faults = make_injector(faults, retry)
        self._executor = make_executor(backend, workers=workers, faults=self.faults)
        if self.faults is None:
            self.faults = getattr(self._executor, "faults", None)
        self._partime = ParTime(mode=mode)
        self._tables: dict[str, TemporalTable] = {}
        #: Root span of the most recently executed statement, and the
        #: per-statement history ``EXPLAIN`` annotates plans from.  The
        #: history is an LRU bounded at ``trace_cache_size`` entries:
        #: under server traffic every distinct statement text is a new
        #: key, and an unbounded dict of span trees is a memory leak.
        self.last_trace: Span | None = None
        self.trace_cache_size = (
            self.TRACE_CACHE_SIZE if trace_cache_size is None else trace_cache_size
        )
        if self.trace_cache_size < 1:
            raise ValueError("trace_cache_size must be at least 1")
        self._traces: OrderedDict[str, Span] = OrderedDict()
        self._closed = False

    @property
    def executor(self):
        """The physical executor statements run on (see docs/executors.md).

        Exposed so co-operating tiers — the serving engine's per-table
        clusters — can share one worker pool instead of spawning their
        own."""
        return self._executor

    @property
    def closed(self) -> bool:
        return self._closed

    def register(self, name: str, table: TemporalTable) -> None:
        """Make a table visible to SQL under ``name``."""
        self._tables[name] = table

    def table(self, name: str) -> TemporalTable:
        try:
            return self._tables[name]
        except KeyError:
            raise SqlError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def query(
        self, sql: str, workers: int | None = None
    ) -> "TemporalAggregationResult | int":
        """Parse, plan and execute one statement.

        Temporal aggregations return a
        :class:`~repro.core.result.TemporalAggregationResult`; ``COUNT(*)``
        selections return the matching row count.

        Every execution runs under a tracer; the resulting span tree is
        kept (per normalised statement text, and as :attr:`last_trace`)
        and rendered by :meth:`explain` — the EXPLAIN-ANALYZE side of the
        observability layer (see docs/observability.md).
        """
        if self._closed:
            raise SqlError(
                "database is closed — no statements can run after close() "
                "(build a new Database to continue)"
            )
        stmt = parse(sql)
        key = _statement_key(sql)
        with tracing(f"sql:{key}") as tracer:
            result = self._execute(stmt, workers)
        self.last_trace = tracer.root
        self._traces[key] = tracer.root
        self._traces.move_to_end(key)
        while len(self._traces) > self.trace_cache_size:
            self._traces.popitem(last=False)
        return result

    def _execute(self, stmt, workers: int | None):
        if isinstance(stmt, JoinStmt):
            left, right = self.table(stmt.left), self.table(stmt.right)
            plan_join(stmt, left.schema, right.schema)
            rows = ParTimeJoin().execute(
                left,
                right,
                stmt.left_key,
                stmt.right_key,
                dim=stmt.dim,
                workers=workers or self.workers,
            )
            return len(rows) if stmt.count_only else rows
        table = self.table(stmt.table)
        kind, compiled = plan(stmt, table.schema)
        if kind == "select":
            return int(compiled.mask(table.chunk()).sum())
        if self.adaptive:
            engine = self._adaptive_engine_for(stmt.table, table, compiled)
            if engine is not None:
                result, _seconds = engine.temporal_aggregation(compiled)
                return result
        return self._partime.execute(
            table,
            compiled,
            workers=workers or self.workers,
            executor=self._executor,
        )

    def _adaptive_engine_for(self, name: str, table, compiled):
        """The per-table cracked Timeline engine, if this aggregation is
        eligible for it — one-dimensional, columnar aggregate, numeric (or
        absent) value column.  Multi-dimensional queries, non-columnar
        aggregates (MIN/MAX/MEDIAN/PRODUCT) and string columns fall back
        to ParTime: cracking only accelerates what the event-map delta
        algebra can answer.  The engine is built lazily on first eligible
        query and refreshed when the table's version/row stamp moves."""
        if compiled.is_multidim or not compiled.aggregate_fn.columnar:
            return None
        numeric = tuple(
            col.name
            for col in table.schema.columns
            if col.ctype in (ColumnType.INT, ColumnType.FLOAT)
        )
        if compiled.value_column is not None and compiled.value_column not in numeric:
            return None
        from repro.timeline.engine import TimelineEngine

        stamp = (table.current_version, len(table))
        cached = self._adaptive_engines.get(name)
        if cached is not None:
            engine, seen = cached
            if seen != stamp:
                engine.refresh()
                self._adaptive_engines[name] = (engine, stamp)
            return engine
        engine = TimelineEngine(
            value_columns=numeric, adaptive=True, executor=self._executor
        )
        engine.bulkload(table)
        self._adaptive_engines[name] = (engine, stamp)
        return engine

    def close(self) -> None:
        """Release executor resources (worker processes, if any).

        Idempotent: a second ``close()`` is a no-op, and a ``query()``
        after close raises a clear :class:`SqlError` instead of hitting a
        shut-down executor with a cryptic backend error — the server's
        shutdown path (stop former, close engine, close database, in any
        interleaving a signal produces) relies on both properties."""
        if self._closed:
            return
        self._closed = True
        close = getattr(self._executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def explain(self, sql: str) -> str:
        """A human-readable plan description (no execution).

        When the same statement (up to whitespace) has been executed on
        this database before, the plan is annotated with the span tree of
        that last execution — per-phase simulated and measured time."""
        stmt = parse(sql)
        key = _statement_key(sql)
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)  # an EXPLAIN is a use, LRU-wise
        if isinstance(stmt, JoinStmt):
            text = (
                f"ParTime temporal equi-join {stmt.left} x {stmt.right}\n"
                f"  on:      {stmt.left_key} = {stmt.right_key}\n"
                f"  overlap: {stmt.dim}\n"
                f"  output:  {'count' if stmt.count_only else 'matched pairs'}"
            )
            return annotate_plan(text, trace)
        table = self.table(stmt.table)
        kind, compiled = plan(stmt, table.schema)
        if kind == "select":
            return annotate_plan(
                f"SELECT COUNT(*) scan of {stmt.table}: {compiled!r}", trace
            )
        lines = [
            f"ParTime temporal aggregation on {stmt.table}",
            f"  aggregate:    {compiled.aggregate}({compiled.value_column or '*'})",
            f"  varied dims:  {', '.join(compiled.varied_dims)}",
            f"  predicate:    {compiled.predicate!r}",
        ]
        if compiled.query_intervals:
            lines.append(f"  ranges:       {compiled.query_intervals}")
        if compiled.window is not None:
            lines.append(f"  window:       {compiled.window}")
        if compiled.is_multidim:
            lines.append(f"  pivot:        {compiled.pivot or '(by statistics)'}")
        lines.append(f"  workers:      {self.workers}")
        return annotate_plan("\n".join(lines), trace)

    def tune_workers(
        self, sql: str, max_workers: int = 32, probe_workers: int = 8
    ) -> int:
        """Calibrate the parallelism cost model on this query and return
        the optimal degree (future work #3 as a user-facing feature)."""
        stmt = parse(sql)
        if isinstance(stmt, JoinStmt):
            return self.workers  # join scaling is near-linear; no tuning
        table = self.table(stmt.table)
        kind, compiled = plan(stmt, table.schema)
        if kind != "aggregate":
            return 1
        optimizer = ParallelismOptimizer.calibrate(
            table, compiled, probe_workers=probe_workers
        )
        return optimizer.optimal_workers(max_workers)
