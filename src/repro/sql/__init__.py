"""A small temporal SQL dialect over ParTime.

Section 4.3 notes that "ParTime can be added to the compiler of an
extensible temporal database system just like any other new algorithm".
This package is that compiler surface in miniature: a declarative, SQL:2011
-flavoured dialect that covers the paper's query classes and compiles to
the engine-neutral query objects:

.. code-block:: sql

    -- Example 1 (Figure 2): payroll in 1995 per database version
    SELECT SUM(salary) FROM employee
    WHERE bt OVERLAPS (9131, 9496)
    GROUP BY TEMPORAL (tt)

    -- Example 3 (Figure 4): payroll at the start of each year
    SELECT SUM(salary) FROM employee
    WHERE CURRENT(tt)
    GROUP BY TEMPORAL (bt)
    WINDOW FROM 8401 STRIDE 365 COUNT 3

    -- time travel + selection
    SELECT COUNT(*) FROM bookings
    WHERE flight_id = 7 AND tt AS OF 120

    -- the future-work temporal join
    SELECT COUNT(*) FROM orders TEMPORAL JOIN lineitem
    ON orderkey = orderkey USING bt

Entry points: :func:`~repro.sql.parser.parse` (text → AST),
:func:`~repro.sql.planner.plan` (AST + schema → query object) and
:class:`~repro.sql.database.Database` (register tables, run SQL).
"""

from repro.sql.ast import SelectStmt
from repro.sql.database import Database
from repro.sql.errors import SqlError
from repro.sql.parser import parse
from repro.sql.planner import plan

__all__ = ["Database", "SelectStmt", "SqlError", "parse", "plan"]
