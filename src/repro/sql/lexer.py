"""Tokenizer for the temporal SQL dialect.

Hand-rolled single-pass scanner: identifiers/keywords, integer and float
literals, single-quoted strings, ``DATE 'YYYY-MM-DD'`` literals (folded to
day timestamps at lex time), the ``INF`` literal (the FOREVER sentinel),
punctuation and comparison operators.  Keywords are case-insensitive;
identifiers preserve case.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.sql.errors import SqlError
from repro.temporal.timestamps import FOREVER, date_to_ts

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "TEMPORAL",
    "WINDOW", "STRIDE", "COUNT", "PIVOT", "AS", "OF", "CURRENT",
    "OVERLAPS", "BETWEEN", "IN", "NOT", "DATE", "INF", "DROP", "EMPTY",
    "JOIN", "ON", "USING",
}

PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    "*": "STAR",
    "=": "EQ",
    "<": "LT",
    ">": "GT",
    "<=": "LE",
    ">=": "GE",
    "<>": "NE",
    "!=": "NE",
}


class Token(NamedTuple):
    kind: str  # keyword name, "IDENT", "NUMBER", "STRING", punct kind, "EOF"
    value: object
    pos: int


def tokenize(source: str) -> list[Token]:
    """The full token stream (EOF-terminated)."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if source.startswith("--", i):  # line comment
            nl = source.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            upper = word.upper()
            if upper == "DATE":
                yield from _date_literal(source, start, i)
                # _date_literal consumed the string literal; skip it here.
                i = _skip_string(source, i)
                continue
            if upper == "INF":
                yield Token("NUMBER", FOREVER, start)
                continue
            if upper in KEYWORDS:
                yield Token(upper, word, start)
            else:
                yield Token("IDENT", word, start)
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            start = i
            if ch == "-":
                i += 1
            while i < n and source[i].isdigit():
                i += 1
            if i < n and source[i] == "." and i + 1 < n and source[i + 1].isdigit():
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
                yield Token("NUMBER", float(source[start:i]), start)
            else:
                yield Token("NUMBER", int(source[start:i]), start)
            continue
        if ch == "'":
            end = source.find("'", i + 1)
            if end < 0:
                raise SqlError("unterminated string literal", source, i)
            yield Token("STRING", source[i + 1 : end], i)
            i = end + 1
            continue
        two = source[i : i + 2]
        if two in PUNCT:
            yield Token(PUNCT[two], two, i)
            i += 2
            continue
        if ch in PUNCT:
            yield Token(PUNCT[ch], ch, i)
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r}", source, i)
    yield Token("EOF", None, n)


def _skip_string(source: str, i: int) -> int:
    """Position after the whitespace + string literal following DATE."""
    n = len(source)
    while i < n and source[i].isspace():
        i += 1
    if i >= n or source[i] != "'":
        raise SqlError("DATE must be followed by a quoted 'YYYY-MM-DD'", source, i)
    end = source.find("'", i + 1)
    if end < 0:
        raise SqlError("unterminated date literal", source, i)
    return end + 1


def _date_literal(source: str, start: int, after_kw: int) -> Iterator[Token]:
    i = after_kw
    n = len(source)
    while i < n and source[i].isspace():
        i += 1
    if i >= n or source[i] != "'":
        raise SqlError("DATE must be followed by a quoted 'YYYY-MM-DD'", source, i)
    end = source.find("'", i + 1)
    text = source[i + 1 : end if end > 0 else n]
    try:
        y, m, d = (int(part) for part in text.split("-"))
        ts = date_to_ts(y, m, d)
    except (ValueError, TypeError):
        raise SqlError(f"invalid date literal {text!r}", source, i) from None
    yield Token("NUMBER", ts, start)
