"""SQL error type with source positions."""

from __future__ import annotations


class SqlError(Exception):
    """A lexing, parsing or planning error, pointing into the source."""

    def __init__(self, message: str, source: str = "", pos: int | None = None) -> None:
        if pos is not None and source:
            line = source.count("\n", 0, pos) + 1
            col = pos - (source.rfind("\n", 0, pos) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)
        self.pos = pos
