"""Planning: AST + schema → engine-neutral query objects.

The planner validates names against the table schema, routes temporal
conditions on time dimensions to time-travel / overlap predicates, maps
``BETWEEN`` on a *varied* dimension to a query interval (range-restricted
aggregation, TPC-BiH r3-style), and produces either a
:class:`~repro.core.query.TemporalAggregationQuery` (``GROUP BY
TEMPORAL``) or a plain selection predicate.
"""

from __future__ import annotations

from repro.core.query import TemporalAggregationQuery
from repro.core.window import WindowSpec
from repro.sql.ast import (
    AsOfCond,
    BetweenCond,
    Comparison,
    CurrentCond,
    InList,
    JoinStmt,
    OverlapsCond,
    SelectStmt,
)
from repro.sql.errors import SqlError
from repro.temporal.predicates import (
    And,
    ColumnBetween,
    ColumnEquals,
    ColumnIn,
    CurrentVersion,
    Not,
    Or,
    Overlaps,
    Predicate,
    TimeTravel,
)
from repro.temporal.schema import TableSchema
from repro.temporal.timestamps import Interval


def _dim_names(schema: TableSchema) -> set[str]:
    return {d.name for d in schema.time_dimensions}


def _comparison_predicate(cond: Comparison) -> Predicate:
    if cond.op == "=":
        return ColumnEquals(cond.column, cond.value)
    if cond.op == "<>":
        return Not(ColumnEquals(cond.column, cond.value))
    if cond.op == "<":
        return ColumnBetween(cond.column, float("-inf"), cond.value)
    if cond.op == "<=":
        return Or([
            ColumnBetween(cond.column, float("-inf"), cond.value),
            ColumnEquals(cond.column, cond.value),
        ])
    if cond.op == ">=":
        return Not(ColumnBetween(cond.column, float("-inf"), cond.value))
    if cond.op == ">":
        return Not(
            Or([
                ColumnBetween(cond.column, float("-inf"), cond.value),
                ColumnEquals(cond.column, cond.value),
            ])
        )
    raise AssertionError(cond.op)


def plan(stmt: SelectStmt, schema: TableSchema):
    """Compile a statement against a schema.

    Returns ``("aggregate", TemporalAggregationQuery)`` for temporal
    aggregations, or ``("select", predicate)`` for plain counting
    selections (only ``COUNT(*)`` may omit ``GROUP BY TEMPORAL``).
    """
    dims = _dim_names(schema)
    value_columns = set(schema.column_names())

    if stmt.argument is not None and stmt.argument not in value_columns:
        raise SqlError(f"unknown column {stmt.argument!r} in aggregate")
    for dim in stmt.temporal_dims:
        if dim not in dims:
            raise SqlError(f"unknown time dimension {dim!r} in GROUP BY TEMPORAL")

    predicates: list[Predicate] = []
    query_intervals: dict[str, Interval] = {}
    varied = set(stmt.temporal_dims)

    for cond in stmt.conditions:
        if isinstance(cond, CurrentCond):
            if cond.dim not in dims:
                raise SqlError(f"CURRENT on unknown dimension {cond.dim!r}")
            if cond.dim in varied:
                raise SqlError(
                    f"dimension {cond.dim!r} is varied by GROUP BY TEMPORAL "
                    "and cannot also be fixed with CURRENT"
                )
            predicates.append(CurrentVersion(cond.dim))
        elif isinstance(cond, AsOfCond):
            if cond.dim not in dims:
                raise SqlError(f"AS OF on unknown dimension {cond.dim!r}")
            if cond.dim in varied:
                raise SqlError(
                    f"dimension {cond.dim!r} is varied and cannot be fixed"
                    " with AS OF"
                )
            predicates.append(TimeTravel(cond.dim, cond.ts))
        elif isinstance(cond, OverlapsCond):
            if cond.dim not in dims:
                raise SqlError(f"OVERLAPS on unknown dimension {cond.dim!r}")
            predicates.append(Overlaps(cond.dim, cond.lo, cond.hi))
        elif isinstance(cond, BetweenCond):
            if cond.column in varied:
                query_intervals[cond.column] = Interval(int(cond.lo), int(cond.hi))
            elif cond.column in value_columns:
                predicates.append(ColumnBetween(cond.column, cond.lo, cond.hi))
            elif cond.column in dims:
                raise SqlError(
                    f"BETWEEN on fixed time dimension {cond.column!r}; use"
                    " OVERLAPS, AS OF or CURRENT"
                )
            else:
                raise SqlError(f"unknown column {cond.column!r} in BETWEEN")
        elif isinstance(cond, InList):
            if cond.column not in value_columns:
                raise SqlError(f"unknown column {cond.column!r} in IN")
            predicates.append(ColumnIn(cond.column, cond.values))
        elif isinstance(cond, Comparison):
            if cond.column in dims:
                raise SqlError(
                    f"comparison on time dimension {cond.column!r}; use"
                    " AS OF / OVERLAPS / CURRENT / BETWEEN"
                )
            if cond.column not in value_columns:
                raise SqlError(f"unknown column {cond.column!r}")
            predicates.append(_comparison_predicate(cond))
        else:
            raise AssertionError(cond)

    predicate: Predicate | None
    if not predicates:
        predicate = None
    elif len(predicates) == 1:
        predicate = predicates[0]
    else:
        predicate = And(predicates)

    if not stmt.is_temporal_aggregation:
        if stmt.aggregate != "count" or stmt.argument is not None:
            raise SqlError(
                "only COUNT(*) may omit GROUP BY TEMPORAL; aggregating a"
                " column requires varied time dimensions or a WINDOW"
            )
        if stmt.window is not None or stmt.pivot is not None:
            raise SqlError("WINDOW/PIVOT require GROUP BY TEMPORAL")
        from repro.temporal.predicates import TrueP

        return "select", (predicate if predicate is not None else TrueP())

    window = None
    if stmt.window is not None:
        window = WindowSpec(stmt.window.origin, stmt.window.stride, stmt.window.count)
    if stmt.pivot is not None and stmt.pivot not in stmt.temporal_dims:
        raise SqlError(f"PIVOT {stmt.pivot!r} is not among the varied dimensions")

    query = TemporalAggregationQuery(
        varied_dims=stmt.temporal_dims,
        value_column=stmt.argument,
        aggregate=stmt.aggregate,
        predicate=predicate,
        query_intervals=query_intervals,
        window=window,
        pivot=stmt.pivot,
        drop_empty=stmt.drop_empty,
    )
    return "aggregate", query


def annotate_plan(plan_text: str, trace) -> str:
    """EXPLAIN annotation: append the span tree of the statement's last
    execution to a plan description.

    ``trace`` is the root :class:`~repro.obs.tracer.Span` the database
    captured when it last executed the statement (or ``None``, in which
    case the plan is returned untouched).  The tree shows per-phase
    *simulated* time — how the plan's parallel phases composed into the
    reported elapsed time — next to the measured wall work, which is the
    piece a static plan can never show.
    """
    if trace is None:
        return plan_text
    tree = trace.format_tree()
    return (
        f"{plan_text}\n"
        f"  last execution (sim {trace.sim_total():.6f}s):\n"
        + "\n".join(f"    {line}" for line in tree.splitlines())
    )


def plan_join(stmt: JoinStmt, left_schema: TableSchema, right_schema: TableSchema):
    """Validate a TEMPORAL JOIN against both schemas.

    Returns the validated statement (the executable plan is the statement
    itself — the join operator takes tables and column names directly).
    """
    if stmt.left_key not in left_schema.column_names():
        raise SqlError(f"unknown join key {stmt.left_key!r} on {stmt.left!r}")
    if stmt.right_key not in right_schema.column_names():
        raise SqlError(f"unknown join key {stmt.right_key!r} on {stmt.right!r}")
    for schema, table in ((left_schema, stmt.left), (right_schema, stmt.right)):
        if stmt.dim not in {d.name for d in schema.time_dimensions}:
            raise SqlError(
                f"table {table!r} has no time dimension {stmt.dim!r}"
            )
    return stmt
