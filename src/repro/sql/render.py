"""Rendering query objects back to the SQL dialect.

The inverse of the planner: given a
:class:`~repro.core.query.TemporalAggregationQuery` (or a plain selection
predicate), produce dialect text that parses and plans back to an
equivalent query.  Used by ``EXPLAIN``-style tooling and by the round-trip
property tests, which pin the dialect's semantics from both directions.

Only predicate shapes the dialect can express are renderable; anything
else raises :class:`~repro.sql.errors.SqlError`.
"""

from __future__ import annotations

from repro.core.query import TemporalAggregationQuery
from repro.sql.errors import SqlError
from repro.temporal.predicates import (
    And,
    ColumnBetween,
    ColumnEquals,
    ColumnIn,
    CurrentVersion,
    Overlaps,
    Predicate,
    TimeTravel,
    TrueP,
)


def _literal(value) -> str:
    if isinstance(value, str):
        if "'" in value:
            raise SqlError("string literals with quotes are not renderable")
        return f"'{value}'"
    if isinstance(value, bool):
        raise SqlError("boolean literals are not part of the dialect")
    if isinstance(value, (int, float)):
        return repr(value)
    if hasattr(value, "item"):  # NumPy scalar
        return _literal(value.item())
    raise SqlError(f"unrenderable literal {value!r}")


def render_condition(pred: Predicate) -> list[str]:
    """One predicate as a list of AND-able condition strings."""
    if isinstance(pred, TrueP):
        return []
    if isinstance(pred, And):
        out: list[str] = []
        for child in pred.children:
            out.extend(render_condition(child))
        return out
    if isinstance(pred, ColumnEquals):
        return [f"{pred.column} = {_literal(pred.value)}"]
    if isinstance(pred, ColumnIn):
        values = ", ".join(_literal(v) for v in pred.values)
        return [f"{pred.column} IN ({values})"]
    if isinstance(pred, ColumnBetween):
        return [f"{pred.column} BETWEEN {_literal(pred.lo)} AND {_literal(pred.hi)}"]
    if isinstance(pred, TimeTravel):
        return [f"{pred.dim} AS OF {int(pred.at)}"]
    if isinstance(pred, Overlaps):
        return [f"{pred.dim} OVERLAPS ({int(pred.lo)}, {int(pred.hi)})"]
    if isinstance(pred, CurrentVersion):
        return [f"CURRENT({pred.dim})"]
    raise SqlError(f"predicate {type(pred).__name__} is not expressible in SQL")


def render_query(query: TemporalAggregationQuery, table: str) -> str:
    """A temporal aggregation query as dialect text.

    >>> from repro.core import TemporalAggregationQuery
    >>> q = TemporalAggregationQuery(varied_dims=("tt",), value_column="v")
    >>> render_query(q, "t")
    'SELECT SUM(v) FROM t GROUP BY TEMPORAL (tt)'
    """
    agg = query.aggregate.upper()
    argument = query.value_column if query.value_column is not None else "*"
    parts = [f"SELECT {agg}({argument}) FROM {table}"]

    conditions: list[str] = []
    if query.predicate is not None:
        conditions.extend(render_condition(query.predicate))
    for dim, interval in sorted(query.query_intervals.items()):
        conditions.append(f"{dim} BETWEEN {int(interval.start)} AND {int(interval.end)}")
    if conditions:
        parts.append("WHERE " + " AND ".join(conditions))

    parts.append(f"GROUP BY TEMPORAL ({', '.join(query.varied_dims)})")
    if query.window is not None:
        parts.append(
            f"WINDOW FROM {query.window.origin} STRIDE {query.window.stride}"
            f" COUNT {query.window.count}"
        )
    if query.pivot is not None:
        parts.append(f"PIVOT {query.pivot}")
    if query.drop_empty:
        parts.append("DROP EMPTY")
    return " ".join(parts)


def render_select(predicate: Predicate, table: str) -> str:
    """A counting selection as dialect text."""
    conditions = render_condition(predicate)
    sql = f"SELECT COUNT(*) FROM {table}"
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql
