"""Result shaping: engine results to wire-protocol result sets.

Each SQL result shape the dialect can produce maps to one RowDescription
plus text-format DataRows:

* selection counts (``int``) — a single ``count`` int8 column;
* :class:`~repro.core.result.TemporalAggregationResult` — per varied
  dimension a ``<dim>_start``/``<dim>_end`` int8 pair (``FOREVER`` stays
  the raw ``2**62`` sentinel: a real integer, so clients can compare it)
  plus the aggregate value column named after the aggregate;
* join row lists — the pair columns, rendered as text.

The same shaping feeds the integration tests, which compare wire rows
against in-process :meth:`~repro.sql.database.Database.query` results.
"""

from __future__ import annotations

from repro.core.result import TemporalAggregationResult
from repro.server.protocol import (
    OID_FLOAT8,
    OID_INT8,
    OID_TEXT,
    ColumnSpec,
)

#: Row cap per result set: the front door serves admission-controlled
#: aggregate answers, not bulk exports.  Mirrors ``--max-rows`` of the
#: CLI but at a server-appropriate scale.
MAX_ROWS = 100_000


def _value_cell(value) -> str:
    """Render one aggregate value as its text-format cell."""
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        value = item()
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _value_oid(rows) -> int:
    for row in rows:
        if isinstance(row.value, float):
            return OID_FLOAT8
    return OID_INT8


def describe_result(result) -> tuple[list[ColumnSpec], list[list[str | None]]]:
    """``(columns, rows)`` of one executed statement's result."""
    if isinstance(result, int):
        return [ColumnSpec("count", OID_INT8)], [[str(result)]]
    if isinstance(result, TemporalAggregationResult):
        columns: list[ColumnSpec] = []
        for dim in result.dims:
            columns.append(ColumnSpec(f"{dim}_start", OID_INT8))
            columns.append(ColumnSpec(f"{dim}_end", OID_INT8))
        columns.append(
            ColumnSpec(result.aggregate_name.lower(), _value_oid(result.rows))
        )
        rows: list[list[str | None]] = []
        for row in result.rows[:MAX_ROWS]:
            cells: list[str | None] = []
            for iv in row.intervals:
                cells.append(str(int(iv.start)))
                cells.append(str(int(iv.end)))
            cells.append(None if row.value is None else _value_cell(row.value))
            rows.append(cells)
        return columns, rows
    if isinstance(result, list):  # join output: matched row pairs
        columns = [ColumnSpec("left", OID_TEXT), ColumnSpec("right", OID_TEXT)]
        rows = []
        for pair in result[:MAX_ROWS]:
            if isinstance(pair, tuple) and len(pair) == 2:
                rows.append([str(pair[0]), str(pair[1])])
            else:
                rows.append([str(pair), None])
        return columns, rows
    # Anything else (future result kinds): one text column.
    return [ColumnSpec("result", OID_TEXT)], [[str(result)]]


def command_tag(rows: list) -> str:
    """The CommandComplete tag: everything the dialect runs is a SELECT."""
    return f"SELECT {len(rows)}"
