"""The asyncio front door: ``python -m repro serve``.

:class:`ParTimeServer` accepts PostgreSQL wire-protocol connections
(simple-query subset — psql and DBeaver connect out of the box), funnels
every arriving statement through the :class:`~repro.server.batch
.BatchFormer`'s admission queue, and streams result sets back.  Malformed
SQL produces an ErrorResponse followed by ReadyForQuery — the connection
survives, per protocol.  Injected faults (docs/fault_injection.md) are
retried inside the engine and are invisible here except as latency.

Metrics: ``server.connections`` counts accepted clients and
``server.queries`` served statements; the batch former owns
``server.batches`` / ``server.queue_depth`` and the ``server.*``
histograms.  The server also owns the telemetry plane's server-side
state: the :class:`~repro.obs.slo.SloTracker` the former books into,
and the ``partime_*`` virtual tables (``repro.server.introspect``) that
expose registry, SLO burn rates and the event ring over the same wire.
Every successful result set carries two NOTICEs: the human-readable
``partime: batch=...`` line and a machine-parseable
``partime-telemetry: {json}`` trailer.
"""

from __future__ import annotations

import asyncio
import json
import os
import struct

from repro.obs.events import events
from repro.obs.metrics import metrics
from repro.obs.slo import SloTracker
from repro.server import protocol
from repro.server.batch import BatchFormer, BatchFormerClosed
from repro.server.engine import ServingEngine
from repro.server.introspect import match_virtual, serve_virtual
from repro.server.rows import command_tag, describe_result
from repro.sql import SqlError

#: ParameterStatus pairs sent after authentication.  ``server_version``
#: makes psql's version handshake happy; the rest are the values clients
#: commonly assert on.
SERVER_PARAMETERS = (
    ("server_version", "16.0 (ParTime reproduction)"),
    ("server_encoding", "UTF8"),
    ("client_encoding", "UTF8"),
    ("DateStyle", "ISO, MDY"),
    ("integer_datetimes", "on"),
)


class ParTimeServer:
    """One listening socket, one batch former, many connections."""

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 5433,
        *,
        min_cycle_seconds: float = 0.0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.slo = SloTracker()
        self.former = BatchFormer(
            engine, min_cycle_seconds=min_cycle_seconds, slo=self.slo
        )
        self.connections_served = 0
        self._server: asyncio.AbstractServer | None = None
        self._secret = int.from_bytes(os.urandom(4), "big") >> 1

    @property
    def registry(self):
        """The process-wide metrics registry the virtual tables read."""
        return metrics()

    @property
    def events(self):
        """The process-wide event ring the virtual tables read."""
        return events()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind the socket and start the batch former."""
        self.former.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 binds an ephemeral port; record what the OS picked.
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        events().emit("server_started", host=self.host, port=self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, fail queued work, release the engine."""
        stopping = self._server is not None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.former.stop()
        if stopping:
            events().emit(
                "server_stopped",
                connections=self.connections_served,
                queries=self.former.queries_served,
            )

    async def __aenter__(self) -> "ParTimeServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ---------------------------------------------------------- connections

    async def _read_startup(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> protocol.Startup | None:
        """The startup loop: answer encryption probes until a real
        StartupMessage arrives (or the peer turns out to be a cancel
        probe / corrupt, in which case ``None``: close)."""
        while True:
            raw_len = await reader.readexactly(4)
            (length,) = struct.unpack("!i", raw_len)
            if length < 8 or length > protocol.MAX_MESSAGE_BYTES:
                return None
            payload = await reader.readexactly(length - 4)
            message = protocol.parse_startup_payload(payload)
            if isinstance(message, (protocol.SslRequest, protocol.GssEncRequest)):
                writer.write(b"N")  # not supported; client retries in clear
                await writer.drain()
                continue
            if isinstance(message, protocol.CancelRequest):
                return None  # cancel keys are not implemented; just close
            return message

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics().counter("server.connections").add(1)
        self.connections_served += 1
        try:
            startup = await self._read_startup(reader, writer)
            if startup is None:
                return
            writer.write(protocol.authentication_ok())
            for name, value in SERVER_PARAMETERS:
                writer.write(protocol.parameter_status(name, value))
            writer.write(protocol.backend_key_data(os.getpid(), self._secret))
            writer.write(protocol.ready_for_query())
            await writer.drain()
            await self._query_loop(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            protocol.ProtocolError,
        ):
            pass  # peer went away or spoke garbage: close quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _query_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            header = await reader.readexactly(5)
            type_byte = header[:1]
            (length,) = struct.unpack("!i", header[1:5])
            if length < 4 or length > protocol.MAX_MESSAGE_BYTES:
                raise protocol.ProtocolError(f"bad frame length {length}")
            payload = await reader.readexactly(length - 4)
            if type_byte == b"X":  # Terminate
                return
            if type_byte == b"Q":
                await self._serve_query(
                    protocol.parse_query_payload(payload), writer
                )
            else:
                # Extended-protocol and copy messages are out of scope;
                # say so and stay alive (ROADMAP: extended protocol).
                writer.write(
                    protocol.error_response(
                        f"message type {type_byte.decode('ascii', 'replace')!r} "
                        "not supported (simple query protocol only)",
                        code="0A000",
                    )
                )
                writer.write(protocol.ready_for_query())
            await writer.drain()

    async def _serve_query(
        self, sql: str, writer: asyncio.StreamWriter
    ) -> None:
        metrics().counter("server.queries").add(1)
        # psql sends the terminating semicolon as part of the statement;
        # the SQL dialect has none, so trailing terminators are a wire
        # concern.  A bare ";" is an empty query, as in PostgreSQL.
        sql = sql.strip()
        while sql.endswith(";"):
            sql = sql[:-1].rstrip()
        if not sql:
            writer.write(protocol.empty_query_response())
            writer.write(protocol.ready_for_query())
            return
        virtual = match_virtual(sql)
        if virtual is not None:
            # Telemetry probes answer from live process state, ahead of
            # admission control: a metrics query must not wait for (or
            # perturb) the very batch queue it is inspecting.
            columns, rows = serve_virtual(self, *virtual)
            writer.write(protocol.row_description(columns))
            for row in rows:
                writer.write(protocol.data_row(row))
            writer.write(protocol.command_complete(command_tag(rows)))
            writer.write(protocol.ready_for_query())
            return
        events().emit("query_admitted", sql=sql[:200])
        try:
            served = await self.former.submit(sql)
        except BatchFormerClosed as exc:
            writer.write(
                protocol.error_response(str(exc), code="57P01", severity="FATAL")
            )
            return
        outcome = served.outcome
        if not outcome.ok:
            events().emit(
                "query_error",
                sql=sql[:200],
                error=f"{type(outcome.error).__name__}: {outcome.error}"[:200],
            )
            writer.write(_error_frame(outcome.error))
            writer.write(protocol.ready_for_query())
            return
        columns, rows = describe_result(outcome.result)
        writer.write(protocol.row_description(columns))
        for row in rows:
            writer.write(protocol.data_row(row))
        writer.write(protocol.command_complete(command_tag(rows)))
        writer.write(
            protocol.notice_response(
                f"partime: batch={served.batch_size} "
                f"queue={served.queue_seconds * 1e3:.3f}ms "
                f"service={served.service_seconds * 1e3:.3f}ms "
                f"sim_response={outcome.sim_response_seconds * 1e3:.6f}ms"
            )
        )
        # The same decomposition again, machine-parseable: one JSON
        # object per statement (SimpleQueryClient exposes it as
        # ``QueryOutcome.telemetry``; other drivers can just json.loads
        # everything after the prefix).
        writer.write(
            protocol.notice_response(
                "partime-telemetry: "
                + json.dumps(
                    {
                        "batch_size": served.batch_size,
                        "queue_seconds": served.queue_seconds,
                        "service_seconds": served.service_seconds,
                        "sim_response_seconds": outcome.sim_response_seconds,
                        "sim_batch_seconds": outcome.sim_batch_seconds,
                        "table": outcome.table,
                    },
                    sort_keys=True,
                )
            )
        )
        writer.write(protocol.ready_for_query())


def _error_frame(error: Exception) -> bytes:
    """Map an engine-side failure to the right SQLSTATE class."""
    if isinstance(error, SqlError):
        pos = getattr(error, "pos", None)
        return protocol.error_response(
            str(error),
            code="42601",  # syntax_error (covers parse/plan failures)
            position=None if pos is None else pos + 1,
        )
    return protocol.error_response(
        f"{type(error).__name__}: {error}", code="XX000"  # internal_error
    )
