"""The SQL front door: an asyncio PostgreSQL wire-protocol server.

Thousands of concurrent clients funnel into Crescando's natural unit of
sharing — one admission batch per scan cycle (docs/serving.md):

* :mod:`repro.server.protocol` — sans-IO codec for the simple-query
  protocol subset (psql/DBeaver-compatible);
* :mod:`repro.server.engine` — SQL batches planned into shared-scan
  :meth:`Cluster.execute_batch` cycles, errors as values;
* :mod:`repro.server.batch` — admission control: queue arrivals, cut one
  batch per cycle, record per-query queueing + service time;
* :mod:`repro.server.server` — the asyncio connection handler;
* :mod:`repro.server.client` — a minimal blocking client for tests/CI.

Entry point: ``python -m repro serve``.
"""

from repro.server.batch import BatchFormer, BatchFormerClosed, ServedResult
from repro.server.client import QueryOutcome, SimpleQueryClient
from repro.server.engine import ServedQuery, ServingEngine
from repro.server.protocol import ProtocolError
from repro.server.server import ParTimeServer

__all__ = [
    "BatchFormer",
    "BatchFormerClosed",
    "ParTimeServer",
    "ProtocolError",
    "QueryOutcome",
    "ServedQuery",
    "ServedResult",
    "ServingEngine",
    "SimpleQueryClient",
]
