"""Batch admission control: arrivals queue, one batch per scan cycle.

Crescando never executes queries one at a time — arrivals wait in an
admission queue and the engine cuts **one batch per scan cycle** (PAPER.md
section 2).  :class:`BatchFormer` is that policy for the asyncio front
door: connection handlers :meth:`submit` statements and await their
result; a single former task drains the queue whenever the engine is
idle, executes the whole batch in one shared scan (off the event loop, in
a worker thread), then resolves every waiter.  Statements arriving while
a cycle runs accumulate — exactly the open-loop behaviour the serving
benchmark measures.

Each served statement gets the latency decomposition recorded:

* ``queue_seconds``   — wall time from arrival to batch cut (admission);
* ``service_seconds`` — wall time of the shared cycle it rode in;
* ``sim_response_seconds`` / ``sim_batch_seconds`` — the simulated
  standalone response and full-cycle times from the cluster's clock.

Metrics: ``server.batches`` counts cut batches, ``server.queue_depth``
gauges the queue length at each cut, and the latency decomposition feeds
the ``server.*`` histograms (queue/service/batch-size/sim-response, the
last also labelled per table).  Each cut emits a ``batch_cut`` event,
and the optional :class:`~repro.obs.slo.SloTracker` is advanced by the
batch's simulated cycle time with every statement's simulated response
recorded against it (see docs/observability.md).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass

from repro.obs.events import events
from repro.obs.metrics import metrics
from repro.obs.slo import SloTracker
from repro.server.engine import ServedQuery, ServingEngine
from repro.simtime.measure import clock_source


@dataclass
class ServedResult:
    """What a waiter gets back: the outcome plus its latency split."""

    outcome: ServedQuery
    queue_seconds: float
    service_seconds: float
    batch_size: int


@dataclass
class _Pending:
    sql: str
    future: "asyncio.Future[ServedResult]"
    arrived: float


class BatchFormerClosed(RuntimeError):
    """Submission after the former stopped (server shutting down)."""


class BatchFormer:
    """The admission queue and the cycle-cutting loop."""

    def __init__(
        self,
        engine: ServingEngine,
        *,
        min_cycle_seconds: float = 0.0,
        slo: SloTracker | None = None,
    ) -> None:
        self.engine = engine
        #: Burn-rate tracker advanced by each batch's simulated cycle
        #: time (the server wires its own in; ``None`` disables SLOs).
        self.slo = slo
        #: Optional floor on the cycle cadence: with a fast engine and a
        #: trickle of clients every query would get a private batch;
        #: a small floor (e.g. 2ms) restores the shared-scan economics.
        self.min_cycle_seconds = min_cycle_seconds
        self.queries_served = 0
        self.batches_cut = 0
        self._pending: list[_Pending] = []
        self._arrival = asyncio.Event()
        self._task: asyncio.Task | None = None
        #: The engine runs on a dedicated thread, NOT the event loop's
        #: default pool: that pool is shared (asyncio.to_thread users,
        #: blocking clients in tests) and tiny on small machines, so
        #: borrowing a slot per cycle can deadlock the former behind the
        #: very connections waiting on it.
        self._engine_thread: concurrent.futures.ThreadPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._task is None:
            self._closed = False
            self._engine_thread = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="partime-former"
            )
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="partime-batch-former"
            )

    async def stop(self) -> None:
        """Stop cutting batches; fail any still-queued statements."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._engine_thread is not None:
            # Let an in-flight cycle drain off the loop before releasing
            # the engine underneath it.
            await asyncio.get_running_loop().run_in_executor(
                None, self._engine_thread.shutdown
            )
            self._engine_thread = None
        for item in self._pending:
            if not item.future.done():
                item.future.set_exception(
                    BatchFormerClosed("server shutting down")
                )
        self._pending.clear()

    # ------------------------------------------------------------ admission

    async def submit(self, sql: str) -> ServedResult:
        """Queue one statement and await its batch's completion."""
        if self._closed or self._task is None:
            raise BatchFormerClosed("batch former is not running")
        future: asyncio.Future[ServedResult] = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(_Pending(sql, future, clock_source()))
        self._arrival.set()
        return await future

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    # ---------------------------------------------------------- the former

    async def _run(self) -> None:
        while True:
            await self._arrival.wait()
            self._arrival.clear()
            batch = self._pending
            self._pending = []
            if not batch:
                continue
            self.batches_cut += 1
            metrics().counter("server.batches").add(1)
            metrics().gauge("server.queue_depth").set(len(batch))
            cut = clock_source()
            try:
                outcomes = await asyncio.get_running_loop().run_in_executor(
                    self._engine_thread,
                    self.engine.execute_batch,
                    [p.sql for p in batch],
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — the former must
                # survive any engine failure: fail this batch's waiters
                # loudly, keep admitting the next one.
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            done = clock_source()
            self._observe_batch(batch, outcomes, cut, done)
            for item, outcome in zip(batch, outcomes):
                self.queries_served += 1
                if item.future.done():  # waiter gone (connection dropped)
                    continue
                item.future.set_result(
                    ServedResult(
                        outcome=outcome,
                        queue_seconds=cut - item.arrived,
                        service_seconds=done - cut,
                        batch_size=len(batch),
                    )
                )
            if self.min_cycle_seconds > 0.0:
                elapsed = clock_source() - cut
                if elapsed < self.min_cycle_seconds:
                    await asyncio.sleep(self.min_cycle_seconds - elapsed)

    def _observe_batch(
        self,
        batch: list[_Pending],
        outcomes: list[ServedQuery],
        cut: float,
        done: float,
    ) -> None:
        """Book one cut batch into the telemetry plane: the ``server.*``
        histograms, a ``batch_cut`` event, and the SLO tracker (advanced
        by the batch's simulated cycle time — simulated, not wall, so
        burn rates are as deterministic as the serving simulation)."""
        reg = metrics()
        reg.histogram("server.batch_size").observe(len(batch))
        reg.histogram("server.service_seconds").observe(done - cut)
        for item, outcome in zip(batch, outcomes):
            reg.histogram("server.queue_seconds").observe(cut - item.arrived)
            if outcome.ok:
                reg.histogram("server.sim_response").observe(
                    outcome.sim_response_seconds
                )
                if outcome.table is not None:
                    reg.histogram(
                        "server.sim_response", table=outcome.table
                    ).observe(outcome.sim_response_seconds)
        sim_cycle = max(
            (o.sim_batch_seconds for o in outcomes if o.ok), default=0.0
        )
        errors = sum(1 for o in outcomes if not o.ok)
        events().emit(
            "batch_cut",
            size=len(batch),
            errors=errors,
            service_seconds=done - cut,
            sim_cycle_seconds=sim_cycle,
        )
        if self.slo is not None:
            self.slo.advance(sim_cycle)
            for outcome in outcomes:
                self.slo.record(
                    outcome.sim_response_seconds, error=not outcome.ok
                )
