"""PostgreSQL wire-protocol (v3) codec — the bytes level of the front door.

Sans-IO by design: every function here maps python values to wire bytes
or back, with no sockets and no asyncio, so the whole protocol surface is
testable byte-for-byte (tests/test_server_protocol.py pins golden frames
for every message).  :mod:`repro.server.server` does the IO on top.

The subset implemented is the *simple query* flow, which is all psql,
DBeaver and most drivers need for ad-hoc statements::

    frontend                      backend
    --------                      -------
    StartupMessage          ->
                            <-    AuthenticationOk
                            <-    ParameterStatus (one per parameter)
                            <-    BackendKeyData
                            <-    ReadyForQuery('I')
    Query("SELECT ...")     ->
                            <-    RowDescription
                            <-    DataRow (one per row)
                            <-    CommandComplete("SELECT n")
                            <-    ReadyForQuery('I')
    Query("broken(")        ->
                            <-    ErrorResponse          (connection lives on)
                            <-    ReadyForQuery('I')
    Terminate               ->    (close)

``SSLRequest`` and ``GSSENCRequest`` probes are answered with the single
byte ``N`` (not supported) after which the client retries in cleartext;
``CancelRequest`` connections are closed without reply, per the spec.

Reference: https://www.postgresql.org/docs/current/protocol-message-formats.html
(the message-flow walkthrough in the related larsql repo's protocol plan
was the map for which messages matter in practice).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Protocol version 3.0: major 3 in the high 16 bits, minor 0 in the low.
PROTOCOL_VERSION_3 = 196608
#: Magic "version" codes of the special startup-packet variants.
SSL_REQUEST_CODE = 80877103
GSSENC_REQUEST_CODE = 80877104
CANCEL_REQUEST_CODE = 80877102

#: Upper bound on any single frame; a length beyond this is a corrupt or
#: hostile peer, not a query, and the connection is dropped.
MAX_MESSAGE_BYTES = 1 << 20

#: Type OIDs of the pg_catalog types the server emits (text format).
OID_INT8 = 20
OID_FLOAT8 = 701
OID_TEXT = 25

_TYPLEN = {OID_INT8: 8, OID_FLOAT8: 8, OID_TEXT: -1}


class ProtocolError(Exception):
    """A malformed frame: wrong length, bad magic, unterminated string."""


# ---------------------------------------------------------------------------
# Frontend (client -> server) messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Startup:
    """A parsed StartupMessage: protocol version + parameter pairs."""

    params: tuple[tuple[str, str], ...]

    def get(self, key: str, default: str = "") -> str:
        for name, value in self.params:
            if name == key:
                return value
        return default


@dataclass(frozen=True)
class SslRequest:
    """The client probed for TLS; answer ``N`` and expect a retry."""


@dataclass(frozen=True)
class GssEncRequest:
    """The client probed for GSSAPI encryption; answer ``N``."""


@dataclass(frozen=True)
class CancelRequest:
    """An out-of-band cancel probe naming a backend pid/secret."""

    pid: int
    secret: int


def _read_cstr(payload: bytes, offset: int) -> tuple[str, int]:
    end = payload.find(b"\x00", offset)
    if end < 0:
        raise ProtocolError("unterminated string in message payload")
    return payload[offset:end].decode("utf-8", "replace"), end + 1


def parse_startup_payload(
    payload: bytes,
) -> Startup | SslRequest | GssEncRequest | CancelRequest:
    """Decode the body of the (untyped) first packet on a connection.

    ``payload`` excludes the 4-byte length prefix.
    """
    if len(payload) < 4:
        raise ProtocolError("startup packet shorter than its version field")
    code = struct.unpack("!i", payload[:4])[0]
    if code == SSL_REQUEST_CODE:
        return SslRequest()
    if code == GSSENC_REQUEST_CODE:
        return GssEncRequest()
    if code == CANCEL_REQUEST_CODE:
        if len(payload) != 12:
            raise ProtocolError("CancelRequest must carry pid + secret")
        pid, secret = struct.unpack("!ii", payload[4:12])
        return CancelRequest(pid, secret)
    if code != PROTOCOL_VERSION_3:
        raise ProtocolError(
            f"unsupported protocol version {code >> 16}.{code & 0xFFFF}"
        )
    params: list[tuple[str, str]] = []
    offset = 4
    while offset < len(payload) and payload[offset] != 0:
        name, offset = _read_cstr(payload, offset)
        value, offset = _read_cstr(payload, offset)
        params.append((name, value))
    return Startup(tuple(params))


def parse_query_payload(payload: bytes) -> str:
    """The SQL text of a Query ('Q') message body."""
    if not payload.endswith(b"\x00"):
        raise ProtocolError("Query message not NUL-terminated")
    return payload[:-1].decode("utf-8", "replace")


# ---------------------------------------------------------------------------
# Frame assembly
# ---------------------------------------------------------------------------


def frame(type_byte: bytes, payload: bytes = b"") -> bytes:
    """One typed backend/frontend frame: type + int32 length + payload."""
    if len(type_byte) != 1:
        raise ProtocolError(f"frame type must be one byte, got {type_byte!r}")
    return type_byte + struct.pack("!i", len(payload) + 4) + payload


def split_frames(buffer: bytes) -> tuple[list[tuple[bytes, bytes]], bytes]:
    """Split a byte buffer into complete ``(type, payload)`` frames.

    Returns the parsed frames and the unconsumed remainder (a partial
    trailing frame).  Used by the test/CI clients; the asyncio server
    reads frames incrementally instead.
    """
    frames: list[tuple[bytes, bytes]] = []
    offset = 0
    while len(buffer) - offset >= 5:
        type_byte = buffer[offset:offset + 1]
        (length,) = struct.unpack("!i", buffer[offset + 1:offset + 5])
        if length < 4 or length > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"implausible frame length {length}")
        if len(buffer) - offset - 1 < length:
            break
        payload = buffer[offset + 5:offset + 1 + length]
        frames.append((type_byte, payload))
        offset += 1 + length
    return frames, buffer[offset:]


# ---------------------------------------------------------------------------
# Backend (server -> client) messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnSpec:
    """One output column of a result set."""

    name: str
    type_oid: int = OID_TEXT

    @property
    def typlen(self) -> int:
        return _TYPLEN.get(self.type_oid, -1)


def authentication_ok() -> bytes:
    return frame(b"R", struct.pack("!i", 0))


def parameter_status(name: str, value: str) -> bytes:
    return frame(b"S", name.encode() + b"\x00" + value.encode() + b"\x00")


def backend_key_data(pid: int, secret: int) -> bytes:
    return frame(b"K", struct.pack("!ii", pid, secret))


def ready_for_query(status: bytes = b"I") -> bytes:
    """Transaction status is always ``I`` (idle): the dialect has no
    explicit transactions."""
    return frame(b"Z", status)


def row_description(columns: list[ColumnSpec]) -> bytes:
    parts = [struct.pack("!h", len(columns))]
    for col in columns:
        parts.append(col.name.encode() + b"\x00")
        # table oid, attnum: 0 (not backed by catalog objects);
        # typmod -1; format 0 (text).
        parts.append(
            struct.pack("!ihihih", 0, 0, col.type_oid, col.typlen, -1, 0)
        )
    return frame(b"T", b"".join(parts))


def data_row(values: list[str | None]) -> bytes:
    parts = [struct.pack("!h", len(values))]
    for value in values:
        if value is None:
            parts.append(struct.pack("!i", -1))
        else:
            raw = value.encode("utf-8")
            parts.append(struct.pack("!i", len(raw)) + raw)
    return frame(b"D", b"".join(parts))


def command_complete(tag: str) -> bytes:
    return frame(b"C", tag.encode() + b"\x00")


def empty_query_response() -> bytes:
    return frame(b"I")


def error_response(
    message: str,
    *,
    code: str = "42601",
    severity: str = "ERROR",
    position: int | None = None,
) -> bytes:
    """An ErrorResponse with the fields psql renders: severity (twice —
    localized 'S' and non-localized 'V'), SQLSTATE code, message, and an
    optional 1-based statement position."""
    fields = [
        b"S" + severity.encode() + b"\x00",
        b"V" + severity.encode() + b"\x00",
        b"C" + code.encode() + b"\x00",
        b"M" + message.encode("utf-8") + b"\x00",
    ]
    if position is not None:
        fields.append(b"P" + str(position).encode() + b"\x00")
    return frame(b"E", b"".join(fields) + b"\x00")


def notice_response(message: str) -> bytes:
    fields = [
        b"SNOTICE\x00",
        b"VNOTICE\x00",
        b"C00000\x00",
        b"M" + message.encode("utf-8") + b"\x00",
    ]
    return frame(b"N", b"".join(fields) + b"\x00")


# ---------------------------------------------------------------------------
# Client-side encoders/decoders (tests, CI driver, traffic generator)
# ---------------------------------------------------------------------------


def startup_message(user: str = "partime", database: str = "partime") -> bytes:
    """An untyped StartupMessage frame (length prefix + body)."""
    body = struct.pack("!i", PROTOCOL_VERSION_3)
    body += b"user\x00" + user.encode() + b"\x00"
    body += b"database\x00" + database.encode() + b"\x00"
    body += b"\x00"
    return struct.pack("!i", len(body) + 4) + body


def ssl_request() -> bytes:
    return struct.pack("!ii", 8, SSL_REQUEST_CODE)


def query_message(sql: str) -> bytes:
    return frame(b"Q", sql.encode("utf-8") + b"\x00")


def terminate_message() -> bytes:
    return frame(b"X")


def parse_row_description(payload: bytes) -> list[ColumnSpec]:
    (n,) = struct.unpack("!h", payload[:2])
    offset = 2
    columns: list[ColumnSpec] = []
    for _ in range(n):
        name, offset = _read_cstr(payload, offset)
        _table, _attnum, oid, _typlen, _typmod, _fmt = struct.unpack(
            "!ihihih", payload[offset:offset + 18]
        )
        offset += 18
        columns.append(ColumnSpec(name, oid))
    return columns


def parse_data_row(payload: bytes) -> list[str | None]:
    (n,) = struct.unpack("!h", payload[:2])
    offset = 2
    values: list[str | None] = []
    for _ in range(n):
        (length,) = struct.unpack("!i", payload[offset:offset + 4])
        offset += 4
        if length < 0:
            values.append(None)
        else:
            values.append(payload[offset:offset + length].decode("utf-8"))
            offset += length
    return values


def parse_command_complete(payload: bytes) -> str:
    if not payload.endswith(b"\x00"):
        raise ProtocolError("CommandComplete tag not NUL-terminated")
    return payload[:-1].decode("utf-8")


def parse_error_response(payload: bytes) -> dict[str, str]:
    """ErrorResponse/NoticeResponse fields as ``{field_code: value}``."""
    fields: dict[str, str] = {}
    offset = 0
    while offset < len(payload) and payload[offset] != 0:
        code = chr(payload[offset])
        value, offset = _read_cstr(payload, offset + 1)
        fields[code] = value
    return fields
