"""The serving engine: SQL text in, shared-scan batch execution out.

This is the bridge between the wire protocol and Crescando's unit of
sharing.  A batch of SQL statements (cut by the
:class:`~repro.server.batch.BatchFormer`) is planned into cluster read
operations and executed in **one** :meth:`Cluster.execute_batch` scan
cycle per table — thousands of concurrent clients funnel into a single
shared scan, which is the production property the paper's Amadeus
deployment is built on (PAPER.md section 2).

Statements the cluster cannot batch (temporal joins, and anything whose
planning fails) degrade gracefully: joins fall back to the in-process
:meth:`Database.query` path inside the same service window, and per-
statement errors are returned *as values* so one malformed query never
poisons the rest of its batch — the connection handler turns them into
ErrorResponses while every other client in the batch gets its rows.

Results are bit-identical to in-process ``Database.query`` — pinned by
tests/test_server.py and by the distributed-consistency suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simtime.executor import ExecutorTaskError
from repro.sql import Database, SqlError
from repro.sql.ast import JoinStmt
from repro.sql.parser import parse
from repro.sql.planner import plan
from repro.storage.cluster import Cluster
from repro.storage.queries import SelectQuery, TemporalAggQuery


@dataclass
class ServedQuery:
    """Outcome of one statement inside a served batch.

    Exactly one of ``result`` / ``error`` is meaningful (``error is
    None`` marks success); the sim timings carry the paper's latency
    decomposition — the standalone response time of the operation and
    the full shared-cycle duration it rode in.
    """

    sql: str
    result: object = None
    error: Exception | None = None
    sim_response_seconds: float = 0.0
    sim_batch_seconds: float = 0.0
    #: Table the statement was planned against (``None`` for joins and
    #: statements that failed to parse) — labels per-table telemetry.
    table: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Planned:
    """One batchable statement: its cluster op and result slot index."""

    index: int
    op: object = None
    stmt: object = field(default=None, repr=False)


class ServingEngine:
    """Plans SQL into cluster ops and runs admission batches.

    One :class:`Cluster` is built lazily per registered table (the
    partitioned, shared-scan view of that table); the underlying
    :class:`Database` stays the source of truth for schemas, planning and
    the join fallback.  A fault injector attached to the database is
    threaded into every cluster, so injected faults are retried *inside*
    the batch and never surface to a client connection.
    """

    def __init__(
        self,
        db: Database,
        *,
        storage_nodes: int = 4,
        aggregators: int = 1,
    ) -> None:
        if storage_nodes < 1:
            raise ValueError("need at least one storage node")
        self.db = db
        self.storage_nodes = storage_nodes
        self.aggregators = aggregators
        self._clusters: dict[str, Cluster] = {}

    # ------------------------------------------------------------- clusters

    def cluster_for(self, table_name: str) -> Cluster:
        """The (lazily built) shared-scan cluster serving one table."""
        cluster = self._clusters.get(table_name)
        if cluster is None:
            table = self.db.table(table_name)
            cluster = Cluster.from_table(
                table,
                min(self.storage_nodes, max(1, len(table))),
                num_aggregators=self.aggregators,
                executor=None if self.db.backend == "serial" else self.db.executor,
            )
            cluster.faults = self.db.faults
            self._clusters[table_name] = cluster
        return cluster

    # -------------------------------------------------------------- serving

    def execute_batch(self, sqls: list[str]) -> list[ServedQuery]:
        """Serve one admission batch; one shared scan cycle per table.

        Never raises for per-statement failures — malformed SQL, unknown
        tables, and even exhausted fault-retry budgets come back as
        ``ServedQuery.error`` values in statement order.
        """
        served = [ServedQuery(sql) for sql in sqls]
        per_table: dict[str, list[_Planned]] = {}
        fallback: list[_Planned] = []
        for i, sql in enumerate(sqls):
            try:
                stmt = parse(sql)
                if isinstance(stmt, JoinStmt):
                    fallback.append(_Planned(i, stmt=stmt))
                    continue
                table = self.db.table(stmt.table)
                kind, compiled = plan(stmt, table.schema)
                op = (
                    SelectQuery(compiled)
                    if kind == "select"
                    else TemporalAggQuery(compiled)
                )
                served[i].table = stmt.table
                per_table.setdefault(stmt.table, []).append(_Planned(i, op=op))
            except SqlError as exc:
                served[i].error = exc

        for table_name, planned in sorted(per_table.items()):
            self._run_shared_cycle(table_name, planned, served)
        for item in fallback:
            self._run_fallback(item, served)
        return served

    def _run_shared_cycle(
        self, table_name: str, planned: list[_Planned], served: list[ServedQuery]
    ) -> None:
        """One cluster batch for every statement bound to one table."""
        cluster = self.cluster_for(table_name)
        try:
            batch = cluster.execute_batch([p.op for p in planned])
        except ExecutorTaskError as exc:
            # The fault plane gave up after exhausting its retry budget.
            # The affected statements fail loudly; their connections (and
            # the rest of the server) live on.
            for p in planned:
                served[p.index].error = exc
            return
        for p in planned:
            out = served[p.index]
            out.result = batch.result_of(p.op.op_id)
            out.sim_response_seconds = batch.response_time(p.op.op_id)
            out.sim_batch_seconds = batch.simulated_seconds

    def _run_fallback(self, item: _Planned, served: list[ServedQuery]) -> None:
        """Joins (and future non-batchable shapes) via the in-process
        path, still inside the batch's service window."""
        out = served[item.index]
        try:
            out.result = self.db.query(out.sql)
        except (SqlError, ExecutorTaskError) as exc:
            out.error = exc

    def close(self) -> None:
        """Release the underlying database (idempotent)."""
        self._clusters.clear()
        self.db.close()
