"""A minimal blocking wire-protocol client (tests, CI smoke, examples).

Just enough of the frontend side to drive :class:`ParTimeServer` over a
raw socket — startup handshake, simple queries, clean termination.  Not
a general driver: no TLS, no extended protocol, no cancel keys.  Real
tools (psql, DBeaver) speak to the server directly; this exists so the
test suite and the CI serving-smoke job need no third-party driver.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field

from repro.server import protocol

#: NOTICE prefix of the machine-parseable telemetry trailer the server
#: appends to every successful result set (after the human-readable
#: ``partime: batch=...`` line).
TELEMETRY_PREFIX = "partime-telemetry: "


@dataclass
class QueryOutcome:
    """Everything the backend sent for one simple query."""

    columns: list[str] = field(default_factory=list)
    rows: list[list[str | None]] = field(default_factory=list)
    command_tag: str = ""
    error: dict[str, str] | None = None
    notices: list[str] = field(default_factory=list)
    #: Parsed ``partime-telemetry`` trailer: batch size, latency
    #: decomposition and planned table (``None`` when the server sent
    #: none, e.g. for errors or virtual-table probes).
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SimpleQueryClient:
    """A blocking simple-query connection."""

    def __init__(
        self,
        host: str,
        port: int,
        user: str = "partime",
        database: str = "partime",
        timeout: float = 30.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""
        self.parameters: dict[str, str] = {}
        self.backend_pid: int | None = None
        self._sock.sendall(protocol.startup_message(user, database))
        self._drain_until_ready(QueryOutcome())

    # --------------------------------------------------------------- frames

    def _next_frame(self) -> tuple[bytes, bytes]:
        while True:
            frames, self._buffer = protocol.split_frames(self._buffer)
            if frames:
                # Keep all but the first frame buffered for later reads.
                head, *rest = frames
                if rest:
                    self._buffer = (
                        b"".join(protocol.frame(t, p) for t, p in rest)
                        + self._buffer
                    )
                return head
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk

    def _drain_until_ready(self, outcome: QueryOutcome) -> QueryOutcome:
        """Consume frames into ``outcome`` until ReadyForQuery."""
        while True:
            type_byte, payload = self._next_frame()
            if type_byte == b"Z":
                return outcome
            if type_byte == b"T":
                outcome.columns = [
                    c.name for c in protocol.parse_row_description(payload)
                ]
            elif type_byte == b"D":
                outcome.rows.append(protocol.parse_data_row(payload))
            elif type_byte == b"C":
                outcome.command_tag = protocol.parse_command_complete(payload)
            elif type_byte == b"E":
                outcome.error = protocol.parse_error_response(payload)
            elif type_byte == b"N":
                fields = protocol.parse_error_response(payload)
                message = fields.get("M", "")
                outcome.notices.append(message)
                if message.startswith(TELEMETRY_PREFIX):
                    try:
                        outcome.telemetry = json.loads(
                            message[len(TELEMETRY_PREFIX):]
                        )
                    except ValueError:
                        pass  # malformed trailer: keep the raw notice
            elif type_byte == b"S":
                name, offset = protocol._read_cstr(payload, 0)
                value, _ = protocol._read_cstr(payload, offset)
                self.parameters[name] = value
            elif type_byte == b"K":
                self.backend_pid = int.from_bytes(payload[:4], "big")
            elif type_byte == b"I":
                outcome.command_tag = "EMPTY"
            # AuthenticationOk ('R') and anything else: nothing to record.

    # -------------------------------------------------------------- queries

    def query(self, sql: str) -> QueryOutcome:
        """Run one simple query; never raises on SQL errors (see
        ``QueryOutcome.error``)."""
        self._sock.sendall(protocol.query_message(sql))
        return self._drain_until_ready(QueryOutcome())

    def close(self) -> None:
        try:
            self._sock.sendall(protocol.terminate_message())
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "SimpleQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
