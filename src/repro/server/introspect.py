"""SQL-queryable live telemetry: the ``partime_*`` virtual tables.

The serving stack's observability plane is reachable over the same wire
as the data: ``SELECT * FROM partime_metrics`` (and friends) against a
live ``python -m repro serve`` answers from the process's own registry,
SLO tracker and event ring — no sidecar, no scrape endpoint, psql is the
dashboard.  Four tables:

* ``partime_metrics``    — every catalogued counter/gauge (unregistered
  instruments report 0, so the full vocabulary is always visible);
* ``partime_histograms`` — every catalogued + registered histogram with
  count/sum/min/max and p50/p90/p99 (labelled variants included);
* ``partime_slo``        — one row per (objective, look-back window)
  from the server's burn-rate tracker;
* ``partime_events``     — the structured event ring, oldest first.

Virtual statements are intercepted *before* admission control: they
answer from the serving process's live state and must not ride a shared
scan cycle (a metrics probe that has to wait for a batch cut would
perturb the very queue depths it reports).  Only the exact shape
``SELECT * FROM partime_<name> [LIMIT n]`` is recognised; anything else
falls through to the SQL front door untouched.
"""

from __future__ import annotations

import json
import re

from repro.obs.events import EventLog
from repro.obs.metrics import (
    CATALOGUE,
    GAUGE_NAMES,
    HISTOGRAM_CATALOGUE,
    MetricsRegistry,
    snapshot_quantile,
)
from repro.obs.slo import SloTracker
from repro.server.protocol import OID_FLOAT8, OID_INT8, OID_TEXT, ColumnSpec

#: The only statement shape the virtual layer answers.  Deliberately
#: narrow: projections, predicates and joins over telemetry belong to a
#: real catalog integration (ROADMAP), not a regex.
_VIRTUAL_RE = re.compile(
    r"^select\s+\*\s+from\s+(partime_[a-z_]+)\s*(?:limit\s+(\d+))?$",
    re.IGNORECASE,
)

#: Reserved event-record keys; everything else lands in ``detail``.
_EVENT_CORE = ("seq", "ts", "kind")


def match_virtual(sql: str) -> tuple[str, int | None] | None:
    """``(table_name, limit)`` when ``sql`` targets a virtual table."""
    m = _VIRTUAL_RE.match(sql.strip())
    if m is None:
        return None
    name = m.group(1).lower()
    if name not in VIRTUAL_TABLES:
        return None
    limit = None if m.group(2) is None else int(m.group(2))
    return name, limit


def _cell(value) -> str | None:
    """Text-format wire cell for one telemetry value."""
    if value is None:
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def metrics_rows(
    registry: MetricsRegistry,
) -> tuple[list[ColumnSpec], list[list[str | None]]]:
    """Every catalogued counter/gauge plus anything registered beyond
    the catalogue, alphabetically; unregistered instruments report 0."""
    snap = registry.snapshot()
    names: dict[str, tuple[str, float]] = {}
    for name in CATALOGUE:
        kind = "gauge" if name in GAUGE_NAMES else "counter"
        names[name] = (kind, 0)
    for name, value in snap["counters"].items():
        names[name] = ("counter", value)
    for name, value in snap["gauges"].items():
        names[name] = ("gauge", value)
    columns = [
        ColumnSpec("name", OID_TEXT),
        ColumnSpec("kind", OID_TEXT),
        ColumnSpec("value", OID_FLOAT8),
    ]
    rows = [
        [name, kind, _cell(float(value))]
        for name, (kind, value) in sorted(names.items())
    ]
    return columns, rows


def histogram_rows(
    registry: MetricsRegistry,
) -> tuple[list[ColumnSpec], list[list[str | None]]]:
    """Catalogued + registered histograms (labelled variants included)
    with their counts, extrema and headline quantiles."""
    snap = registry.snapshot()["histograms"]
    empty = {"count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {}}
    merged: dict[str, dict] = {name: empty for name in HISTOGRAM_CATALOGUE}
    merged.update(snap)
    columns = [
        ColumnSpec("name", OID_TEXT),
        ColumnSpec("count", OID_INT8),
        ColumnSpec("sum", OID_FLOAT8),
        ColumnSpec("min", OID_FLOAT8),
        ColumnSpec("max", OID_FLOAT8),
        ColumnSpec("p50", OID_FLOAT8),
        ColumnSpec("p90", OID_FLOAT8),
        ColumnSpec("p99", OID_FLOAT8),
    ]
    rows = []
    for name, h in sorted(merged.items()):
        rows.append([
            name,
            _cell(h["count"]),
            _cell(float(h["sum"])),
            _cell(h["min"]),
            _cell(h["max"]),
            _cell(snapshot_quantile(h, 0.50)),
            _cell(snapshot_quantile(h, 0.90)),
            _cell(snapshot_quantile(h, 0.99)),
        ])
    return columns, rows


def slo_rows(
    tracker: SloTracker | None,
) -> tuple[list[ColumnSpec], list[list[str | None]]]:
    """One row per (objective, window) from the live burn-rate tracker."""
    columns = [
        ColumnSpec("objective", OID_TEXT),
        ColumnSpec("kind", OID_TEXT),
        ColumnSpec("window_seconds", OID_FLOAT8),
        ColumnSpec("target", OID_FLOAT8),
        ColumnSpec("threshold_seconds", OID_FLOAT8),
        ColumnSpec("total", OID_INT8),
        ColumnSpec("bad", OID_INT8),
        ColumnSpec("bad_fraction", OID_FLOAT8),
        ColumnSpec("burn_rate", OID_FLOAT8),
        ColumnSpec("status", OID_TEXT),
    ]
    rows = []
    for r in (tracker.burn_rates() if tracker is not None else []):
        rows.append([
            r["objective"],
            r["kind"],
            _cell(r["window_seconds"]),
            _cell(r["target"]),
            _cell(r["threshold_seconds"]),
            _cell(r["total"]),
            _cell(r["bad"]),
            _cell(r["bad_fraction"]),
            _cell(r["burn_rate"]),
            r["status"],
        ])
    return columns, rows


def event_rows(
    log: EventLog,
) -> tuple[list[ColumnSpec], list[list[str | None]]]:
    """The event ring, oldest first; extra fields JSON-packed in
    ``detail`` (sorted keys, so rows are stable for tests and diffs)."""
    columns = [
        ColumnSpec("seq", OID_INT8),
        ColumnSpec("ts", OID_FLOAT8),
        ColumnSpec("kind", OID_TEXT),
        ColumnSpec("detail", OID_TEXT),
    ]
    rows = []
    for record in log.records():
        detail = {k: v for k, v in record.items() if k not in _EVENT_CORE}
        rows.append([
            _cell(record["seq"]),
            _cell(float(record["ts"])),
            record["kind"],
            json.dumps(detail, sort_keys=True),
        ])
    return columns, rows


#: Table name -> builder(server) -> (columns, rows).  The server object
#: supplies the live registry / tracker / ring.
VIRTUAL_TABLES = {
    "partime_metrics": lambda server: metrics_rows(server.registry),
    "partime_histograms": lambda server: histogram_rows(server.registry),
    "partime_slo": lambda server: slo_rows(server.slo),
    "partime_events": lambda server: event_rows(server.events),
}


def serve_virtual(
    server, name: str, limit: int | None
) -> tuple[list[ColumnSpec], list[list[str | None]]]:
    """Build one virtual result set against the live server state."""
    columns, rows = VIRTUAL_TABLES[name](server)
    if limit is not None:
        rows = rows[:limit]
    return columns, rows
