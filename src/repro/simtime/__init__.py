"""Simulated multicore execution and cost accounting.

The paper's headline experiments run on a 32-core NUMA machine; CPython
(GIL, and a single-CPU container) cannot demonstrate real 32-way speedup.
This package provides the substitution documented in DESIGN.md: algorithms
run for real, their per-task wall-clock work is measured, and a
:class:`~repro.simtime.clock.SimClock` derives the elapsed time a parallel
machine would observe — a parallel phase costs the *makespan* of its tasks
over the available cores, a serial phase costs the *sum*.

Because the real work of every task is measured (not modelled), Amdahl
effects emerge naturally: ParTime's Step 1 shrinks with more cores while
Step 2 does not, and query r2's giant per-partition delta maps make Step 2
grow with the number of cores, just as in Figure 19.
"""

from repro.simtime.clock import SimClock, Phase
from repro.simtime.machine import MachineSpec
from repro.simtime.executor import (
    BACKENDS,
    Executor,
    ExecutorTaskError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    task_label,
)
from repro.simtime.cost import CostModel
from repro.simtime.measure import Stopwatch, measured, timed_call
from repro.simtime.shm import ShmChunk, export_chunk

__all__ = [
    "SimClock",
    "Phase",
    "MachineSpec",
    "BACKENDS",
    "Executor",
    "ExecutorTaskError",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "make_executor",
    "task_label",
    "CostModel",
    "Stopwatch",
    "measured",
    "timed_call",
    "ShmChunk",
    "export_chunk",
]
