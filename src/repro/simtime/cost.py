"""Calibrated cost constants for the commercial-system stand-ins.

Systems D and M of Section 5.1 are anonymous commercial databases; we model
their *cost structure* rather than their implementations (see DESIGN.md):

* **System D** — disk-based, general-purpose: pays buffered page I/O on
  scans even when warm (buffer-manager overhead), has good secondary
  indexes (the paper ran its index advisor), and executes temporal
  aggregation via self-joins over the time columns — which is why it is
  orders of magnitude slower than a purpose-built operator and why it
  times out at scale.
* **System M** — main-memory columnar analytics engine with strong
  compression and fast scans, primary-key indexes only, native temporal
  *storage* but no native temporal aggregation operator.

The constants below are multipliers applied to the measured work of the
naive reference evaluation; they were chosen so that the SF=1 TPC-BiH
response-time ordering of Figure 17 (Timeline < ParTime(31) < M < D)
and the bulk-load ordering of Table 4 hold.  They are deliberately simple:
the benchmark harness reports shapes, not absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cost multipliers and limits for the simulated comparators."""

    #: Cores the commercial systems use (Section 5.1: "Systems D and M
    #: made use of all 32 cores").  Their generic plans parallelise with
    #: the given efficiency, which is how System M with 32 cores beats
    #: ParTime with 2 (Section 5.4.1) despite the worse algorithm.
    commercial_cores: int = 32
    #: D's temporal plans are effectively single-threaded (disk-era
    #: executor): efficiency 1/32 cancels the 32-way divisor.
    system_d_parallel_efficiency: float = 0.03125
    system_m_parallel_efficiency: float = 0.70

    # --- System D (disk-based, Section 5.1) -----------------------------
    #: Slowdown of D's buffered scan vs. a columnar in-memory scan.
    system_d_scan_factor: float = 12.0
    #: Extra blow-up of D's temporal aggregation (self-join plans grow
    #: super-linearly in the number of versions), per core, before the
    #: parallel divisor.
    system_d_temporal_factor: float = 400.0
    #: D's result materialisation overhead on temporal aggregation.
    system_d_merge_factor: float = 5.0
    #: Speed-up D gets on indexed point/range queries.
    system_d_index_speedup: float = 200.0
    #: Per-row bulk-load slowdown (row store, constraint checks, logging).
    system_d_load_factor: float = 300.0

    # --- System M (main-memory columnar, Section 5.1) -------------------
    #: M's scans are fast: mild factor over our NumPy scan.
    system_m_scan_factor: float = 1.5
    #: M's temporal aggregation still goes through generic plans.
    system_m_temporal_factor: float = 12.0
    #: M's result materialisation overhead on temporal aggregation.
    system_m_merge_factor: float = 2.0
    #: Speed-up from M's primary-key index on key lookups.
    system_m_index_speedup: float = 100.0
    #: M's compressed temporal bulk load is notoriously slow (Table 4:
    #: 962 min vs 2.5 min for Crescando on SF=1).
    system_m_load_factor: float = 1200.0
    #: M's dictionary compression shrinks storage (Table 3).
    system_m_compression: float = 0.9

    # --- Timeouts --------------------------------------------------------
    #: Simulated seconds after which D/M abort a query, as they did on the
    #: full Amadeus database and on TPC-BiH SF=100.
    timeout_s: float = 600.0

    # --- Crescando / shared scan -----------------------------------------
    #: Maximum number of queries batched into one shared scan cycle
    #: ("Crescando processes a batch of up to 2000 queries", Section 5.3.2).
    max_batch: int = 2000


#: Default calibration used by the benchmark harness.
DEFAULT_COSTS = CostModel()
