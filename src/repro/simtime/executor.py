"""Executors: how parallel phases actually run and are accounted.

Two implementations of the same small protocol:

* :class:`SerialExecutor` — runs tasks one after another, measures each
  with ``perf_counter`` and books the phase into a
  :class:`~repro.simtime.clock.SimClock` as if the tasks had run on
  ``slots`` cores.  This is the default and the basis of every simulated
  experiment (see DESIGN.md on the hardware substitution).
* :class:`ThreadExecutor` — a real ``ThreadPoolExecutor``.  Under the GIL
  this gives no speedup for pure-Python work (the very limitation the
  substitution works around) but it validates that Step 1 is safe to run
  concurrently, and NumPy releases the GIL for large array kernels.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Protocol, Sequence

from repro.simtime.clock import SimClock
from repro.simtime.measure import measured


def task_label(label: str, fn: Callable) -> str:
    """The phase label to book: the explicit ``label``, else a name derived
    from the callable.

    Not every callable has a ``__name__`` — ``functools.partial`` objects
    and instances with ``__call__`` do not — so fall back to the wrapped
    function's name and finally to a ``repr``-based tag rather than
    crashing the accounting path.
    """
    if label:
        return label
    name = getattr(fn, "__name__", None)
    if name:
        return name
    wrapped = getattr(fn, "func", None)  # functools.partial
    if wrapped is not None:
        inner = getattr(wrapped, "__name__", None)
        if inner:
            return f"partial({inner})"
    return f"<{type(fn).__name__}>"


class Executor(Protocol):
    """The execution/accounting interface ParTime and the cluster use."""

    clock: SimClock

    def map_parallel(
        self, fn: Callable, items: Sequence, label: str = ""
    ) -> list: ...

    def run_serial(self, fn: Callable[[], Any], label: str = "") -> Any: ...


class SerialExecutor:
    """Sequential execution with simulated-parallel accounting.

    ``slots`` is the number of simulated cores available to parallel
    phases; by default every task of a phase gets its own core (the
    one-chunk-per-worker usage of :class:`~repro.core.partime.ParTime`).
    """

    def __init__(self, slots: int | None = None, clock: SimClock | None = None) -> None:
        self.slots = slots
        self.clock = clock or SimClock()

    def map_parallel(self, fn: Callable, items: Sequence, label: str = "") -> list:
        results = []
        durations = []
        for item in items:
            with measured() as sw:
                results.append(fn(item))
            durations.append(sw.elapsed)
        slots = self.slots if self.slots is not None else max(1, len(items))
        self.clock.parallel(
            task_label(label, fn),
            durations,
            slots,
            meta={"executor": "serial", "tasks": len(items)},
        )
        return results

    def run_serial(self, fn: Callable[[], Any], label: str = "") -> Any:
        with measured() as sw:
            result = fn()
        self.clock.serial(
            task_label(label, fn), sw.elapsed, meta={"executor": "serial"}
        )
        return result


class ThreadExecutor:
    """Real threads; simulated clock records wall-clock per phase."""

    def __init__(self, max_workers: int, clock: SimClock | None = None) -> None:
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.max_workers = max_workers
        self.clock = clock or SimClock()

    def map_parallel(self, fn: Callable, items: Sequence, label: str = "") -> list:
        with measured() as sw:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                results = list(pool.map(fn, items))
        self.clock.parallel(
            task_label(label, fn),
            [sw.elapsed],
            slots=1,
            meta={"executor": "thread", "tasks": len(items)},
        )
        return results

    def run_serial(self, fn: Callable[[], Any], label: str = "") -> Any:
        with measured() as sw:
            result = fn()
        self.clock.serial(
            task_label(label, fn), sw.elapsed, meta={"executor": "thread"}
        )
        return result
