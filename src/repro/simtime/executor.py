"""Executors: how parallel phases actually run and are accounted.

Three implementations of the same small protocol:

* :class:`SerialExecutor` — runs tasks one after another, measures each
  with ``perf_counter`` and books the phase into a
  :class:`~repro.simtime.clock.SimClock` as if the tasks had run on
  ``slots`` cores.  This is the default and the basis of every simulated
  experiment (see DESIGN.md on the hardware substitution).
* :class:`ThreadExecutor` — a real ``ThreadPoolExecutor``.  Under the GIL
  this gives no speedup for pure-Python work (the very limitation the
  substitution works around) but it validates that Step 1 is safe to run
  concurrently, and NumPy releases the GIL for large array kernels.
* :class:`ProcessExecutor` — a real ``multiprocessing`` worker pool: one
  Python interpreter per worker, zero GIL contention, chunk payloads
  shipped through :mod:`repro.simtime.shm` (shared-memory blocks with
  zero-copy NumPy reconstruction) instead of the pickle pipe.  This is
  the repo's first path to genuine hardware speedup on pure-Python
  Step 1.

All three book **the same phases** into their clock: one
``clock.parallel`` per ``map_parallel`` with one measured duration per
task, one ``clock.serial`` per ``run_serial``.  Swapping the executor
changes measured values (and real wall-clock), never answers, phase
labels, task counts, counters/gauges, histogram observation counts, or
span-tree structure — the parity contract pinned by
``tests/test_executor_parity.py`` and documented in docs/executors.md.

When a tracer is active, each backend additionally captures the spans a
task body records (thread-locally, via ``repro.obs.tracer.capture``) and
grafts them under the phase leaf the clock booked; the process backend
ships them back as serialised span dicts alongside the metrics delta.
"""

from __future__ import annotations

import functools
import os
import pickle
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence

from repro.faults.inject import FaultInjector, attempt_locally, current_injector
from repro.faults.plan import FaultInjected
from repro.obs.events import events
from repro.obs.metrics import diff_snapshots, merge_delta, metrics
from repro.obs.tracer import Span, capture, current_tracer, graft_task_spans
from repro.simtime.clock import SimClock
from repro.simtime.measure import measured
from repro.simtime.shm import (
    ShmChunk,
    ShmDeltaMap,
    attach_hook,
    export_chunk,
    export_delta_map,
    release_all,
)

#: Environment knob the CI matrix uses to pin the multiprocessing start
#: method (``fork`` / ``spawn`` / ``forkserver``).  Unset → the platform
#: default.
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def task_label(label: str, fn: Callable) -> str:
    """The phase label to book: the explicit ``label``, else a name derived
    from the callable.

    Not every callable has a ``__name__`` — ``functools.partial`` objects
    and instances with ``__call__`` do not — so fall back to the wrapped
    function's name and finally to a ``repr``-based tag rather than
    crashing the accounting path.
    """
    if label:
        return label
    name = getattr(fn, "__name__", None)
    if name:
        return name
    wrapped = getattr(fn, "func", None)  # functools.partial
    if wrapped is not None:
        inner = getattr(wrapped, "__name__", None)
        if inner:
            return f"partial({inner})"
    return f"<{type(fn).__name__}>"


class ExecutorTaskError(RuntimeError):
    """A task of a parallel phase failed (raised, or its worker died).

    Always names the phase label and the failing task index, so a stack
    trace from deep inside a worker still says *which* Step 1 partition
    (or node cycle) went down.  When the fault-injection plane gives up
    on a task after exhausting its :class:`~repro.faults.RetryPolicy`,
    ``attempts`` carries the per-attempt
    :class:`~repro.faults.FaultSpec` history.
    """

    def __init__(
        self,
        phase: str,
        task_index: int | None,
        reason: str,
        attempts: tuple = (),
    ) -> None:
        where = (
            f"task {task_index} of phase {phase!r}"
            if task_index is not None
            else f"phase {phase!r}"
        )
        super().__init__(f"{where} failed: {reason}")
        self.phase = phase
        self.task_index = task_index
        self.attempts = tuple(attempts)


class Executor(Protocol):
    """The execution/accounting interface ParTime and the cluster use."""

    clock: SimClock

    def map_parallel(
        self, fn: Callable, items: Sequence, label: str = ""
    ) -> list: ...

    def run_serial(self, fn: Callable[[], Any], label: str = "") -> Any: ...


def _captured_call(
    run: Callable[[], tuple[Any, float]], want_spans: bool
) -> tuple[Any, float, list]:
    """Run one ``(result, seconds)`` task attempt, optionally collecting
    the spans its body records.

    When a tracer is active, the attempt runs under a thread-local
    :func:`~repro.obs.tracer.capture`, so span hooks fired inside the
    task body (labelled ``measured()`` calls, nested ``span()`` blocks)
    land in a detached per-task tree instead of the shared tracer —
    identical behaviour on the main thread (serial backend) and on pool
    threads (thread backend).  The caller grafts the returned children
    under the phase leaf once the clock has booked the phase.
    """
    if not want_spans:
        result, seconds = run()
        return result, seconds, []
    with capture() as cap:
        result, seconds = run()
    return result, seconds, cap.root.children


def _run_serial_with_faults(
    executor, fn: Callable[[], Any], label: str, tag: str
) -> Any:
    """Shared faulted ``run_serial``: a serial phase is a 1-task phase, so
    it draws from the same plan vocabulary as parallel phases (task index
    0), retries under the same policy, and books its backoff the same
    way."""
    phase = task_label(label, fn)
    session = executor.faults.begin_phase(phase)
    result, seconds, spans = _captured_call(
        functools.partial(
            session.execute,
            0,
            functools.partial(attempt_locally, fn=lambda _item: fn(), item=None),
        ),
        current_tracer() is not None,
    )
    leaf = executor.clock.serial(phase, seconds, meta={"executor": tag})
    session.finish(executor.clock)
    if spans:
        graft_task_spans(leaf, {0: spans})
    return result


def _run_serial_traced(
    executor, fn: Callable[[], Any], label: str, tag: str
) -> Any:
    """Shared unfaulted ``run_serial``: measure, book, graft captures."""
    result, seconds, spans = _captured_call(
        functools.partial(_timed_task, lambda _item: fn(), None),
        current_tracer() is not None,
    )
    leaf = executor.clock.serial(
        task_label(label, fn), seconds, meta={"executor": tag}
    )
    if spans:
        graft_task_spans(leaf, {0: spans})
    return result


class SerialExecutor:
    """Sequential execution with simulated-parallel accounting.

    ``slots`` is the number of simulated cores available to parallel
    phases; by default every task of a phase gets its own core (the
    one-chunk-per-worker usage of :class:`~repro.core.partime.ParTime`).

    ``faults`` attaches a :class:`~repro.faults.FaultInjector`; omitted,
    the ambient injector activated by
    :func:`repro.faults.fault_injection` (if any) is picked up at
    construction time.
    """

    def __init__(
        self,
        slots: int | None = None,
        clock: SimClock | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.slots = slots
        self.clock = clock or SimClock()
        self.faults = faults if faults is not None else current_injector()

    def map_parallel(self, fn: Callable, items: Sequence, label: str = "") -> list:
        phase = task_label(label, fn)
        session = (
            self.faults.begin_phase(phase) if self.faults is not None else None
        )
        want_spans = current_tracer() is not None
        results = []
        durations = []
        subtrees: dict[int, list] = {}
        for i, item in enumerate(items):
            if session is None:
                run = functools.partial(_timed_task, fn, item)
            else:
                run = functools.partial(
                    session.execute,
                    i,
                    functools.partial(attempt_locally, fn=fn, item=item),
                )
            result, seconds, spans = _captured_call(run, want_spans)
            results.append(result)
            durations.append(seconds)
            if spans:
                subtrees[i] = spans
        slots = self.slots if self.slots is not None else max(1, len(items))
        leaf = self.clock.parallel(
            phase,
            durations,
            slots,
            meta={"executor": "serial", "tasks": len(items)},
        )
        if session is not None:
            session.finish(self.clock)
        graft_task_spans(leaf, subtrees)
        return results

    def run_serial(self, fn: Callable[[], Any], label: str = "") -> Any:
        if self.faults is not None:
            return _run_serial_with_faults(self, fn, label, "serial")
        return _run_serial_traced(self, fn, label, "serial")


def _timed_task(fn: Callable, item) -> tuple[Any, float]:
    """Run one task and measure it (thread-pool per-task instrumentation)."""
    with measured() as sw:
        result = fn(item)
    return result, sw.elapsed


class ThreadExecutor:
    """Real threads; each task is measured individually and the phase is
    booked exactly like the serial executor's (same label, same task
    count), with ``max_workers`` slots.

    Like :class:`ProcessExecutor`, the physical pool is capped at the
    machine's core count: threads beyond the physical cores only
    time-slice and inflate the per-task measurements the simulated
    makespan is computed from.  (GIL-bound pure-Python tasks still
    contend below that cap — the very limitation DESIGN.md §1's
    substitution works around — which is why the serial executor remains
    the reference backend for simulated numbers.)
    """

    def __init__(
        self,
        max_workers: int,
        clock: SimClock | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.max_workers = max_workers
        self.pool_workers = min(max_workers, os.cpu_count() or max_workers)
        self.clock = clock or SimClock()
        self.faults = faults if faults is not None else current_injector()

    def map_parallel(self, fn: Callable, items: Sequence, label: str = "") -> list:
        phase = task_label(label, fn)
        session = (
            self.faults.begin_phase(phase) if self.faults is not None else None
        )
        want_spans = current_tracer() is not None
        with ThreadPoolExecutor(max_workers=self.pool_workers) as pool:
            # The retry loop (and the span capture) runs *inside* each
            # pooled job, so a faulted task retries on its own worker
            # thread without blocking the rest of the phase, and its spans
            # land in a thread-local per-task capture instead of racing
            # for the shared tracer.  Every draw/backoff is keyed on the
            # task index — thread scheduling cannot perturb the schedule.
            def job(pair: tuple[int, Any]) -> tuple[Any, float, list]:
                i, item = pair
                if session is None:
                    run = functools.partial(_timed_task, fn, item)
                else:
                    run = functools.partial(
                        session.execute,
                        i,
                        functools.partial(attempt_locally, fn=fn, item=item),
                    )
                return _captured_call(run, want_spans)

            outcomes = list(pool.map(job, list(enumerate(items))))
        results = [r for r, _s, _spans in outcomes]
        durations = [s for _r, s, _spans in outcomes]
        subtrees = {
            i: spans for i, (_r, _s, spans) in enumerate(outcomes) if spans
        }
        leaf = self.clock.parallel(
            phase,
            durations,
            slots=self.max_workers,
            meta={"executor": "thread", "tasks": len(items)},
        )
        if session is not None:
            session.finish(self.clock)
        graft_task_spans(leaf, subtrees)
        return results

    def run_serial(self, fn: Callable[[], Any], label: str = "") -> Any:
        if self.faults is not None:
            return _run_serial_with_faults(self, fn, label, "thread")
        return _run_serial_traced(self, fn, label, "thread")


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _PickledResult:
    """A task result serialised *inside* the shared-memory mapping window.

    A result that aliases the chunk's zero-copy views would dangle once
    the worker unmaps the block — and NumPy keeps only a plain object
    reference to the mapped ``mmap``, invisible to ``mmap.close()``, so
    the dangling view reads unmapped memory instead of failing loudly.
    Pickling while the mapping is still valid materialises any aliasing
    arrays into owned buffers; the parent unpickles transparently.
    """

    blob: bytes


def _deny_attach(name: str):
    """The attach hook installed for an injected ``shm_attach`` fault."""

    def hook(block_name: str) -> None:
        raise FaultInjected("shm_attach", site=block_name or name)

    return hook


def _run_process_task(
    fn: Callable, payload, fault: str | None = None, trace: bool = False
) -> tuple[Any, float, dict, list | None]:
    """Worker-side wrapper around one task.

    * Reconstructs :class:`~repro.simtime.shm.ShmChunk` payloads as
      zero-copy chunks, and pickles the result *before* the mapping
      closes (see :class:`_PickledResult`);
    * measures the task with the same stopwatch serial execution uses, so
      the parent can book the phase as a measured makespan;
    * captures the metrics the task emitted into this worker's
      process-local registry as a snapshot delta, so the parent can fold
      them into its own registry (metrics parity across backends);
    * under ``trace``, additionally captures the spans the task body
      records and ships them back as ``to_dict`` payloads — the parent
      grafts them under the dispatching phase leaf, which is how trace
      trees keep worker-side structure across the process boundary;
    * enacts an injected ``fault`` directive *for real*: ``worker_kill``
      hard-exits this worker (the parent sees ``BrokenProcessPool``),
      ``shm_attach`` makes the chunk attach genuinely fail through the
      :func:`~repro.simtime.shm.attach_hook` seam.  Both fire before the
      task body runs, preserving the exactly-once work contract.
    """
    if fault == "worker_kill":
        os._exit(3)
    registry = metrics()
    before = registry.snapshot()
    with ExitStack() as trace_stack:
        cap = trace_stack.enter_context(capture("worker")) if trace else None
        if isinstance(payload, ShmChunk):
            hook = _deny_attach(payload.block_name) if fault == "shm_attach" else None
            with attach_hook(hook):
                with payload.open() as chunk:
                    with measured() as sw:
                        result = fn(chunk)
                    result = _PickledResult(
                        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                    )
        elif isinstance(payload, ShmDeltaMap) or (
            isinstance(payload, tuple)
            and payload
            and all(isinstance(p, ShmDeltaMap) for p in payload)
        ):
            # Columnar delta maps (single, or a consolidation pair) attach
            # like chunks: zero-copy views inside the block, result pickled
            # inside the mapping window.
            handles = payload if isinstance(payload, tuple) else (payload,)
            hook = (
                _deny_attach(handles[0].block_name)
                if fault == "shm_attach"
                else None
            )
            with attach_hook(hook):
                with ExitStack() as stack:
                    maps = tuple(stack.enter_context(h.open()) for h in handles)
                    arg = maps if isinstance(payload, tuple) else maps[0]
                    with measured() as sw:
                        result = fn(arg)
                    result = _PickledResult(
                        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                    )
        else:
            if fault == "shm_attach":
                raise FaultInjected("shm_attach", site="<no-chunk-payload>")
            with measured() as sw:
                result = fn(payload)
    delta = diff_snapshots(before, registry.snapshot())
    spans = (
        [c.to_dict() for c in cap.root.children] if cap is not None else None
    )
    return result, sw.elapsed, delta, spans


class ProcessExecutor:
    """Real multi-process execution with measured-makespan accounting.

    Tasks run in a persistent ``concurrent.futures.ProcessPoolExecutor``
    (``fork``/``spawn``/``forkserver`` selectable; defaults to the
    ``REPRO_MP_START_METHOD`` environment variable, then the platform
    default).  Task callables and non-chunk payloads must be picklable —
    :mod:`repro.core.partime` ships its Step 1 tasks as frozen dataclass
    callables for exactly this reason.  :class:`TableChunk` payloads are
    transparently rerouted through :mod:`repro.simtime.shm`.

    Accounting matches :class:`SerialExecutor`: every task returns its
    *own* measured seconds, and the parent books the phase into the
    :class:`SimClock` as the makespan of those measurements over
    ``max_workers`` slots.  The simulated-time model is therefore
    unchanged — only the real wall-clock spent obtaining the measurements
    shrinks with the core count.

    The *physical* pool never exceeds ``os.cpu_count()``, regardless of
    ``max_workers``: oversubscribed workers time-slice one core, which
    inflates every concurrently-running task's measured wall-clock — and
    those measurements are the inputs of the simulated makespan.  Capping
    the pool keeps each measurement an uncontended single-core run (the
    quantity the substitution is defined over) while ``max_workers``
    keeps meaning the number of *simulated* cores the phase is booked
    against.

    Failure semantics: a task that raises — or whose worker process dies —
    surfaces as :class:`ExecutorTaskError` naming the phase label; the
    phase's shared-memory blocks are released either way (no orphans), and
    a broken pool is discarded so the next phase starts fresh.
    """

    def __init__(
        self,
        max_workers: int,
        clock: SimClock | None = None,
        start_method: str | None = None,
        use_shared_memory: bool = True,
        faults: FaultInjector | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.max_workers = max_workers
        self.faults = faults if faults is not None else current_injector()
        #: Physical pool size: simulated cores may outnumber real ones,
        #: but running more workers than cores only adds scheduler
        #: contention to the per-task measurements (see class docstring).
        self.pool_workers = min(max_workers, os.cpu_count() or max_workers)
        self.clock = clock or SimClock()
        self.start_method = start_method or os.environ.get(START_METHOD_ENV) or None
        self.use_shared_memory = use_shared_memory
        self._pool = None

    # ------------------------------------------------------------- plumbing

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.pool_workers, mp_context=context
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (it restarts lazily on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _discard_broken_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            events().emit("pool_rebuild", workers=self.pool_workers)

    def _export_payloads(self, items: Sequence) -> tuple[list, list]:
        """Chunks → shared-memory handles; everything else passes through.

        Exports are all-or-nothing: if any export fails partway (no
        space in ``/dev/shm``, a dying interpreter, an injected fault),
        the handles already created are released before the error
        propagates.  Without this the caller's ``finally: release_all``
        never sees them — the leak the shm leak-check fixture in
        ``tests/conftest.py`` guards against.
        """
        from repro.core.deltamap import ColumnarDeltaMap
        from repro.temporal.table import TableChunk

        payloads: list = []
        handles: list = []
        try:
            for item in items:
                if self.use_shared_memory and isinstance(item, TableChunk):
                    handle = export_chunk(item)
                    handles.append(handle)
                    payloads.append(handle)
                elif self.use_shared_memory and isinstance(item, ColumnarDeltaMap):
                    handle = export_delta_map(item)
                    handles.append(handle)
                    payloads.append(handle)
                elif (
                    self.use_shared_memory
                    and isinstance(item, tuple)
                    and item
                    and all(isinstance(x, ColumnarDeltaMap) for x in item)
                ):
                    # Consolidation pairs of the parallel Step-2 merge:
                    # export each map individually so the pair crosses as
                    # two small handles instead of a pickled map pair.
                    pair: list = []
                    for x in item:
                        handle = export_delta_map(x)
                        handles.append(handle)
                        pair.append(handle)
                    payloads.append(tuple(pair))
                else:
                    payloads.append(item)
        except BaseException:
            release_all(handles)
            raise
        return payloads, handles

    # -------------------------------------------------------------- protocol

    def map_parallel(self, fn: Callable, items: Sequence, label: str = "") -> list:
        from concurrent.futures import process as _cf_process

        if self.faults is not None:
            return self._map_parallel_faulted(fn, items, label)
        phase = task_label(label, fn)
        want_spans = current_tracer() is not None
        payloads, handles = self._export_payloads(items)
        results: list = []
        durations: list[float] = []
        subtrees: dict[int, list] = {}
        try:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_run_process_task, fn, payload, trace=want_spans)
                for payload in payloads
            ]
            for i, future in enumerate(futures):
                try:
                    result, seconds, metric_delta, span_dicts = future.result()
                except _cf_process.BrokenProcessPool as exc:
                    self._discard_broken_pool()
                    raise ExecutorTaskError(
                        phase,
                        i,
                        f"worker process died before returning a result "
                        f"({exc}); the pool has been discarded",
                    ) from exc
                except ExecutorTaskError:
                    raise
                except Exception as exc:
                    for pending in futures[i + 1 :]:
                        pending.cancel()
                    raise ExecutorTaskError(
                        phase, i, f"{type(exc).__name__}: {exc}"
                    ) from exc
                if isinstance(result, _PickledResult):
                    result = pickle.loads(result.blob)
                results.append(result)
                durations.append(seconds)
                merge_delta(metric_delta)
                if span_dicts:
                    subtrees[i] = [Span.from_dict(d) for d in span_dicts]
        finally:
            release_all(handles)
        leaf = self.clock.parallel(
            phase,
            durations,
            slots=self.max_workers,
            meta={"executor": "process", "tasks": len(items)},
        )
        graft_task_spans(leaf, subtrees)
        return results

    # -------------------------------------------------------- faulted path

    def _map_parallel_faulted(
        self, fn: Callable, items: Sequence, label: str = ""
    ) -> list:
        """``map_parallel`` under an active fault injector.

        Tasks are dispatched one at a time: a genuinely killed worker
        breaks *every* in-flight future of a ``ProcessPoolExecutor``, so
        concurrent dispatch would turn one injected ``worker_kill`` into
        collateral failures on innocent tasks and destroy cross-backend
        parity.  Fault runs measure resilience, not wall-clock — the
        simulated accounting (measured per-task seconds → LPT makespan
        over ``max_workers`` slots) is unchanged.
        """
        phase = task_label(label, fn)
        session = self.faults.begin_phase(phase)
        payloads, handles = self._export_payloads(items)
        captured: dict[int, list] | None = (
            {} if current_tracer() is not None else None
        )
        results: list = []
        durations: list[float] = []
        try:
            for i, payload in enumerate(payloads):
                result, seconds = session.execute(
                    i,
                    functools.partial(
                        self._process_attempt,
                        fn=fn,
                        payload=payload,
                        phase=phase,
                        index=i,
                        captured=captured,
                    ),
                )
                results.append(result)
                durations.append(seconds)
        finally:
            release_all(handles)
        leaf = self.clock.parallel(
            phase,
            durations,
            slots=self.max_workers,
            meta={"executor": "process", "tasks": len(items)},
        )
        session.finish(self.clock)
        if captured:
            graft_task_spans(leaf, captured)
        return results

    def _process_attempt(
        self,
        spec,
        fn: Callable,
        payload,
        phase: str,
        index: int,
        captured: dict | None = None,
    ) -> tuple[Any, float]:
        """One attempt of one task on the process backend.

        ``task_error`` is raised parent-side (the attempt never reaches a
        worker — matching the inject-before-body contract of the other
        backends); ``worker_kill`` and ``shm_attach`` ship to the worker
        as a directive and are enacted for real.  A worker death comes
        back as ``BrokenProcessPool``: the pool is discarded (rebuilt
        lazily on the retry) and the death is converted into the
        :class:`~repro.faults.FaultInjected` the retry layer expects.
        """
        from concurrent.futures import process as _cf_process

        if spec is not None and spec.kind == "task_error":
            raise FaultInjected("task_error", site=phase)
        directive = (
            spec.kind
            if spec is not None and spec.kind in ("worker_kill", "shm_attach")
            else None
        )
        pool = self._ensure_pool()
        future = pool.submit(
            _run_process_task,
            fn,
            payload,
            fault=directive,
            trace=captured is not None,
        )
        try:
            result, seconds, metric_delta, span_dicts = future.result()
        except FaultInjected:
            raise
        except _cf_process.BrokenProcessPool as exc:
            self._discard_broken_pool()
            if directive == "worker_kill":
                events().emit("worker_kill", phase=phase, task=index)
                raise FaultInjected("worker_kill", site=phase) from exc
            raise ExecutorTaskError(
                phase,
                index,
                f"worker process died before returning a result "
                f"({exc}); the pool has been discarded",
            ) from exc
        except ExecutorTaskError:
            raise
        except Exception as exc:
            raise ExecutorTaskError(
                phase, index, f"{type(exc).__name__}: {exc}"
            ) from exc
        if isinstance(result, _PickledResult):
            result = pickle.loads(result.blob)
        merge_delta(metric_delta)
        if captured is not None and span_dicts:
            # Only a successful attempt reaches this point, so retried
            # tasks keep exactly one captured subtree — the one whose
            # result was actually used.
            captured[index] = [Span.from_dict(d) for d in span_dicts]
        if spec is not None and spec.kind == "slow_task":
            seconds *= spec.multiplier
        return result, seconds

    def run_serial(self, fn: Callable[[], Any], label: str = "") -> Any:
        if self.faults is not None:
            return _run_serial_with_faults(self, fn, label, "process")
        return _run_serial_traced(self, fn, label, "process")


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------

#: The names accepted by ``--backend`` flags and config layers.
BACKENDS = ("serial", "threads", "process")


def make_executor(
    backend: str,
    workers: int | None = None,
    clock: SimClock | None = None,
    start_method: str | None = None,
    faults: FaultInjector | None = None,
) -> "SerialExecutor | ThreadExecutor | ProcessExecutor":
    """Build an executor from a backend name.

    ``workers`` bounds the real worker pool for ``threads`` / ``process``
    (defaulting to ``os.cpu_count()``), and the simulated slot count for
    ``serial`` (defaulting to one slot per task, the historical default).
    ``faults`` attaches a shared :class:`~repro.faults.FaultInjector`
    (omitted, each executor picks up the ambient one, if any).
    """
    if backend == "serial":
        return SerialExecutor(slots=workers, clock=clock, faults=faults)
    pool = workers or os.cpu_count() or 1
    if backend == "threads":
        return ThreadExecutor(max_workers=pool, clock=clock, faults=faults)
    if backend == "process":
        return ProcessExecutor(
            max_workers=pool,
            clock=clock,
            start_method=start_method,
            faults=faults,
        )
    raise ValueError(f"unknown executor backend {backend!r}; known: {BACKENDS}")
