"""Shared-memory transport for columnar chunks.

The :class:`~repro.simtime.executor.ProcessExecutor` fans ParTime Step 1
out over real OS processes.  Naively, every task would pickle its whole
:class:`~repro.temporal.table.TableChunk` through a pipe — O(partition)
bytes copied twice per task, which is exactly the serialization tax that
ParIS-style engines fight at process boundaries.  This module removes it
for the dominant payload: numeric NumPy columns travel through one
``multiprocessing.shared_memory`` block per chunk and are reconstructed
in the worker as **zero-copy views** into the mapped block.

Layout of a block::

    [col 0 bytes][pad][col 1 bytes][pad]...

Each column's placement is described by a picklable
:class:`ColumnDescriptor`; the whole chunk by a :class:`ShmChunk` handle
(block name + descriptors + schema + row offset), which is what actually
crosses the process boundary — a few hundred bytes regardless of the
partition size.

Two kinds of columns exist in this repo (see
:class:`~repro.temporal.schema.ColumnType`):

* fixed-width numeric dtypes (``int64``/``float64``/``bool``) — stored
  raw, reconstructed as ``np.ndarray(buffer=shm.buf, ...)`` views
  (zero-copy);
* ``object`` dtype (strings) — NumPy object arrays hold *pointers*, which
  are meaningless in another address space; these columns are pickled
  into the block and materialised (one copy) in the worker.

Lifecycle contract
------------------

The **parent** (exporting side) owns every block: :func:`export_chunk`
creates it and :func:`ShmChunk.release` (or :func:`release_all`) closes
*and unlinks* it.  The **worker** (attaching side) only maps and unmaps:
:meth:`ShmChunk.open` attaches, the returned :class:`AttachedChunk`
context manager unmaps on exit.  Workers never unlink — the parent may
still need the block for a retry — and they unregister the mapping from
their own ``resource_tracker`` so the tracker does not double-account a
block whose ownership lives in the parent (the well-known
``shared_memory`` leak-warning gotcha).

A task result that aliases the zero-copy views would dangle once the
mapping closes — NumPy records only a plain object reference to the
mapped ``mmap``, which ``mmap.close()`` cannot see, so the dangling view
would *not* fail loudly; it would read unmapped memory.  The executor
therefore pickles every task result **inside** the mapping window
(:func:`repro.simtime.executor._run_process_task`): pickling materialises
any aliasing arrays into owned buffers while the bytes are still valid.
``AttachedChunk.__exit__`` additionally releases its column memoryviews
explicitly and converts a ``BufferError`` from a still-exported buffer
into a message naming the offending block.
"""

from __future__ import annotations

import pickle
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Iterator

import numpy as np

from repro.temporal.schema import TableSchema
from repro.temporal.table import TableChunk

#: Every block this module creates carries this name prefix, so leak
#: checks (tests, operators looking at /dev/shm) can attribute blocks.
SHM_PREFIX = "partime_"

#: Column byte ranges start at multiples of this (int64/float64 views
#: must be aligned; 16 also covers any future wider dtype).
_ALIGN = 16

#: Parent-side registry of live (not yet released) blocks, by name.
#: Inspected by the leak assertions of the executor test-suite.
_LIVE_BLOCKS: dict[str, shared_memory.SharedMemory] = {}


def active_block_names() -> list[str]:
    """Names of blocks exported by this process and not yet released."""
    return sorted(_LIVE_BLOCKS)


#: Process-local hook consulted at the top of every attach (worker side).
#: ``None`` → attaches proceed normally.  The fault-injection plane
#: installs a hook that raises :class:`~repro.faults.FaultInjected` to
#: enact a deterministic ``shm_attach`` failure *before* the block is
#: mapped (see docs/fault_injection.md).
_ATTACH_HOOK: Callable[[str], None] | None = None


@contextmanager
def attach_hook(hook: Callable[[str], None] | None) -> Iterator[None]:
    """Install ``hook`` for attaches performed inside the ``with`` block.

    The hook receives the block name and may raise to fail the attach.
    ``None`` is accepted (and is a no-op) so call sites can pass their
    maybe-hook unconditionally.  Re-entrant: the previous hook is
    restored on exit.  Workers are single-threaded, so the process-global
    swap cannot race (the same argument :func:`_attach_untracked` relies
    on).
    """
    global _ATTACH_HOOK
    outer = _ATTACH_HOOK
    _ATTACH_HOOK = hook
    try:
        yield
    finally:
        _ATTACH_HOOK = outer


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ColumnDescriptor:
    """Where one column lives inside a block and how to rebuild it.

    ``encoding`` is ``"raw"`` (fixed-width dtype, zero-copy view) or
    ``"pickle"`` (object dtype, materialised copy).
    """

    name: str
    encoding: str
    dtype: str
    length: int
    offset: int
    nbytes: int


@dataclass(frozen=True)
class ShmChunk:
    """Picklable handle to a columnar chunk living in shared memory."""

    block_name: str
    schema: TableSchema
    row_offset: int
    columns: tuple[ColumnDescriptor, ...]
    num_rows: int

    def open(self) -> "AttachedChunk":
        """Attach to the block (worker side); use as a context manager."""
        return AttachedChunk(self)

    def release(self) -> None:
        """Parent side: close and unlink the backing block (idempotent)."""
        _release_block(self.block_name)


class AttachedChunk:
    """Worker-side mapping of a :class:`ShmChunk`.

    ``with handle.open() as chunk:`` yields a reconstructed
    :class:`TableChunk` whose numeric columns are zero-copy views into
    the mapped block; the mapping is closed when the block exits.
    """

    def __init__(self, handle: ShmChunk) -> None:
        self._handle = handle
        self._shm: shared_memory.SharedMemory | None = None
        #: The column memoryview slices, kept alive for the lifetime of
        #: the mapping (dropping them early lets ``mmap.close`` succeed
        #: under still-live ndarray views — a silent dangling pointer).
        self._views: list[memoryview] = []

    def __enter__(self) -> TableChunk:
        handle = self._handle
        if _ATTACH_HOOK is not None:
            _ATTACH_HOOK(handle.block_name)
        self._shm = _attach_untracked(handle.block_name)
        columns: dict[str, np.ndarray] = {}
        buf = self._shm.buf
        for desc in handle.columns:
            raw = buf[desc.offset : desc.offset + desc.nbytes]
            if desc.encoding == "raw":
                self._views.append(raw)
                columns[desc.name] = np.ndarray(
                    (desc.length,), dtype=np.dtype(desc.dtype), buffer=raw
                )
            elif desc.encoding == "pickle":
                columns[desc.name] = pickle.loads(raw)  # materialised copy
                raw.release()
            else:  # pragma: no cover - descriptor written by export_chunk
                raise ValueError(f"unknown column encoding {desc.encoding!r}")
        return TableChunk(
            schema=handle.schema,
            columns=columns,
            row_offset=handle.row_offset,
        )

    def __exit__(self, *exc_info) -> None:
        if self._shm is None:
            return
        try:
            for view in self._views:
                view.release()
            self._shm.close()
        except BufferError:
            raise BufferError(
                f"buffers exported from shared-memory chunk "
                f"{self._handle.block_name!r} are still alive at unmap "
                f"time; results returned from a ProcessExecutor task must "
                f"own their buffers (the executor pickles results inside "
                f"the mapping window for exactly this reason)"
            ) from None
        finally:
            self._views = []
            self._shm = None


def _release_block(name: str) -> None:
    """Parent side: close and unlink one exported block (idempotent)."""
    shm = _LIVE_BLOCKS.pop(name, None)
    if shm is None:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked by an earlier release
        pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without registering it with this
    process's ``resource_tracker``.

    The *creating* process (the executor parent) already registered the
    block and will unlink it; a second registration from the attaching
    worker either double-books a shared tracker (``fork``: the eventual
    unlink triggers a KeyError in the tracker process) or books it with a
    tracker that outlives the mapping (``spawn``: the worker's tracker
    "cleans up" — i.e. unlinks — a block the parent still owns, plus a
    leak warning).  Python 3.13 grew ``track=False`` for exactly this;
    on the 3.10-3.12 range this repo supports, suppressing the register
    hook around the attach is the sanctioned workaround (single-threaded
    workers, so the swap cannot race).
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def export_chunk(chunk: TableChunk) -> ShmChunk:
    """Serialize ``chunk`` into one fresh shared-memory block.

    Returns the picklable handle.  The caller (parent process) is
    responsible for :meth:`ShmChunk.release` once every worker holding
    the handle has finished — the executor does this per phase.
    """
    payloads: list[tuple[str, str, str, int, bytes | np.ndarray]] = []
    offset = 0
    descriptors: list[ColumnDescriptor] = []
    for name, arr in chunk.columns.items():
        if arr.dtype == object:
            blob = pickle.dumps(arr, protocol=pickle.HIGHEST_PROTOCOL)
            encoding, dtype, nbytes = "pickle", "object", len(blob)
            payload: bytes | np.ndarray = blob
            length = len(arr)
        else:
            arr = np.ascontiguousarray(arr)
            encoding, dtype, nbytes = "raw", arr.dtype.str, arr.nbytes
            payload = arr
            length = len(arr)
        offset = _align(offset)
        descriptors.append(
            ColumnDescriptor(name, encoding, dtype, length, offset, nbytes)
        )
        payloads.append((name, encoding, dtype, offset, payload))
        offset += nbytes

    # SharedMemory(size=0) is invalid; an empty chunk still needs a block
    # so the worker-side protocol stays uniform.
    shm = shared_memory.SharedMemory(
        create=True, size=max(offset, 1), name=_fresh_name()
    )
    try:
        buf = shm.buf
        for desc, (_name, encoding, _dtype, off, payload) in zip(
            descriptors, payloads
        ):
            target = buf[off : off + desc.nbytes]
            if encoding == "raw":
                view = np.ndarray(
                    (desc.length,), dtype=np.dtype(desc.dtype), buffer=target
                )
                view[:] = payload
                del view  # drop the export before the memoryview slice
            else:
                target[:] = payload
            del target
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    _LIVE_BLOCKS[shm.name] = shm
    return ShmChunk(
        block_name=shm.name,
        schema=chunk.schema,
        row_offset=chunk.row_offset,
        columns=tuple(descriptors),
        num_rows=len(chunk),
    )


@dataclass(frozen=True)
class ShmDeltaMap:
    """Picklable handle to a columnar delta map living in shared memory.

    A :class:`~repro.core.deltamap.ColumnarDeltaMap` is just a keys array
    plus two component arrays — all fixed-width numerics — so it ships
    exactly like a chunk: the arrays go into one block raw, the handle
    carries ``(block name, aggregate name, kind, descriptors)``, and the
    worker reconstructs the map over **zero-copy views**.  No
    pickle-in-block fallback exists here: delta maps never hold object
    columns.
    """

    block_name: str
    aggregate: str
    kind: str
    columns: tuple[ColumnDescriptor, ...]

    def open(self) -> "AttachedDeltaMap":
        """Attach to the block (worker side); use as a context manager."""
        return AttachedDeltaMap(self)

    def release(self) -> None:
        """Parent side: close and unlink the backing block (idempotent)."""
        _release_block(self.block_name)


class AttachedDeltaMap:
    """Worker-side mapping of a :class:`ShmDeltaMap`.

    ``with handle.open() as dm:`` yields a reconstructed
    ``ColumnarDeltaMap`` whose arrays are zero-copy views into the mapped
    block.  The same aliasing contract as :class:`AttachedChunk` applies:
    task results must be pickled inside the mapping window.
    """

    def __init__(self, handle: ShmDeltaMap) -> None:
        self._handle = handle
        self._shm: shared_memory.SharedMemory | None = None
        self._views: list[memoryview] = []

    def __enter__(self):
        from repro.core.aggregates import get_aggregate
        from repro.core.deltamap import ColumnarDeltaMap

        handle = self._handle
        if _ATTACH_HOOK is not None:
            _ATTACH_HOOK(handle.block_name)
        self._shm = _attach_untracked(handle.block_name)
        buf = self._shm.buf
        arrays: list[np.ndarray] = []
        for desc in handle.columns:
            raw = buf[desc.offset : desc.offset + desc.nbytes]
            self._views.append(raw)
            arrays.append(
                np.ndarray((desc.length,), dtype=np.dtype(desc.dtype), buffer=raw)
            )
        return ColumnarDeltaMap(
            get_aggregate(handle.aggregate),
            arrays[0],
            tuple(arrays[1:]),
            kind=handle.kind,
        )

    def __exit__(self, *exc_info) -> None:
        if self._shm is None:
            return
        try:
            for view in self._views:
                view.release()
            self._shm.close()
        except BufferError:
            raise BufferError(
                f"buffers exported from shared-memory delta map "
                f"{self._handle.block_name!r} are still alive at unmap "
                f"time; results returned from a ProcessExecutor task must "
                f"own their buffers (the executor pickles results inside "
                f"the mapping window for exactly this reason)"
            ) from None
        finally:
            self._views = []
            self._shm = None


def export_delta_map(dm) -> ShmDeltaMap:
    """Serialize a ``ColumnarDeltaMap`` into one shared-memory block.

    Same lifecycle contract as :func:`export_chunk`: the parent owns the
    block and must :meth:`ShmDeltaMap.release` it after the phase.
    """
    keys, components = dm.arrays
    named = [("keys", keys)] + [
        (f"c{i}", comp) for i, comp in enumerate(components)
    ]
    offset = 0
    descriptors: list[ColumnDescriptor] = []
    payloads: list[np.ndarray] = []
    for name, arr in named:
        arr = np.ascontiguousarray(arr)
        offset = _align(offset)
        descriptors.append(
            ColumnDescriptor(name, "raw", arr.dtype.str, len(arr), offset, arr.nbytes)
        )
        payloads.append(arr)
        offset += arr.nbytes

    shm = shared_memory.SharedMemory(
        create=True, size=max(offset, 1), name=_fresh_name()
    )
    try:
        buf = shm.buf
        for desc, payload in zip(descriptors, payloads):
            target = buf[desc.offset : desc.offset + desc.nbytes]
            view = np.ndarray(
                (desc.length,), dtype=np.dtype(desc.dtype), buffer=target
            )
            view[:] = payload
            del view
            del target
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    _LIVE_BLOCKS[shm.name] = shm
    return ShmDeltaMap(
        block_name=shm.name,
        aggregate=dm.aggregate.name,
        kind=dm.kind,
        columns=tuple(descriptors),
    )


def _fresh_name() -> str:
    return f"{SHM_PREFIX}{secrets.token_hex(8)}"


def release_all(handles) -> None:
    """Release every handle in ``handles`` (idempotent, exception-safe)."""
    for handle in handles:
        handle.release()
