"""The simulated clock: makespan accounting for parallel phases.

A :class:`SimClock` accumulates *simulated elapsed time* from measured
per-task durations.  Parallel phases are scheduled onto a bounded number of
core slots with a greedy longest-processing-time-first policy, so asking
for more tasks than cores correctly serialises the excess — this is what
produces the flattening speedup curves of Figures 15 and 19 when a phase
stops being the bottleneck.

Every booking is additionally mirrored to the active
:class:`repro.obs.tracer.Tracer` (when one is installed), which is how the
observability layer sees per-phase simulated times without any engine
threading a tracer through its call stack.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.obs.tracer import record_phase


@dataclass(frozen=True)
class Placement:
    """One task's position in an LPT schedule: which core slot it ran on,
    at which simulated offset inside its phase."""

    task: int  #: index into the phase's ``durations`` tuple
    slot: int  #: core slot (0-based) the task was placed on
    start: float  #: simulated offset from the phase start
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Phase:
    """One recorded phase: its label, kind, and task durations (seconds)."""

    label: str
    kind: str  # "parallel" | "serial"
    durations: tuple[float, ...]
    slots: int
    elapsed: float

    def schedule(self) -> tuple[Placement, ...]:
        """The full LPT placement of this phase's tasks onto its slots.

        Reconstructs — deterministically, from the recorded durations —
        which task landed on which core slot at which simulated offset.
        ``max(p.end for p in schedule)`` equals :attr:`elapsed` for
        phases booked by :class:`SimClock` (both use the same LPT
        policy; serial phases run everything on slot 0).
        """
        return lpt_schedule(self.durations, self.slots)


def lpt_schedule(
    durations: Sequence[float], slots: int
) -> tuple[Placement, ...]:
    """Greedy LPT placement of ``durations`` onto ``slots`` cores.

    Returns one :class:`Placement` per task, in placement (LPT) order.
    The policy matches :func:`makespan` exactly — longest task first,
    onto the least-loaded slot, ties broken by lowest slot index — so
    ``max(p.end for p in lpt_schedule(d, s))`` reproduces
    ``makespan(d, s)`` bit for bit.  With one slot, tasks are laid out
    serially in their original order (the execution order), which keeps
    the final offset equal to ``sum(durations)`` exactly.

    >>> [(p.task, p.slot, p.start) for p in lpt_schedule([3., 3., 2., 2.], 2)]
    [(0, 0, 0.0), (1, 1, 0.0), (2, 0, 3.0), (3, 1, 3.0)]
    >>> [(p.task, p.slot) for p in lpt_schedule([1.0, 4.0], 8)]
    [(1, 0), (0, 1)]
    """
    if slots <= 0:
        raise ValueError("need at least one slot")
    if not durations:
        return ()
    ds = [float(d) for d in durations]
    if slots == 1:
        placements = []
        offset = 0.0
        for i, d in enumerate(ds):
            placements.append(Placement(i, 0, offset, d))
            offset += d
        return tuple(placements)
    heap = [(0.0, s) for s in range(min(slots, len(ds)))]
    order = sorted(range(len(ds)), key=ds.__getitem__, reverse=True)
    placements = []
    for i in order:
        load, slot = heap[0]
        heapq.heapreplace(heap, (load + ds[i], slot))
        placements.append(Placement(i, slot, load, ds[i]))
    return tuple(placements)


def makespan(durations: Sequence[float], slots: int) -> float:
    """Greedy LPT makespan of ``durations`` on ``slots`` identical cores.

    Implemented with a heap over (load, slot) pairs — O(n log n) instead
    of the naive O(n * slots) min-scan — with identical placements: the
    tuple ordering breaks load ties by lowest slot index, exactly like
    ``loads.index(min(loads))``, so the floating-point load sums (and
    therefore the returned makespan) are bit-identical to the quadratic
    reference implementation.

    >>> makespan([3.0, 3.0, 2.0, 2.0], slots=2)
    5.0
    >>> makespan([4.0, 1.0], slots=8)
    4.0
    """
    if not durations:
        return 0.0
    if slots <= 0:
        raise ValueError("need at least one slot")
    if slots == 1:
        return float(sum(durations))
    heap = [(0.0, s) for s in range(min(slots, len(durations)))]
    for d in sorted(durations, reverse=True):
        load, slot = heap[0]
        heapq.heapreplace(heap, (float(load) + d, slot))
    return max(load for load, _slot in heap)


class SimClock:
    """Accumulates simulated elapsed time across phases.

    >>> clock = SimClock()
    >>> clock.parallel("scan", [1.0, 1.0, 1.0, 1.0], slots=4)
    >>> clock.serial("merge", 0.5)
    >>> clock.elapsed
    1.5
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.phases: list[Phase] = []

    def parallel(
        self,
        label: str,
        durations: Sequence[float],
        slots: int,
        meta: dict | None = None,
    ):
        """Book a parallel phase; returns the mirrored trace leaf (a
        :class:`repro.obs.tracer.Span`) when tracing is active, else
        ``None`` — executors graft worker-side span subtrees under it."""
        span = makespan(durations, slots)
        self.phases.append(
            Phase(label, "parallel", tuple(durations), slots, span)
        )
        self.elapsed += span
        return record_phase(label, "parallel", durations, slots, span, meta)

    def serial(
        self, label: str, duration: float, meta: dict | None = None
    ):
        """Book a serial phase; returns the mirrored trace leaf as
        :meth:`parallel` does."""
        self.phases.append(Phase(label, "serial", (duration,), 1, duration))
        self.elapsed += duration
        return record_phase(label, "serial", (duration,), 1, duration, meta)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.phases.clear()

    def total_work(self) -> float:
        """CPU-seconds of actual work across all phases (independent of the
        degree of parallelism)."""
        return sum(sum(p.durations) for p in self.phases)

    def phase_elapsed(self, label_prefix: str) -> float:
        """Elapsed time attributed to phases whose label starts with the
        given prefix (e.g. ``"partime.step1"``)."""
        return sum(p.elapsed for p in self.phases if p.label.startswith(label_prefix))
