"""The simulated clock: makespan accounting for parallel phases.

A :class:`SimClock` accumulates *simulated elapsed time* from measured
per-task durations.  Parallel phases are scheduled onto a bounded number of
core slots with a greedy longest-processing-time-first policy, so asking
for more tasks than cores correctly serialises the excess — this is what
produces the flattening speedup curves of Figures 15 and 19 when a phase
stops being the bottleneck.

Every booking is additionally mirrored to the active
:class:`repro.obs.tracer.Tracer` (when one is installed), which is how the
observability layer sees per-phase simulated times without any engine
threading a tracer through its call stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.obs.tracer import record_phase


@dataclass(frozen=True)
class Phase:
    """One recorded phase: its label, kind, and task durations (seconds)."""

    label: str
    kind: str  # "parallel" | "serial"
    durations: tuple[float, ...]
    slots: int
    elapsed: float


def makespan(durations: Sequence[float], slots: int) -> float:
    """Greedy LPT makespan of ``durations`` on ``slots`` identical cores.

    >>> makespan([3.0, 3.0, 2.0, 2.0], slots=2)
    5.0
    >>> makespan([4.0, 1.0], slots=8)
    4.0
    """
    if not durations:
        return 0.0
    if slots <= 0:
        raise ValueError("need at least one slot")
    if slots == 1:
        return float(sum(durations))
    loads = [0.0] * min(slots, len(durations))
    for d in sorted(durations, reverse=True):
        i = loads.index(min(loads))
        loads[i] += d
    return max(loads)


class SimClock:
    """Accumulates simulated elapsed time across phases.

    >>> clock = SimClock()
    >>> clock.parallel("scan", [1.0, 1.0, 1.0, 1.0], slots=4)
    >>> clock.serial("merge", 0.5)
    >>> clock.elapsed
    1.5
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.phases: list[Phase] = []

    def parallel(
        self,
        label: str,
        durations: Sequence[float],
        slots: int,
        meta: dict | None = None,
    ) -> None:
        span = makespan(durations, slots)
        self.phases.append(
            Phase(label, "parallel", tuple(durations), slots, span)
        )
        self.elapsed += span
        record_phase(label, "parallel", durations, slots, span, meta)

    def serial(
        self, label: str, duration: float, meta: dict | None = None
    ) -> None:
        self.phases.append(Phase(label, "serial", (duration,), 1, duration))
        self.elapsed += duration
        record_phase(label, "serial", (duration,), 1, duration, meta)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.phases.clear()

    def total_work(self) -> float:
        """CPU-seconds of actual work across all phases (independent of the
        degree of parallelism)."""
        return sum(sum(p.durations) for p in self.phases)

    def phase_elapsed(self, label_prefix: str) -> float:
        """Elapsed time attributed to phases whose label starts with the
        given prefix (e.g. ``"partime.step1"``)."""
        return sum(p.elapsed for p in self.phases if p.label.startswith(label_prefix))
