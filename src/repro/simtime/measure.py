"""The sanctioned wall-clock measurement primitive.

Every *measured* cost in this reproduction must flow through this module.
The DESIGN.md substitution only holds if all timing that feeds the
simulated clock is visible to the accounting layer: a stray
``time.perf_counter()`` call elsewhere in ``src/repro`` silently bypasses
:class:`~repro.simtime.clock.SimClock` and corrupts the speedup curves.
The ``PT002`` lint rule (:mod:`repro.analysis`) enforces this by flagging
direct ``time.time``/``time.perf_counter`` use outside ``simtime/`` and
``bench/``; call sites instead write::

    with measured() as sw:
        ... do the work ...
    return result, sw.elapsed

which keeps the measurement explicit, greppable and mockable in one place.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

#: The raw clock source.  Monotonic, highest available resolution.  Tests
#: may monkeypatch this to make measured durations deterministic.
clock_source: Callable[[], float] = time.perf_counter


class Stopwatch:
    """Result handle of :func:`measured`.

    ``elapsed`` is 0.0 until the ``with`` block exits, after which it holds
    the block's wall-clock duration in seconds.  :meth:`lap` reads the
    running time without stopping.
    """

    __slots__ = ("_t0", "elapsed")

    def __init__(self) -> None:
        self._t0 = clock_source()
        self.elapsed = 0.0

    def lap(self) -> float:
        """Seconds since the stopwatch started (without stopping it)."""
        return clock_source() - self._t0

    def _stop(self) -> None:
        self.elapsed = clock_source() - self._t0


@contextmanager
def measured(label: str | None = None) -> Iterator[Stopwatch]:
    """Measure the wall-clock duration of a ``with`` block.

    ``label`` optionally names the measurement for the observability
    layer: when a :mod:`repro.obs` tracer is active, a *measure* leaf
    span with this label and the measured duration is recorded under the
    innermost open span.  Unlabeled measurements (the default, and every
    per-task hot-path call) are never reported and cost nothing extra.

    >>> with measured() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """
    sw = Stopwatch()
    try:
        yield sw
    finally:
        sw._stop()
        if label is not None:
            # Imported lazily: repro.obs.tracer imports this module.
            from repro.obs.tracer import record_measure

            record_measure(label, sw.elapsed)


def timed_call(fn: Callable, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    with measured() as sw:
        result = fn(*args, **kwargs)
    return result, sw.elapsed
