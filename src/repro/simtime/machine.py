"""Machine descriptions for the simulated experiments.

The paper's testbed: four Intel Xeon E5-4650 sockets, eight 2.7 GHz cores
each (32 cores total), 1.5 TB DDR3 RAM, Linux.  :data:`PAPER_MACHINE`
mirrors that shape.  The NUMA parameters feed the optional remote-access
penalty: a worker assigned data outside its NUMA region is charged a
multiplicative slowdown on its scan work, letting the NUMA-awareness
discussion of Section 5.1 be exercised by tests and an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """A NUMA machine with ``sockets * cores_per_socket`` cores."""

    sockets: int = 4
    cores_per_socket: int = 8
    remote_access_penalty: float = 1.4

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def numa_region(self, core: int) -> int:
        """The socket a core belongs to (cores numbered socket-major)."""
        if not 0 <= core < self.cores:
            raise ValueError(f"core {core} out of range")
        return core // self.cores_per_socket

    def scan_penalty(self, core: int, data_region: int, numa_aware: bool) -> float:
        """Multiplier on scan work for a core touching data in
        ``data_region``.  NUMA-aware placement puts each partition in its
        worker's region, so the penalty is 1; naive placement pays the
        remote-access penalty whenever regions differ."""
        if numa_aware or self.numa_region(core) == data_region:
            return 1.0
        return self.remote_access_penalty


#: The evaluation machine of Section 5.1.
PAPER_MACHINE = MachineSpec(sockets=4, cores_per_socket=8)
