"""Pivot-dimension selection for multi-dimensional aggregation.

Section 3.4: *"For correctness, any time dimension can be used as pivot
dimension.  For performance, it is best to choose the time dimension with
the least distinct values (i.e., timestamps) because that will minimize the
size of the delta map generated in Step 1.  Typically, one of the business
time dimensions has the least distinct values and our implementation of
ParTime keeps statistics to pivot for the best possible time dimension."*

:class:`DimensionStatistics` are those statistics; :func:`choose_pivot`
implements the selection rule.  Statistics can be computed exactly or from
a sample (the production setting — a storage node would keep them
incrementally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.temporal.table import TableChunk, TemporalTable
from repro.temporal.timestamps import FOREVER


@dataclass(frozen=True)
class DimensionStatistics:
    """Distinct-timestamp statistics of one time dimension."""

    dim: str
    distinct_timestamps: int
    open_ended_fraction: float

    @classmethod
    def collect(
        cls, table_or_chunk: "TemporalTable | TableChunk", dim: str,
        sample: int | None = None,
    ) -> "DimensionStatistics":
        """Compute statistics, optionally from the first ``sample`` rows."""
        if isinstance(table_or_chunk, TemporalTable):
            starts = table_or_chunk.column(f"{dim}_start")
            ends = table_or_chunk.column(f"{dim}_end")
        else:
            starts = table_or_chunk.column(f"{dim}_start")
            ends = table_or_chunk.column(f"{dim}_end")
        if sample is not None:
            starts = starts[:sample]
            ends = ends[:sample]
        if len(starts) == 0:
            return cls(dim, 0, 0.0)
        finite_ends = ends[ends < FOREVER]
        distinct = len(np.unique(np.concatenate([starts, finite_ends])))
        open_frac = 1.0 - len(finite_ends) / len(ends)
        return cls(dim, distinct, open_frac)


def choose_pivot(
    stats: Sequence[DimensionStatistics], dims: Sequence[str] | None = None
) -> str:
    """The dimension with the fewest distinct timestamps.

    ``dims`` optionally restricts the choice to the query's varied
    dimensions.  Ties break toward the earlier dimension in ``stats``
    order, which puts business time ahead of transaction time under the
    schema convention.
    """
    candidates = [s for s in stats if dims is None or s.dim in dims]
    if not candidates:
        raise ValueError("no candidate pivot dimension")
    best = candidates[0]
    for s in candidates[1:]:
        if s.distinct_timestamps < best.distinct_timestamps:
            best = s
    return best.dim


def collect_statistics(
    table_or_chunk: "TemporalTable | TableChunk",
    dims: Sequence[str],
    sample: int | None = None,
) -> list[DimensionStatistics]:
    """Statistics for several dimensions at once."""
    return [
        DimensionStatistics.collect(table_or_chunk, d, sample=sample) for d in dims
    ]
