"""Choosing the degree of parallelism — the paper's future work #3.

Section 6: "Third, we would like to develop a cost model in order to
compute the optimal degree of parallelism for ParTime."  Section 5.4.2
shows why it matters: r4 wants all the cores it can get, while r2 is best
at a handful (Figure 19), and "the degree of parallelism needs to be
optimized and controlled with ParTime."

The model here is calibrated from two probe runs of the actual query
(degrees 1 and k) and captures the three cost terms those experiments
expose:

* ``scan_work / w``       — Step 1 parallelises perfectly;
* ``per_task_overhead``   — fixed cost per worker (dispatch, small-array
  constants), which is what flattens the speed-up curves;
* ``merge_base + merge_per_map * (w - 1)`` — Step 2 is sequential and its
  incremental consolidation grows with the number of delta maps, the r2
  degradation mechanism.

``optimal_workers`` then just evaluates the closed form over the feasible
degrees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partime import ParTime
from repro.core.query import TemporalAggregationQuery
from repro.simtime.executor import SerialExecutor
from repro.temporal.table import TemporalTable


@dataclass(frozen=True)
class CostTerms:
    """Calibrated coefficients of the parallelism cost model."""

    scan_work: float  # total Step 1 CPU-seconds (parallelisable)
    per_task_overhead: float  # fixed seconds per worker
    merge_base: float  # Step 2 seconds with one delta map
    merge_per_map: float  # extra Step 2 seconds per additional map

    def estimate(self, workers: int) -> float:
        """Predicted response time at the given degree of parallelism."""
        if workers < 1:
            raise ValueError("need at least one worker")
        step1 = self.scan_work / workers + self.per_task_overhead
        step2 = self.merge_base + self.merge_per_map * (workers - 1)
        return step1 + step2

    def estimate_parts(self, workers: int) -> tuple[float, float]:
        step1 = self.scan_work / workers + self.per_task_overhead
        step2 = self.merge_base + self.merge_per_map * (workers - 1)
        return step1, step2


class ParallelismOptimizer:
    """Calibrates :class:`CostTerms` by probing a query, then picks the
    optimal degree of parallelism."""

    def __init__(self, terms: CostTerms) -> None:
        self.terms = terms

    @classmethod
    def calibrate(
        cls,
        table: TemporalTable,
        query: TemporalAggregationQuery,
        probe_workers: int = 8,
        mode: str = "pure",
        repeats: int = 2,
    ) -> "ParallelismOptimizer":
        """Fit the model from two measured probe runs (1 and k workers).

        With ``s1(w) = scan/w + c`` and ``s2(w) = base + d*(w-1)``, the
        pairs of measurements at w=1 and w=k determine all four terms.
        """
        if probe_workers < 2:
            raise ValueError("the second probe needs >= 2 workers")

        def probe(workers: int) -> tuple[float, float]:
            best = (float("inf"), float("inf"))
            for _ in range(repeats):
                executor = SerialExecutor(slots=workers)
                ParTime(mode=mode).execute(
                    table, query, workers=workers, executor=executor
                )
                step1 = executor.clock.phase_elapsed("partime.step1")
                step2 = executor.clock.elapsed - step1
                if step1 + step2 < sum(best):
                    best = (step1, step2)
            return best

        s1_1, s2_1 = probe(1)
        s1_k, s2_k = probe(probe_workers)
        k = probe_workers
        # s1_1 = scan + c ; s1_k = scan/k + c
        scan = max(0.0, (s1_1 - s1_k) * k / (k - 1))
        overhead = max(0.0, s1_1 - scan)
        merge_base = s2_1
        merge_per_map = max(0.0, (s2_k - s2_1) / (k - 1))
        return cls(CostTerms(scan, overhead, merge_base, merge_per_map))

    def optimal_workers(self, max_workers: int) -> int:
        """The degree 1..max with the lowest predicted response time."""
        if max_workers < 1:
            raise ValueError("need at least one worker")
        best_w, best_t = 1, self.terms.estimate(1)
        for w in range(2, max_workers + 1):
            t = self.terms.estimate(w)
            if t < best_t:
                best_w, best_t = w, t
        return best_w

    def speedup_curve(self, max_workers: int) -> list[tuple[int, float]]:
        """(workers, predicted seconds) for plotting / reporting."""
        return [(w, self.terms.estimate(w)) for w in range(1, max_workers + 1)]
