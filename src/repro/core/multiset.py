"""An order-statistics multiset for non-incremental aggregates.

The merge phase of MIN/MAX/MEDIAN temporal aggregation (Section 3.2.3)
maintains the set of currently-valid values while sweeping over time; at
every interval boundary it must report an order statistic of that set.  The
paper suggests a priority queue; a priority queue only serves one end, so we
use the classic *sorted list of blocks* structure (as popularized by the
``sortedcontainers`` library, reimplemented here from scratch): a list of
sorted blocks of bounded size, giving O(√n)-ish amortized add/remove and
fast ``min`` / ``max`` / ``kth``.
"""

from __future__ import annotations

import bisect
from typing import Iterator

_TARGET_BLOCK = 512


class SortedMultiset:
    """A multiset of comparable values with order statistics.

    >>> ms = SortedMultiset([5, 1, 3, 3])
    >>> ms.min(), ms.max(), ms.kth(1), len(ms)
    (1, 5, 3, 4)
    >>> ms.remove(3); sorted(ms)
    [1, 3, 5]
    """

    __slots__ = ("_blocks", "_len")

    def __init__(self, values=None) -> None:
        self._blocks: list[list] = []
        self._len = 0
        if values:
            data = sorted(values)
            self._blocks = [
                data[i : i + _TARGET_BLOCK] for i in range(0, len(data), _TARGET_BLOCK)
            ]
            self._len = len(data)

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator:
        for block in self._blocks:
            yield from block

    def __contains__(self, value) -> bool:
        bi = self._find_block(value)
        if bi >= len(self._blocks):
            return False
        block = self._blocks[bi]
        i = bisect.bisect_left(block, value)
        return i < len(block) and block[i] == value

    def _find_block(self, value) -> int:
        """Index of the first block whose last element is >= value."""
        lo, hi = 0, len(self._blocks)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._blocks[mid][-1] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def add(self, value) -> None:
        if not self._blocks:
            self._blocks.append([value])
            self._len = 1
            return
        bi = min(self._find_block(value), len(self._blocks) - 1)
        block = self._blocks[bi]
        bisect.insort(block, value)
        self._len += 1
        if len(block) > 2 * _TARGET_BLOCK:
            half = len(block) // 2
            self._blocks[bi : bi + 1] = [block[:half], block[half:]]

    def remove(self, value) -> None:
        """Remove one occurrence; raises ``KeyError`` if absent."""
        bi = self._find_block(value)
        if bi < len(self._blocks):
            block = self._blocks[bi]
            i = bisect.bisect_left(block, value)
            if i < len(block) and block[i] == value:
                block.pop(i)
                self._len -= 1
                if not block:
                    self._blocks.pop(bi)
                return
        raise KeyError(value)

    def discard(self, value) -> bool:
        """Remove one occurrence if present; returns whether it was."""
        try:
            self.remove(value)
        except KeyError:
            return False
        return True

    def min(self):
        if not self._len:
            raise KeyError("empty multiset")
        return self._blocks[0][0]

    def max(self):
        if not self._len:
            raise KeyError("empty multiset")
        return self._blocks[-1][-1]

    def kth(self, k: int):
        """The element of rank ``k`` (0-based) in sorted order."""
        if not 0 <= k < self._len:
            raise IndexError(k)
        for block in self._blocks:
            if k < len(block):
                return block[k]
            k -= len(block)
        raise AssertionError("rank accounting is broken")
