"""Delta maps — the central data structure of ParTime (Section 3.2.1).

A delta map records, for every point in time, the combined *delta* of all
records that became valid or invalid at that point.  It is ordered by
timestamp so that Step 2 can merge many of them like the merge phase of a
sort-based GROUP BY.

Several backends are provided; the paper used B-trees and notes that
"other data structures can be used, too, and may give even better
performance" — the alternatives here back the delta-map ablation bench:

* :class:`BTreeDeltaMap` — the paper's choice, built on
  :class:`repro.btree.BTree` with the special ``dm_put``;
* :class:`HashDeltaMap` — hash consolidation, sorted once at iteration;
* :class:`ColumnarDeltaMap` — immutable, built in one vectorized pass
  (stable argsort + ``np.add.reduceat`` via :mod:`repro.core.kernels`),
  the NumPy stand-in for a tight C++ loop; ``SortedArrayDeltaMap`` is a
  backwards-compatible alias;
* :class:`ArrayDeltaMap` — the fixed-size array of windowed queries
  (Figure 9), indexed by window bucket rather than raw timestamp.

All mutable maps share the :meth:`DeltaMap.put` contract: deltas arriving
at the same key are consolidated immediately with the aggregate's
``combine`` (the ``<t7,-10k>`` + ``<t7,+15k>`` → ``<t7,+5k>`` example of
Section 3.2.1).
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.btree import BTree
from repro.core import kernels
from repro.core.aggregates import AggregateFunction


class DeltaMap:
    """Ordered mapping from key (timestamp or composite) to delta."""

    def __init__(self, aggregate: AggregateFunction) -> None:
        self.aggregate = aggregate

    def put(self, key, delta) -> None:
        raise NotImplementedError

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, delta) entries in ascending key order."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self):
        return self.items()

    def add_record(self, valid_from: int, valid_to: int, value, forever: int) -> None:
        """Contribute one record: ``+value`` at its start and, unless it is
        still valid, ``-value`` at its end (Figure 7).

        Zero-width records (``valid_from >= valid_to``) were never valid
        at any point in time and contribute nothing — uniformly across
        every backend, matching the vectorized Step-1 ``starts < ends``
        liveness filter.
        """
        if valid_from >= valid_to:
            return
        agg = self.aggregate
        self.put(valid_from, agg.make_delta(value, +1))
        if valid_to < forever:
            self.put(valid_to, agg.make_delta(value, -1))


class BTreeDeltaMap(DeltaMap):
    """The paper's delta map: a B-tree with merge-on-insert."""

    def __init__(self, aggregate: AggregateFunction, min_degree: int = 16) -> None:
        super().__init__(aggregate)
        self._tree = BTree(min_degree=min_degree)

    def put(self, key, delta) -> None:
        self._tree.dm_put(key, delta, combine=self.aggregate.combine)

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self._tree.items()

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def put_count(self) -> int:
        return self._tree.put_count


class HashDeltaMap(DeltaMap):
    """Consolidates in a hash table; pays one sort at iteration time."""

    def __init__(self, aggregate: AggregateFunction) -> None:
        super().__init__(aggregate)
        self._entries: dict[Any, Any] = {}

    def put(self, key, delta) -> None:
        combine = self.aggregate.combine
        old = self._entries.get(key)
        self._entries[key] = delta if old is None else combine(old, delta)

    def items(self) -> Iterator[tuple[Any, Any]]:
        yield from sorted(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)


class ColumnarDeltaMap(DeltaMap):
    """Immutable columnar delta map produced by the Step-1 fast paths.

    Holds parallel arrays: unique sorted timestamps plus one array per
    delta component.  Two kinds share the representation:

    * ``"additive"`` — components ``(value_sums, count_sums)`` for the
      columnar aggregates (SUM / COUNT / AVG); built with
      :func:`repro.core.kernels.consolidate_additive`.
    * ``"extreme"`` — components ``(extremes, count_sums)`` for MIN/MAX
      over an *append-only* interval (no record expires inside the query
      window), where a per-timestamp ``min``/``max`` plus a running
      ``np.minimum``/``np.maximum.accumulate`` is exact.

    The two contiguous-ish component arrays are what make the map cheap
    to ship: :func:`repro.simtime.shm.export_delta_map` maps them into a
    shared-memory block as zero-copy views, and pickling goes through a
    compact ``(aggregate name, kind, arrays)`` reduce instead of the
    generic object protocol.
    """

    KIND_ADDITIVE = "additive"
    KIND_EXTREME = "extreme"

    def __init__(
        self,
        aggregate: AggregateFunction,
        keys: np.ndarray,
        components: tuple[np.ndarray, ...],
        kind: str = KIND_ADDITIVE,
    ) -> None:
        super().__init__(aggregate)
        self._keys = keys
        self._components = components
        self.kind = kind

    @classmethod
    def from_events(
        cls,
        aggregate: AggregateFunction,
        timestamps: np.ndarray,
        values: np.ndarray,
        counts: np.ndarray,
    ) -> "ColumnarDeltaMap":
        """Consolidate raw per-record additive events in one vectorized
        pass (stable argsort + ``np.add.reduceat``)."""
        keys, val_sum, cnt_sum = kernels.consolidate_additive(
            timestamps, values, counts
        )
        # Entries that consolidated to the null delta are no-ops for the
        # merge; keeping them would only manufacture interval seams that
        # other evaluation paths (which never generated the cancelling
        # events in the first place) do not have.
        live = (val_sum != 0.0) | (cnt_sum != 0)
        return cls(aggregate, keys[live], (val_sum[live], cnt_sum[live]))

    @classmethod
    def from_extreme_events(
        cls,
        aggregate: AggregateFunction,
        timestamps: np.ndarray,
        values: np.ndarray,
    ) -> "ColumnarDeltaMap":
        """Build an ``"extreme"``-kind map for MIN/MAX from start events.

        Callers must have certified the stream append-only within the
        query interval (no end events); every event carries count +1.
        """
        ufunc = np.minimum if aggregate.name == "min" else np.maximum
        keys, extremes, cnt_sum = kernels.consolidate_extreme(
            timestamps, values, np.ones(len(timestamps), dtype=np.int64), ufunc
        )
        return cls(aggregate, keys, (extremes, cnt_sum), kind=cls.KIND_EXTREME)

    def put(self, key, delta) -> None:
        raise TypeError("ColumnarDeltaMap is immutable; build from events")

    def items(self) -> Iterator[tuple[Any, Any]]:
        vals, cnts = self._components
        if self.kind == self.KIND_EXTREME:
            # Scalar-compatible view: the per-timestamp extreme as a
            # value-set delta.  Suppressed same-timestamp values are all
            # dominated by the kept extreme and — append-only — never
            # removed later, so MIN/MAX over the reduced set is exact;
            # the count collapses to "nonzero", which is all drop_empty
            # ever asks of an append-only stream.
            for i in range(len(self._keys)):
                yield int(self._keys[i]), ((vals[i].item(),), ())
            return
        for i in range(len(self._keys)):
            yield int(self._keys[i]), (vals[i].item(), int(cnts[i]))

    def __len__(self) -> int:
        return len(self._keys)

    def __reduce__(self):
        # Compact pickle: registry name + kind + the raw arrays.  Workers
        # reduce inside the shm mapping window, so views materialise into
        # plain arrays here instead of dragging an exported block along.
        return (
            _rebuild_columnar,
            (
                self.aggregate.name,
                self.kind,
                np.ascontiguousarray(self._keys),
                tuple(np.ascontiguousarray(c) for c in self._components),
            ),
        )

    @property
    def arrays(self) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """The backing arrays (used by the vectorized merge)."""
        return self._keys, self._components

    @property
    def nbytes(self) -> int:
        """Payload size of the backing arrays (shm transport sizing)."""
        return self._keys.nbytes + sum(c.nbytes for c in self._components)


def _rebuild_columnar(agg_name, kind, keys, components):
    from repro.core.aggregates import get_aggregate

    return ColumnarDeltaMap(get_aggregate(agg_name), keys, components, kind=kind)


#: Backwards-compatible alias — the vectorized Step-1 map has been
#: columnar-sorted-array shaped since PR 0; only the name grew up.
SortedArrayDeltaMap = ColumnarDeltaMap


class ArrayDeltaMap(DeltaMap):
    """Fixed-size array delta map for windowed queries (Figure 9).

    Keys are *bucket indices* of a :class:`~repro.core.window.WindowSpec`;
    the caller translates timestamps to buckets (``dm[validFrom] += value``
    in the paper's pseudo-code).  Entries at index ``count`` (beyond the
    window) are accepted and ignored, which is how records that never
    expire inside the window fall out naturally.
    """

    def __init__(self, aggregate: AggregateFunction, size: int) -> None:
        super().__init__(aggregate)
        self._size = size
        self._slots: list[Any] = [None] * (size + 1)

    def put(self, key: int, delta) -> None:
        old = self._slots[key]
        self._slots[key] = delta if old is None else self.aggregate.combine(old, delta)

    def items(self) -> Iterator[tuple[int, Any]]:
        for i in range(self._size):
            if self._slots[i] is not None:
                yield i, self._slots[i]

    def __len__(self) -> int:
        return sum(1 for i in range(self._size) if self._slots[i] is not None)

    @property
    def size(self) -> int:
        return self._size


class MultiDimDeltaMap(DeltaMap):
    """Delta map for multi-dimensional aggregation (Figure 10).

    Keys are tuples ``(nonpivot_0_start, nonpivot_0_end, ..., pivot_ts)``:
    the validity intervals in every non-pivot dimension followed by the
    point event on the pivot dimension (the paper's convention of keeping
    the pivot last).  Backed by a B-tree so Step 2 can stream entries in
    pivot-compatible order — but note the *pivot* must sort first for the
    sweep, so the key stored internally is reordered to
    ``(pivot_ts, nonpivot_intervals...)``.
    """

    def __init__(self, aggregate: AggregateFunction, min_degree: int = 16) -> None:
        super().__init__(aggregate)
        self._tree = BTree(min_degree=min_degree)

    def put_event(
        self, pivot_ts: int, nonpivot_intervals: tuple, delta
    ) -> None:
        key = (pivot_ts,) + nonpivot_intervals
        self._tree.dm_put(key, delta, combine=self.aggregate.combine)

    def put(self, key, delta) -> None:
        # key arrives in paper order (intervals..., pivot); reorder.
        self.put_event(key[-1], tuple(key[:-1]), delta)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Entries ordered by pivot timestamp first."""
        return self._tree.items()

    def __len__(self) -> int:
        return len(self._tree)
