"""Aggregate functions for temporal aggregation.

Section 3.2.3 distinguishes two families:

* *incremental* aggregates (SUM, COUNT, AVG, PRODUCT) — the delta map keeps
  one small combined delta per timestamp, and a record's effect can be
  *removed* again when its validity ends;
* *non-incremental* aggregates (MIN, MAX, MEDIAN) — "it is not sufficient to
  keep a single aggregate value ...  Instead, the delta map keeps the set of
  values that became valid / invalid at each point in time.  The merge step
  then involves keeping a priority queue" — here an order-statistics
  multiset, which serves MIN, MAX and MEDIAN uniformly.

Every aggregate implements the same small protocol, so Step 1 and Step 2 of
ParTime are generic over the aggregate:

``make_delta(value, sign)``
    The delta-map entry a record contributes at one timestamp.
``combine(d1, d2)``
    Consolidation of two deltas at the same timestamp (the B-tree's
    ``dm_put`` combine function).
``negate(d)``
    Inverse of a delta — needed by the multi-dimensional merge, where an
    interval-valued delta is swept as ``+d`` at its start and ``-d`` at
    its end.
``identity() / apply(acc, d) / finalize(acc) / count(acc)``
    The running accumulator of the merge phase.

All incremental accumulators carry the count of active records alongside
the aggregate, so the merge can distinguish "sum is 0" from "no active
records" and callers can drop empty intervals if they wish.
"""

from __future__ import annotations

from repro.core.multiset import SortedMultiset


class AggregateFunction:
    """Base protocol; see module docstring for the contract."""

    #: Registry name, e.g. ``"sum"``.
    name: str = "?"
    #: Whether a record's effect can be *removed* again (Section 3.2.3).
    incremental: bool = True
    #: Whether deltas are additive ``(value, count)`` pairs, i.e. whether
    #: the columnar kernels (argsort + ``np.add.reduceat`` + ``np.cumsum``)
    #: compute this aggregate exactly.  PRODUCT is incremental but *not*
    #: columnar: its deltas multiply, so summing their components would be
    #: silently wrong — gate array fast paths on this flag, never on
    #: ``incremental``.
    columnar: bool = False

    # -- delta-map side -------------------------------------------------
    def make_delta(self, value, sign: int):
        raise NotImplementedError

    def combine(self, d1, d2):
        raise NotImplementedError

    def negate(self, d):
        raise NotImplementedError

    def is_null_delta(self, d) -> bool:
        """Whether ``d`` has no effect (entries collapse away entirely)."""
        raise NotImplementedError

    # -- merge side ------------------------------------------------------
    def identity(self):
        raise NotImplementedError

    def apply(self, acc, d):
        raise NotImplementedError

    def finalize(self, acc):
        raise NotImplementedError

    def count(self, acc) -> int:
        """Number of currently active records in the accumulator."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<aggregate {self.name}>"


class _SumLike(AggregateFunction):
    """Shared machinery for SUM / COUNT / AVG: deltas are ``(value, count)``
    pairs under componentwise addition."""

    columnar = True

    def make_delta(self, value, sign: int):
        return (sign * value, sign)

    def combine(self, d1, d2):
        return (d1[0] + d2[0], d1[1] + d2[1])

    def negate(self, d):
        return (-d[0], -d[1])

    def is_null_delta(self, d) -> bool:
        return d[0] == 0 and d[1] == 0

    def identity(self):
        return (0, 0)

    def apply(self, acc, d):
        return (acc[0] + d[0], acc[1] + d[1])

    def count(self, acc) -> int:
        return acc[1]


class Sum(_SumLike):
    """``SUM(column)`` over time — the paper's running example."""

    name = "sum"

    def finalize(self, acc):
        return acc[0]


class Count(_SumLike):
    """``COUNT(*)`` over time (e.g. number of open flights, query ta1)."""

    name = "count"

    def make_delta(self, value, sign: int):
        return (sign, sign)

    def finalize(self, acc):
        return acc[1]


class Avg(_SumLike):
    """``AVG(column)`` over time; ``None`` where no record is active."""

    name = "avg"

    def finalize(self, acc):
        if acc[1] == 0:
            return None
        return acc[0] / acc[1]


class Product(AggregateFunction):
    """``PRODUCT(column)`` — incremental via division, with explicit zero
    bookkeeping so that a zero-valued record can be removed again.

    Deltas are ``(factor, zero_count, count)``: multiply by ``factor``,
    adjust the number of active zeros, adjust the active-record count.
    """

    name = "product"

    def make_delta(self, value, sign: int):
        value = float(value)
        if value == 0.0:
            return (1.0, sign, sign)
        if sign > 0:
            return (value, 0, 1)
        return (1.0 / value, 0, -1)

    def combine(self, d1, d2):
        return (d1[0] * d2[0], d1[1] + d2[1], d1[2] + d2[2])

    def negate(self, d):
        return (1.0 / d[0], -d[1], -d[2])

    def is_null_delta(self, d) -> bool:
        return d[0] == 1.0 and d[1] == 0 and d[2] == 0

    def identity(self):
        return (1.0, 0, 0)

    def apply(self, acc, d):
        return (acc[0] * d[0], acc[1] + d[1], acc[2] + d[2])

    def finalize(self, acc):
        if acc[2] == 0:
            return None
        if acc[1] > 0:
            return 0.0
        return acc[0]

    def count(self, acc) -> int:
        return acc[2]


class _ValueSetAggregate(AggregateFunction):
    """Shared machinery for MIN / MAX / MEDIAN.

    Deltas are ``(added, removed)`` tuples of value tuples; the accumulator
    is a :class:`SortedMultiset` providing order statistics in O(log n).
    """

    incremental = False

    def make_delta(self, value, sign: int):
        if sign > 0:
            return ((value,), ())
        return ((), (value,))

    def combine(self, d1, d2):
        return (d1[0] + d2[0], d1[1] + d2[1])

    def negate(self, d):
        return (d[1], d[0])

    def is_null_delta(self, d) -> bool:
        return not d[0] and not d[1]

    def identity(self):
        return SortedMultiset()

    def apply(self, acc, d):
        added, removed = d
        for v in added:
            acc.add(v)
        for v in removed:
            acc.remove(v)
        return acc

    def count(self, acc) -> int:
        return len(acc)


class Min(_ValueSetAggregate):
    name = "min"

    def finalize(self, acc):
        return acc.min() if len(acc) else None


class Max(_ValueSetAggregate):
    name = "max"

    def finalize(self, acc):
        return acc.max() if len(acc) else None


class Median(_ValueSetAggregate):
    """Lower median of the active values (the element at rank ⌊(n-1)/2⌋)."""

    name = "median"

    def finalize(self, acc):
        n = len(acc)
        if n == 0:
            return None
        return acc.kth((n - 1) // 2)


_REGISTRY: dict[str, AggregateFunction] = {}


def register(agg: AggregateFunction) -> AggregateFunction:
    _REGISTRY[agg.name] = agg
    return agg


SUM = register(Sum())
COUNT = register(Count())
AVG = register(Avg())
PRODUCT = register(Product())
MIN = register(Min())
MAX = register(Max())
MEDIAN = register(Median())


def get_aggregate(name_or_agg: "str | AggregateFunction") -> AggregateFunction:
    """Look up an aggregate by name, passing instances through.

    >>> get_aggregate("sum") is SUM
    True
    """
    if isinstance(name_or_agg, AggregateFunction):
        return name_or_agg
    try:
        return _REGISTRY[name_or_agg.lower()]
    except KeyError:
        raise KeyError(
            f"unknown aggregate {name_or_agg!r}; known: {sorted(_REGISTRY)}"
        ) from None
