"""ParTime — the paper's primary contribution.

Public surface:

* :class:`~repro.core.partime.ParTime` — the two-step operator;
* :class:`~repro.core.query.TemporalAggregationQuery` — query spec;
* :class:`~repro.core.window.WindowSpec` — windowed-query grids;
* :class:`~repro.core.result.TemporalAggregationResult` — results;
* the aggregate registry (:func:`~repro.core.aggregates.get_aggregate`,
  ``SUM``, ``COUNT``, ``AVG``, ``PRODUCT``, ``MIN``, ``MAX``, ``MEDIAN``).

Lower-level building blocks (delta maps, Step 1 generators, Step 2 merges,
pivot statistics) live in their own modules and are re-exported for
advanced use — they are what the Crescando substrate embeds directly.
"""

from repro.core.aggregates import (
    AVG,
    COUNT,
    MAX,
    MEDIAN,
    MIN,
    PRODUCT,
    SUM,
    AggregateFunction,
    get_aggregate,
)
from repro.core.deltamap import (
    ArrayDeltaMap,
    BTreeDeltaMap,
    ColumnarDeltaMap,
    DeltaMap,
    HashDeltaMap,
    MultiDimDeltaMap,
    SortedArrayDeltaMap,
)
from repro.core.joins import JoinRow, ParTimeJoin, temporal_join_reference
from repro.core.optimizer import CostTerms, ParallelismOptimizer
from repro.core.partime import ParTime, ParTimeStats
from repro.core.pivot import DimensionStatistics, choose_pivot, collect_statistics
from repro.core.query import TemporalAggregationQuery
from repro.core.result import ResultRow, TemporalAggregationResult
from repro.core.step1 import (
    DELTA_MAP_MODES,
    generate_delta_map,
    generate_multidim_delta_map,
    generate_windowed_delta_map,
    resolve_deltamap,
)
from repro.core.step2 import (
    consolidate_pair,
    merge_delta_maps,
    merge_multidim_maps,
    merge_sorted_arrays,
    merge_window_maps,
    parallel_merge_plan,
    vectorized_mergeable,
)
from repro.core.window import WindowSpec

__all__ = [
    "ParTime",
    "ParTimeStats",
    "ParTimeJoin",
    "JoinRow",
    "temporal_join_reference",
    "CostTerms",
    "ParallelismOptimizer",
    "TemporalAggregationQuery",
    "TemporalAggregationResult",
    "ResultRow",
    "WindowSpec",
    "AggregateFunction",
    "get_aggregate",
    "SUM",
    "COUNT",
    "AVG",
    "PRODUCT",
    "MIN",
    "MAX",
    "MEDIAN",
    "DeltaMap",
    "BTreeDeltaMap",
    "HashDeltaMap",
    "ColumnarDeltaMap",
    "SortedArrayDeltaMap",
    "ArrayDeltaMap",
    "MultiDimDeltaMap",
    "DELTA_MAP_MODES",
    "resolve_deltamap",
    "vectorized_mergeable",
    "generate_delta_map",
    "generate_windowed_delta_map",
    "generate_multidim_delta_map",
    "merge_delta_maps",
    "merge_sorted_arrays",
    "merge_window_maps",
    "merge_multidim_maps",
    "consolidate_pair",
    "parallel_merge_plan",
    "DimensionStatistics",
    "choose_pivot",
    "collect_statistics",
]
