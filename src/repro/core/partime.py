"""The ParTime operator: partition → Step 1 in parallel → Step 2 merge.

:class:`ParTime` is the standalone form of the algorithm (Section 3): give
it a table, a query and a degree of parallelism and it computes the full
temporal aggregation.  Inside the Crescando substrate the same Step 1 runs
embedded in each storage node's shared scan and the same Step 2 runs on an
aggregator node (Section 4); this class is the form used by examples, the
response-time benchmarks and the correctness tests.

The ``executor`` argument abstracts how the parallel phase is carried out
and how its cost is accounted; see :mod:`repro.simtime`.  By default a
:class:`~repro.simtime.executor.SerialExecutor` runs tasks one after
another while *accounting* them as parallel — the simulated-multicore
substitution described in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.deltamap import SortedArrayDeltaMap
from repro.core.pivot import choose_pivot, collect_statistics
from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.core.step1 import (
    generate_delta_map,
    generate_multidim_delta_map,
    generate_windowed_delta_map,
)
from repro.core.step2 import (
    consolidate_pair,
    merge_delta_maps,
    merge_multidim_maps,
    merge_sorted_arrays,
    merge_window_maps,
    parallel_merge_plan,
)
from repro.obs.tracer import span
from repro.simtime.executor import Executor, SerialExecutor
from repro.temporal.table import TableChunk, TemporalTable
from repro.temporal.timestamps import FOREVER


@dataclass
class ParTimeStats:
    """Execution statistics of one ParTime run (for benches and tests)."""

    num_partitions: int = 0
    records_scanned: int = 0
    delta_entries: int = 0
    result_rows: int = 0
    pivot: str | None = None


class ParTime:
    """The ParTime temporal aggregation operator.

    Parameters
    ----------
    mode:
        ``"vectorized"`` (NumPy fast path where applicable) or ``"pure"``
        (the paper's per-record pseudo-code).
    backend:
        Delta-map backend for the pure path: ``"btree"`` (the paper) or
        ``"hash"`` (ablation alternative).
    parallel_step2:
        Use the multi-level parallel merge (the paper's future-work
        extension) instead of the sequential Step 2.
    """

    def __init__(
        self,
        mode: str = "vectorized",
        backend: str = "btree",
        parallel_step2: bool = False,
    ) -> None:
        self.mode = mode
        self.backend = backend
        self.parallel_step2 = parallel_step2
        self.last_stats = ParTimeStats()

    # ------------------------------------------------------------------ API

    def execute(
        self,
        table: TemporalTable,
        query: TemporalAggregationQuery,
        workers: int = 1,
        executor: Executor | None = None,
    ) -> TemporalAggregationResult:
        """Run the full two-step algorithm with ``workers`` partitions."""
        executor = executor or SerialExecutor()
        chunks = table.chunks(max(1, workers))
        return self.execute_on_chunks(table, chunks, query, executor)

    def execute_on_chunks(
        self,
        table: TemporalTable,
        chunks: Sequence[TableChunk],
        query: TemporalAggregationQuery,
        executor: Executor | None = None,
    ) -> TemporalAggregationResult:
        """Run ParTime over pre-partitioned chunks (what storage nodes do)."""
        executor = executor or SerialExecutor()
        self.last_stats = ParTimeStats(
            num_partitions=len(chunks),
            records_scanned=sum(len(c) for c in chunks),
        )
        with span(
            "partime.query",
            kind="query",
            partitions=len(chunks),
            aggregate=query.aggregate,
            mode=self.mode,
        ):
            if query.is_windowed:
                return self._execute_windowed(chunks, query, executor)
            if query.is_multidim:
                return self._execute_multidim(table, chunks, query, executor)
            return self._execute_onedim(chunks, query, executor)

    # ----------------------------------------------------------- internals

    def _until(self, query: TemporalAggregationQuery, dim: str) -> int:
        iv = query.interval_of(dim)
        return FOREVER if iv is None else iv.end

    def _execute_onedim(
        self,
        chunks: Sequence[TableChunk],
        query: TemporalAggregationQuery,
        executor: Executor,
    ) -> TemporalAggregationResult:
        dim = query.varied_dims[0]
        agg = query.aggregate_fn

        def step1(chunk: TableChunk):
            return generate_delta_map(
                chunk,
                query.value_column,
                dim,
                agg,
                predicate=query.predicate,
                query_interval=query.interval_of(dim),
                mode=self.mode,
                backend=self.backend,
            )

        maps = executor.map_parallel(step1, chunks, label="partime.step1")
        self.last_stats.delta_entries = sum(len(m) for m in maps)
        until = self._until(query, dim)

        if self.parallel_step2 and len(maps) > 1:
            maps = self._consolidate_parallel(maps, agg, executor)

        def step2():
            if all(isinstance(m, SortedArrayDeltaMap) for m in maps):
                return merge_sorted_arrays(
                    maps, agg, until=until, drop_empty=query.drop_empty
                )
            return merge_delta_maps(
                maps, agg, until=until, drop_empty=query.drop_empty
            )

        pairs = executor.run_serial(step2, label="partime.step2")
        self.last_stats.result_rows = len(pairs)
        return TemporalAggregationResult.from_pairs(
            dim, pairs, aggregate_name=agg.name
        )

    def _execute_windowed(
        self,
        chunks: Sequence[TableChunk],
        query: TemporalAggregationQuery,
        executor: Executor,
    ) -> TemporalAggregationResult:
        dim = query.varied_dims[0]
        agg = query.aggregate_fn
        window = query.window
        assert window is not None

        def step1(chunk: TableChunk):
            return generate_windowed_delta_map(
                chunk,
                query.value_column,
                dim,
                window,
                agg,
                predicate=query.predicate,
                mode=self.mode if agg.incremental else "pure",
            )

        maps = executor.map_parallel(step1, chunks, label="partime.step1w")

        def step2():
            return merge_window_maps(
                maps, window, agg, drop_empty=query.drop_empty
            )

        points = executor.run_serial(step2, label="partime.step2w")
        self.last_stats.result_rows = len(points)
        return TemporalAggregationResult.from_points(
            dim, window.stride, points, aggregate_name=agg.name
        )

    def _execute_multidim(
        self,
        table: TemporalTable,
        chunks: Sequence[TableChunk],
        query: TemporalAggregationQuery,
        executor: Executor,
    ) -> TemporalAggregationResult:
        agg = query.aggregate_fn
        pivot = query.pivot
        if pivot is None:
            stats = collect_statistics(table, query.varied_dims)
            pivot = choose_pivot(stats, query.varied_dims)
        self.last_stats.pivot = pivot
        nonpivot = [d for d in query.varied_dims if d != pivot]

        def step1(chunk: TableChunk):
            return generate_multidim_delta_map(
                chunk,
                query.value_column,
                query.varied_dims,
                pivot,
                agg,
                predicate=query.predicate,
                query_intervals=query.query_intervals or None,
            )

        maps = executor.map_parallel(step1, chunks, label="partime.step1md")
        self.last_stats.delta_entries = sum(len(m) for m in maps)

        if self.parallel_step2 and len(maps) > 1:
            maps = self._consolidate_parallel(maps, agg, executor)

        def step2():
            return merge_multidim_maps(
                maps,
                agg,
                num_dims=len(query.varied_dims),
                pivot_until=self._until(query, pivot),
                nonpivot_untils=[self._until(query, d) for d in nonpivot],
            )

        raw_rows = executor.run_serial(step2, label="partime.step2md")
        self.last_stats.result_rows = len(raw_rows)

        # Raw rows order intervals (nonpivot..., pivot); reorder to the
        # query's declared dimension order.
        raw_order = nonpivot + [pivot]
        perm = [raw_order.index(d) for d in query.varied_dims]
        rows = [
            (tuple(ivs[i] for i in perm), value) for ivs, value in raw_rows
        ]
        return TemporalAggregationResult.from_multidim(
            query.varied_dims, rows, aggregate_name=agg.name
        )

    def _consolidate_parallel(self, maps, agg, executor: Executor):
        """Multi-level pairwise consolidation (parallel Step 2 extension)."""
        maps = list(maps)
        for level in parallel_merge_plan(maps):
            def merge_pair(pair, _maps=maps):
                i, j = pair
                return consolidate_pair(_maps[i], _maps[j], agg)

            merged = executor.map_parallel(
                merge_pair, level, label="partime.step2.level"
            )
            leftover = [maps[-1]] if len(maps) % 2 else []
            maps = list(merged) + leftover
        return maps
