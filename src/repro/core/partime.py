"""The ParTime operator: partition → Step 1 in parallel → Step 2 merge.

:class:`ParTime` is the standalone form of the algorithm (Section 3): give
it a table, a query and a degree of parallelism and it computes the full
temporal aggregation.  Inside the Crescando substrate the same Step 1 runs
embedded in each storage node's shared scan and the same Step 2 runs on an
aggregator node (Section 4); this class is the form used by examples, the
response-time benchmarks and the correctness tests.

The ``executor`` argument abstracts how the parallel phase is carried out
and how its cost is accounted; see :mod:`repro.simtime`.  By default a
:class:`~repro.simtime.executor.SerialExecutor` runs tasks one after
another while *accounting* them as parallel — the simulated-multicore
substitution described in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.pivot import choose_pivot, collect_statistics
from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.core.step1 import (
    generate_delta_map,
    generate_multidim_delta_map,
    generate_windowed_delta_map,
    resolve_deltamap,
)
from repro.core.step2 import (
    consolidate_pair,
    merge_delta_maps,
    merge_multidim_maps,
    merge_sorted_arrays,
    merge_window_maps,
    parallel_merge_plan,
    vectorized_mergeable,
)
from repro.obs.metrics import metrics
from repro.obs.tracer import span
from repro.simtime.executor import Executor, SerialExecutor
from repro.simtime.measure import measured
from repro.temporal.table import TableChunk, TemporalTable
from repro.temporal.timestamps import FOREVER


@dataclass
class ParTimeStats:
    """Execution statistics of one ParTime run (for benches and tests)."""

    num_partitions: int = 0
    records_scanned: int = 0
    delta_entries: int = 0
    result_rows: int = 0
    pivot: str | None = None


# ---------------------------------------------------------------------------
# Step 1 task payloads
# ---------------------------------------------------------------------------
#
# Step 1 tasks are frozen-dataclass *callables* rather than closures: a
# closure cannot cross a process boundary, while a dataclass instance
# whose fields are all picklable (queries, predicates and aggregates are
# frozen dataclasses / stateless registry singletons) pickles in a few
# hundred bytes.  This is what lets the same ``executor.map_parallel``
# call run unchanged under the serial, thread and process backends — the
# chunk itself travels via shared memory (see repro.simtime.shm), the
# task spec via pickle.


@dataclass(frozen=True)
class _Step1Task:
    """One-dimensional Step 1 over one chunk (Figure 7)."""

    query: TemporalAggregationQuery
    dim: str
    mode: str
    backend: str
    deltamap: str | None = None

    def __call__(self, chunk: TableChunk):
        # The labelled ``measured`` adds a sub-step leaf to the *task's*
        # span capture (a no-op when tracing is off): executors graft it
        # under the dispatching phase, so Chrome traces show what each
        # worker actually ran — including across the process boundary.
        with measured("partime.step1.kernel"):
            return generate_delta_map(
                chunk,
                self.query.value_column,
                self.dim,
                self.query.aggregate_fn,
                predicate=self.query.predicate,
                query_interval=self.query.interval_of(self.dim),
                mode=self.mode,
                backend=self.backend,
                deltamap=self.deltamap,
            )


@dataclass(frozen=True)
class _Step1WindowTask:
    """Windowed Step 1 over one chunk (Figure 9)."""

    query: TemporalAggregationQuery
    dim: str
    mode: str

    def __call__(self, chunk: TableChunk):
        with measured("partime.step1w.kernel"):
            return generate_windowed_delta_map(
                chunk,
                self.query.value_column,
                self.dim,
                self.query.window,
                self.query.aggregate_fn,
                predicate=self.query.predicate,
                mode=self.mode,
            )


@dataclass(frozen=True)
class _Step1MultiDimTask:
    """Multi-dimensional Step 1 over one chunk (Figure 10)."""

    query: TemporalAggregationQuery
    pivot: str

    def __call__(self, chunk: TableChunk):
        with measured("partime.step1md.kernel"):
            return generate_multidim_delta_map(
                chunk,
                self.query.value_column,
                self.query.varied_dims,
                self.pivot,
                self.query.aggregate_fn,
                predicate=self.query.predicate,
                query_intervals=self.query.query_intervals or None,
            )


@dataclass(frozen=True)
class _ConsolidateTask:
    """One pairwise Step 2 consolidation (parallel-merge extension).

    The item is the ``(left, right)`` delta-map pair itself — carrying the
    maps in the payload (rather than indices into captured state) keeps
    the task pure over captured state (lint rule PT001) and
    process-portable.
    """

    aggregate: str

    def __call__(self, pair):
        left, right = pair
        from repro.core.aggregates import get_aggregate

        with measured("partime.step2.consolidate"):
            return consolidate_pair(left, right, get_aggregate(self.aggregate))


class ParTime:
    """The ParTime temporal aggregation operator.

    Parameters
    ----------
    mode:
        ``"vectorized"`` (NumPy fast path where applicable) or ``"pure"``
        (the paper's per-record pseudo-code).
    backend:
        Delta-map backend for the pure path: ``"btree"`` (the paper) or
        ``"hash"`` (ablation alternative).
    parallel_step2:
        Use the multi-level parallel merge (the paper's future-work
        extension) instead of the sequential Step 2.
    deltamap:
        Delta-map representation: ``"columnar"`` (NumPy kernels),
        ``"btree"`` or ``"hash"`` (scalar oracles).  Defaults from the
        legacy ``mode``/``backend`` pair (``vectorized`` → columnar).
    """

    def __init__(
        self,
        mode: str = "vectorized",
        backend: str = "btree",
        parallel_step2: bool = False,
        deltamap: str | None = None,
    ) -> None:
        self.mode = mode
        self.backend = backend
        self.parallel_step2 = parallel_step2
        self.deltamap = resolve_deltamap(mode, backend, deltamap)
        self.last_stats = ParTimeStats()

    @property
    def step1_label(self) -> str:
        """The phase label Step 1 books on the simulated clock.

        Columnar runs get a ``.columnar`` suffix so schedules and Chrome
        traces say which kernel ran; the fault plane strips the suffix
        (``repro.faults.inject.fault_site``), so both labels draw from the
        same deterministic fault schedule.
        """
        if self.deltamap == "columnar":
            return "partime.step1.columnar"
        return "partime.step1"

    # ------------------------------------------------------------------ API

    def execute(
        self,
        table: TemporalTable,
        query: TemporalAggregationQuery,
        workers: int = 1,
        executor: Executor | None = None,
    ) -> TemporalAggregationResult:
        """Run the full two-step algorithm with ``workers`` partitions."""
        executor = executor or SerialExecutor()
        chunks = table.chunks(max(1, workers))
        return self.execute_on_chunks(table, chunks, query, executor)

    def execute_on_chunks(
        self,
        table: TemporalTable,
        chunks: Sequence[TableChunk],
        query: TemporalAggregationQuery,
        executor: Executor | None = None,
    ) -> TemporalAggregationResult:
        """Run ParTime over pre-partitioned chunks (what storage nodes do)."""
        executor = executor or SerialExecutor()
        self.last_stats = ParTimeStats(
            num_partitions=len(chunks),
            records_scanned=sum(len(c) for c in chunks),
        )
        with span(
            "partime.query",
            kind="query",
            partitions=len(chunks),
            aggregate=query.aggregate,
            mode=self.mode,
        ):
            if query.is_windowed:
                return self._execute_windowed(chunks, query, executor)
            if query.is_multidim:
                return self._execute_multidim(table, chunks, query, executor)
            return self._execute_onedim(chunks, query, executor)

    # ----------------------------------------------------------- internals

    @staticmethod
    def _step1_timed(executor: Executor, task, chunks, label: str):
        """Step 1 with its simulated phase time recorded as a histogram.

        The observation is the *simulated* elapsed the phase added to the
        executor's clock (makespan plus any booked retry backoff) — one
        observation per query, identical across backends in count though
        not in value (measured durations legitimately differ).
        """
        before = executor.clock.elapsed
        maps = executor.map_parallel(task, chunks, label=label)
        metrics().histogram("partime.step1_seconds").observe(
            executor.clock.elapsed - before
        )
        return maps

    @staticmethod
    def _step2_timed(executor: Executor, step2, label: str):
        """Step 2 with its simulated phase time recorded as a histogram."""
        before = executor.clock.elapsed
        result = executor.run_serial(step2, label=label)
        metrics().histogram("partime.step2_seconds").observe(
            executor.clock.elapsed - before
        )
        return result

    def _until(self, query: TemporalAggregationQuery, dim: str) -> int:
        iv = query.interval_of(dim)
        return FOREVER if iv is None else iv.end

    def _execute_onedim(
        self,
        chunks: Sequence[TableChunk],
        query: TemporalAggregationQuery,
        executor: Executor,
    ) -> TemporalAggregationResult:
        dim = query.varied_dims[0]
        agg = query.aggregate_fn

        step1 = _Step1Task(
            query=query,
            dim=dim,
            mode=self.mode,
            backend=self.backend,
            deltamap=self.deltamap,
        )
        maps = self._step1_timed(
            executor, step1, chunks, label=self.step1_label
        )
        self.last_stats.delta_entries = sum(len(m) for m in maps)
        until = self._until(query, dim)

        if self.parallel_step2 and len(maps) > 1:
            maps = self._consolidate_parallel(maps, agg, executor)

        vectorized = vectorized_mergeable(maps)

        def step2():
            if vectorized:
                return merge_sorted_arrays(
                    maps, agg, until=until, drop_empty=query.drop_empty
                )
            return merge_delta_maps(
                maps, agg, until=until, drop_empty=query.drop_empty
            )

        step2_label = "partime.step2.vectorized" if vectorized else "partime.step2"
        pairs = self._step2_timed(executor, step2, label=step2_label)
        self.last_stats.result_rows = len(pairs)
        return TemporalAggregationResult.from_pairs(
            dim, pairs, aggregate_name=agg.name
        )

    def _execute_windowed(
        self,
        chunks: Sequence[TableChunk],
        query: TemporalAggregationQuery,
        executor: Executor,
    ) -> TemporalAggregationResult:
        dim = query.varied_dims[0]
        agg = query.aggregate_fn
        window = query.window
        assert window is not None

        step1 = _Step1WindowTask(
            query=query,
            dim=dim,
            mode=(
                "vectorized"
                if agg.columnar and self.deltamap == "columnar"
                else "pure"
            ),
        )
        maps = self._step1_timed(
            executor, step1, chunks, label="partime.step1w"
        )

        def step2():
            return merge_window_maps(
                maps, window, agg, drop_empty=query.drop_empty
            )

        points = self._step2_timed(executor, step2, label="partime.step2w")
        self.last_stats.result_rows = len(points)
        return TemporalAggregationResult.from_points(
            dim, window.stride, points, aggregate_name=agg.name
        )

    def _execute_multidim(
        self,
        table: TemporalTable,
        chunks: Sequence[TableChunk],
        query: TemporalAggregationQuery,
        executor: Executor,
    ) -> TemporalAggregationResult:
        agg = query.aggregate_fn
        pivot = query.pivot
        if pivot is None:
            stats = collect_statistics(table, query.varied_dims)
            pivot = choose_pivot(stats, query.varied_dims)
        self.last_stats.pivot = pivot
        nonpivot = [d for d in query.varied_dims if d != pivot]

        step1 = _Step1MultiDimTask(query=query, pivot=pivot)
        maps = self._step1_timed(
            executor, step1, chunks, label="partime.step1md"
        )
        self.last_stats.delta_entries = sum(len(m) for m in maps)

        if self.parallel_step2 and len(maps) > 1:
            maps = self._consolidate_parallel(maps, agg, executor)

        def step2():
            return merge_multidim_maps(
                maps,
                agg,
                num_dims=len(query.varied_dims),
                pivot_until=self._until(query, pivot),
                nonpivot_untils=[self._until(query, d) for d in nonpivot],
            )

        raw_rows = self._step2_timed(executor, step2, label="partime.step2md")
        self.last_stats.result_rows = len(raw_rows)

        # Raw rows order intervals (nonpivot..., pivot); reorder to the
        # query's declared dimension order.
        raw_order = nonpivot + [pivot]
        perm = [raw_order.index(d) for d in query.varied_dims]
        rows = [
            (tuple(ivs[i] for i in perm), value) for ivs, value in raw_rows
        ]
        return TemporalAggregationResult.from_multidim(
            query.varied_dims, rows, aggregate_name=agg.name
        )

    def _consolidate_parallel(self, maps, agg, executor: Executor):
        """Multi-level pairwise consolidation (parallel Step 2 extension)."""
        maps = list(maps)
        task = _ConsolidateTask(aggregate=agg.name)
        for level in parallel_merge_plan(maps):
            pairs = [(maps[i], maps[j]) for i, j in level]
            merged = executor.map_parallel(
                task, pairs, label="partime.step2.level"
            )
            leftover = [maps[-1]] if len(maps) % 2 else []
            maps = list(merged) + leftover
        return maps
