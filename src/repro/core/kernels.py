"""Shared NumPy consolidation kernels for the columnar hot paths.

Every vectorized pipeline in the repo — Step-1 delta-map construction,
the Step-2 k-way merge, the Timeline Index bulkload — reduces to the
same array program: stable-sort parallel event arrays by timestamp,
find the segment boundaries between distinct timestamps, and collapse
each segment with a segmented reduction (``np.add.reduceat`` for the
additive aggregates, ``np.minimum``/``np.maximum.reduceat`` for the
extremes).  This module is that program, written once.

The stable sort matters: it keeps same-timestamp events in input order,
so float consolidation sums components in a deterministic order and the
kernels' output is reproducible run-to-run (the kernel-oracle suite in
``tests/test_kernel_oracle.py`` relies on this).
"""

from __future__ import annotations

import numpy as np


def sort_events(
    timestamps: np.ndarray, *streams: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Stable-sort parallel event arrays by timestamp.

    Returns ``(sorted_timestamps, *sorted_streams)`` where every stream
    is permuted by the same stable order.
    """
    order = np.argsort(timestamps, kind="stable")
    return (timestamps[order],) + tuple(s[order] for s in streams)


def segment_starts(sorted_ts: np.ndarray) -> np.ndarray:
    """Indices where a new timestamp run begins in a sorted array.

    ``sorted_ts[segment_starts(sorted_ts)]`` are the distinct keys.
    """
    if len(sorted_ts) == 0:
        return np.zeros(0, dtype=np.intp)
    return np.concatenate(
        [[0], np.flatnonzero(sorted_ts[1:] != sorted_ts[:-1]) + 1]
    )


def consolidate_additive(
    timestamps: np.ndarray, values: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-pass consolidation of additive ``(value, count)`` deltas.

    The Section-3.2.1 consolidation rule (``<t7,-10k>`` + ``<t7,+15k>``
    → ``<t7,+5k>``) as a single argsort + two ``np.add.reduceat`` calls.
    Returns ``(unique_keys, value_sums, count_sums)``; null entries are
    *kept* — dropping them is a build-time policy, not a kernel concern.
    """
    ts = np.asarray(timestamps, dtype=np.int64)
    vals = np.asarray(values, dtype=np.float64)
    cnts = np.asarray(counts, dtype=np.int64)
    ts, vals, cnts = sort_events(ts, vals, cnts)
    seg = segment_starts(ts)
    if len(seg) == 0:
        return ts, vals, cnts
    return ts[seg], np.add.reduceat(vals, seg), np.add.reduceat(cnts, seg)


def consolidate_extreme(
    timestamps: np.ndarray,
    values: np.ndarray,
    counts: np.ndarray,
    ufunc: np.ufunc,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Consolidation for MIN/MAX deltas over an append-only stream.

    Same shape as :func:`consolidate_additive`, but the value component
    collapses with ``ufunc.reduceat`` (``np.minimum`` or ``np.maximum``)
    while counts still sum: the per-timestamp extreme plus how many
    records arrived there.
    """
    ts = np.asarray(timestamps, dtype=np.int64)
    vals = np.asarray(values, dtype=np.float64)
    cnts = np.asarray(counts, dtype=np.int64)
    ts, vals, cnts = sort_events(ts, vals, cnts)
    seg = segment_starts(ts)
    if len(seg) == 0:
        return ts, vals, cnts
    return ts[seg], ufunc.reduceat(vals, seg), np.add.reduceat(cnts, seg)


def running_totals(
    value_deltas: np.ndarray, count_deltas: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Step-2 running aggregation as prefix scans (``np.cumsum``)."""
    return np.cumsum(value_deltas), np.cumsum(count_deltas)


def running_extremes(
    value_deltas: np.ndarray, count_deltas: np.ndarray, ufunc: np.ufunc
) -> tuple[np.ndarray, np.ndarray]:
    """Running MIN/MAX over append-only deltas via ``ufunc.accumulate``.

    Valid only when no record expires inside the scanned interval: an
    accumulate can absorb new extremes but never retract one, which is
    exactly the append-only case Step 1 certifies before building an
    ``extreme``-kind columnar map.
    """
    return ufunc.accumulate(value_deltas), np.cumsum(count_deltas)
