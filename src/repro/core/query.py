"""Temporal aggregation query specifications.

A :class:`TemporalAggregationQuery` captures everything Section 3 varies:

* which *value column* is aggregated, with which aggregate function;
* which time dimensions are *varied* (one → Figure 2, several → Figure 3);
* a :class:`~repro.temporal.predicates.Predicate` holding the *fixed*
  dimensions (time-travel / overlap filters) and any non-temporal
  selections — applied before delta generation;
* optional *query intervals* restricting the varied dimensions to ranges
  (TPC-BiH r3/r4);
* an optional :class:`~repro.core.window.WindowSpec` turning the query into
  a windowed one (Figure 4), which unlocks the array delta map;
* an optional explicit *pivot* for multi-dimensional queries (by default
  the statistics of Section 3.4 choose it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregates import AggregateFunction, get_aggregate
from repro.core.window import WindowSpec
from repro.temporal.predicates import Predicate
from repro.temporal.timestamps import Interval


@dataclass(frozen=True)
class TemporalAggregationQuery:
    """Declarative description of one temporal aggregation."""

    varied_dims: tuple[str, ...]
    value_column: str | None = None
    aggregate: str = "sum"
    predicate: Predicate | None = None
    query_intervals: dict = field(default_factory=dict)
    window: WindowSpec | None = None
    pivot: str | None = None
    drop_empty: bool = False

    def __post_init__(self) -> None:
        if not self.varied_dims:
            raise ValueError("a temporal aggregation must vary some dimension")
        if len(set(self.varied_dims)) != len(self.varied_dims):
            raise ValueError("duplicate varied dimension")
        if self.window is not None and len(self.varied_dims) != 1:
            raise ValueError("windowed aggregation is one-dimensional")
        if self.pivot is not None and self.pivot not in self.varied_dims:
            raise ValueError("pivot must be one of the varied dimensions")
        for d in self.query_intervals:
            if d not in self.varied_dims:
                raise ValueError(
                    f"query interval on {d!r}, which is not varied; "
                    "fix that dimension through the predicate instead"
                )
        get_aggregate(self.aggregate)  # validate eagerly

    @property
    def aggregate_fn(self) -> AggregateFunction:
        return get_aggregate(self.aggregate)

    @property
    def is_windowed(self) -> bool:
        return self.window is not None

    @property
    def is_multidim(self) -> bool:
        return len(self.varied_dims) > 1

    def interval_of(self, dim: str) -> Interval | None:
        return self.query_intervals.get(dim)
