"""Temporal joins — the first item of the paper's future work.

Section 6: "First, we would like to generalize the ParTime technique and
apply it to other temporal operators; e.g., temporal joins."  This module
does that generalisation for the *temporal equi-join*: two bi-temporal
tables joined on an equality key, where a pair of versions matches iff
their validity intervals in the join dimension overlap; the output row
carries the intersection of the two intervals (the span during which both
facts were simultaneously true).

The parallelisation follows ParTime's recipe, adapted to the join's
structure:

* the inputs are *co-partitioned* by a hash of the join key, so matching
  versions always land in the same partition — the analogue of Step 1's
  freedom to partition arbitrarily;
* each partition is joined independently (embarrassingly parallel — the
  join needs no Step 2 beyond concatenation, because unlike aggregation
  no cross-partition state exists once co-partitioning holds);
* within a partition, a sort-merge interval join runs in
  O(n log n + output).

:func:`temporal_join_reference` is the obvious O(n·m) nested-loop oracle
used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.simtime.executor import Executor, SerialExecutor
from repro.temporal.predicates import Predicate
from repro.temporal.table import TableChunk, TemporalTable
from repro.temporal.timestamps import Interval


class JoinRow(NamedTuple):
    """One join result: row ids of both inputs and the overlap span."""

    key: object
    left_row: int
    right_row: int
    interval: Interval


def _side_arrays(
    chunk: TableChunk,
    key_column: str,
    dim: str,
    predicate: Predicate | None,
    row_ids: np.ndarray | None,
):
    mask = None if predicate is None else predicate.mask(chunk)
    keys = chunk.column(key_column)
    starts = chunk.column(f"{dim}_start")
    ends = chunk.column(f"{dim}_end")
    if row_ids is None:
        row_ids = np.arange(len(chunk), dtype=np.int64) + chunk.row_offset
    if mask is not None:
        keys, starts, ends = keys[mask], starts[mask], ends[mask]
        row_ids = row_ids[mask]
    return keys, starts, ends, row_ids


def merge_join_partition(
    left: TableChunk,
    right: TableChunk,
    left_key: str,
    right_key: str,
    dim: str,
    left_predicate: Predicate | None = None,
    right_predicate: Predicate | None = None,
    left_rows: np.ndarray | None = None,
    right_rows: np.ndarray | None = None,
) -> list[JoinRow]:
    """Sort-merge temporal equi-join of two co-partitioned chunks.

    Both sides are sorted by (key, start); for every key group, a sweep
    emits each pair of versions with overlapping validity.  Within a key
    group the sweep is quadratic in the group's *overlap degree* — which
    is the output size, the unavoidable lower bound.  ``left_rows`` /
    ``right_rows`` carry the chunks' global row ids when the chunks are
    hash partitions rather than contiguous slices.
    """
    lk, ls, le, lr = _side_arrays(left, left_key, dim, left_predicate, left_rows)
    rk, rs, re_, rr = _side_arrays(right, right_key, dim, right_predicate, right_rows)
    if len(lk) == 0 or len(rk) == 0:
        return []

    l_order = np.lexsort((ls, lk))
    r_order = np.lexsort((rs, rk))
    lk, ls, le, lr = lk[l_order], ls[l_order], le[l_order], lr[l_order]
    rk, rs, re_, rr = rk[r_order], rs[r_order], re_[r_order], rr[r_order]

    out: list[JoinRow] = []
    i = j = 0
    n, m = len(lk), len(rk)
    while i < n and j < m:
        if lk[i] < rk[j]:
            i += 1
            continue
        if rk[j] < lk[i]:
            j += 1
            continue
        key = lk[i]
        i_end = i
        while i_end < n and lk[i_end] == key:
            i_end += 1
        j_end = j
        while j_end < m and rk[j_end] == key:
            j_end += 1
        # Both groups are start-sorted: classic interval sweep.
        for a in range(i, i_end):
            for b in range(j, j_end):
                if rs[b] >= le[a]:
                    break  # right starts only grow; no further overlap
                if re_[b] > ls[a]:
                    out.append(
                        JoinRow(
                            key if not hasattr(key, "item") else key.item(),
                            int(lr[a]),
                            int(rr[b]),
                            Interval(
                                int(max(ls[a], rs[b])), int(min(le[a], re_[b]))
                            ),
                        )
                    )
        i, j = i_end, j_end
    return out


def _hash_partition(
    table: TemporalTable, key_column: str, parts: int
) -> list[tuple[TableChunk, np.ndarray]]:
    """Hash partitions plus the global row ids of each partition's rows
    (selection re-indexes the chunk, so ids must travel alongside)."""
    keys = table.column(key_column)
    assignment = np.array([hash(k) % parts for k in keys], dtype=np.int64)
    chunk = table.chunk()
    out = []
    for p in range(parts):
        mask = assignment == p
        out.append((chunk.select(mask), np.nonzero(mask)[0].astype(np.int64)))
    return out


@dataclass(frozen=True)
class _JoinPairTask:
    """Per-partition join task, module-level and frozen so it pickles
    for the process backend (PT006)."""

    left_key: str
    right_key: str
    dim: str
    left_predicate: Predicate | None
    right_predicate: Predicate | None

    def __call__(self, pair):
        (lchunk, lrows), (rchunk, rrows) = pair
        return merge_join_partition(
            lchunk,
            rchunk,
            self.left_key,
            self.right_key,
            self.dim,
            self.left_predicate,
            self.right_predicate,
            left_rows=lrows,
            right_rows=rrows,
        )


class ParTimeJoin:
    """Parallel temporal equi-join, ParTime style.

    >>> # join two tables on key over business-time overlap:
    >>> # ParTimeJoin().execute(orders, shipments, "orderkey", "orderkey",
    >>> #                       dim="bt", workers=8)
    """

    def execute(
        self,
        left: TemporalTable,
        right: TemporalTable,
        left_key: str,
        right_key: str,
        dim: str = "tt",
        workers: int = 1,
        left_predicate: Predicate | None = None,
        right_predicate: Predicate | None = None,
        executor: Executor | None = None,
    ) -> list[JoinRow]:
        """Co-partition by key hash, join partitions in parallel, concat."""
        executor = executor or SerialExecutor()
        workers = max(1, workers)
        left_parts = _hash_partition(left, left_key, workers)
        right_parts = _hash_partition(right, right_key, workers)

        join_pair = _JoinPairTask(
            left_key, right_key, dim, left_predicate, right_predicate
        )
        partials = executor.map_parallel(
            join_pair, list(zip(left_parts, right_parts)), label="join.partition"
        )

        def concat():
            out: list[JoinRow] = []
            for part in partials:
                out.extend(part)
            out.sort()
            return out

        return executor.run_serial(concat, label="join.concat")


def temporal_join_reference(
    left: TemporalTable,
    right: TemporalTable,
    left_key: str,
    right_key: str,
    dim: str = "tt",
    left_predicate: Predicate | None = None,
    right_predicate: Predicate | None = None,
) -> list[JoinRow]:
    """Nested-loop oracle: every pair, checked directly."""
    lchunk, rchunk = left.chunk(), right.chunk()
    lmask = None if left_predicate is None else left_predicate.mask(lchunk)
    rmask = None if right_predicate is None else right_predicate.mask(rchunk)
    out: list[JoinRow] = []
    for a in range(len(lchunk)):
        if lmask is not None and not lmask[a]:
            continue
        la = lchunk.record(a)
        for b in range(len(rchunk)):
            if rmask is not None and not rmask[b]:
                continue
            rb = rchunk.record(b)
            if la[left_key] != rb[right_key]:
                continue
            x = Interval(int(la[f"{dim}_start"]), int(la[f"{dim}_end"]))
            y = Interval(int(rb[f"{dim}_start"]), int(rb[f"{dim}_end"]))
            inter = x.intersect(y)
            if inter is not None:
                key = la[left_key]
                out.append(
                    JoinRow(
                        key if not hasattr(key, "item") else key.item(),
                        a, b, inter,
                    )
                )
    out.sort()
    return out
