"""Step 2 of ParTime: merging delta maps.

The merge "can be implemented in exactly the same way as a merge in a
sort-based, regular (non-temporal) group-by operator" (Section 3.2.2): the
timestamp is the group-by key, deltas at equal timestamps are combined, and
a running accumulator turns consolidated deltas into the aggregate value of
each interval between consecutive timestamps.

Provided here:

* :func:`merge_delta_maps` — the sequential k-way merge used by the
  aggregator node (this is the paper's Step 2);
* :func:`merge_sorted_arrays` — vectorized merge for the NumPy fast path;
* :func:`merge_window_maps` — the trivial windowed merge (element-wise sum
  of fixed-size arrays followed by one prefix scan);
* :func:`merge_multidim_maps` — the multi-dimensional merge with the
  interval Cartesian product of Section 3.4;
* :func:`consolidate_pair` / :func:`parallel_merge_plan` — the multi-level
  parallel merge the paper sketches as future work ("this parallelization
  can be achieved with a multi-level merge operation as described in
  [11]"), used by the parallel-Step-2 ablation.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core import kernels
from repro.core.aggregates import AggregateFunction
from repro.core.deltamap import ArrayDeltaMap, ColumnarDeltaMap, DeltaMap
from repro.core.window import WindowSpec
from repro.obs.metrics import metrics
from repro.temporal.timestamps import FOREVER, Interval


def _merged_entries(maps: Sequence[DeltaMap]) -> Iterator[tuple]:
    """K-way merge of the maps' sorted entry streams."""
    return heapq.merge(*(m.items() for m in maps), key=lambda kv: kv[0])


def _count_merge(maps: Sequence) -> None:
    """Book one Step 2 merge operation and its fan-in (the number of delta
    maps fed into it) with the observability layer."""
    metrics().counter("step2.merges").add(1)
    metrics().counter("step2.merge_fan_in").add(len(maps))


def finalize_arrays(
    aggregate: AggregateFunction, run_vals: np.ndarray, run_cnts: np.ndarray
) -> list:
    """Vectorized finalisation of running (value, count) accumulators.

    SUM/COUNT/AVG — the array-backed aggregates — finalize in one NumPy
    expression plus one ``tolist``; anything else goes through the generic
    per-entry protocol.  Shared by the Step 2 merges and the Timeline
    Index (result emission is on both engines' critical paths).
    """
    if aggregate.name == "sum":
        return run_vals.tolist()
    if aggregate.name == "count":
        return run_cnts.tolist()
    if aggregate.name == "avg":
        with np.errstate(invalid="ignore", divide="ignore"):
            finals = (run_vals / run_cnts).tolist()
        return [None if c == 0 else f for f, c in zip(finals, run_cnts.tolist())]
    return [
        aggregate.finalize((v, c))
        for v, c in zip(run_vals.tolist(), run_cnts.tolist())
    ]


def merge_delta_maps(
    maps: Sequence[DeltaMap],
    aggregate: AggregateFunction,
    until: int = FOREVER,
    drop_empty: bool = False,
    coalesce: bool = True,
) -> list[tuple[Interval, object]]:
    """Sequential Step 2 for one-dimensional aggregation.

    Returns ``(interval, value)`` rows: for every span between consecutive
    delta timestamps, the aggregate of all records valid throughout that
    span.  The last span extends to ``until`` (``FOREVER`` reproduces the
    open-ended final rows of Figure 2).

    ``drop_empty`` suppresses spans with no active record (count 0);
    ``coalesce`` merges adjacent spans with equal value, which removes the
    seams left by deltas that consolidated to zero.
    """
    _count_merge(maps)
    rows: list[tuple[Interval, object]] = []
    acc = aggregate.identity()
    prev_ts: int | None = None
    prev_count = 0

    def emit(lo: int, hi: int, value, count: int) -> None:
        if lo >= hi:
            return
        if drop_empty and count == 0:
            return
        if coalesce and rows and rows[-1][0].end == lo and rows[-1][1] == value:
            rows[-1] = (Interval(rows[-1][0].start, hi), value)
            return
        rows.append((Interval(lo, hi), value))

    for ts, delta in _merged_entries(maps):
        ts = int(ts)
        if prev_ts is not None and ts > prev_ts:
            emit(prev_ts, ts, aggregate.finalize(acc), prev_count)
        if prev_ts is None or ts > prev_ts:
            prev_ts = ts
        acc = aggregate.apply(acc, delta)
        prev_count = aggregate.count(acc)
    if prev_ts is not None:
        emit(prev_ts, until, aggregate.finalize(acc), prev_count)
    return rows


def vectorized_mergeable(maps: Sequence[DeltaMap]) -> bool:
    """Whether :func:`merge_sorted_arrays` applies: every map columnar,
    all of one kind (additive and extreme maps never mix — they belong to
    different aggregates)."""
    return (
        bool(maps)
        and all(isinstance(m, ColumnarDeltaMap) for m in maps)
        and len({m.kind for m in maps}) == 1
    )


def _emit_rows(
    keys: np.ndarray,
    run_cnts: np.ndarray,
    finals: np.ndarray,
    none_mask: np.ndarray | None,
    until: int,
    drop_empty: bool,
    coalesce: bool,
) -> list[tuple[Interval, object]]:
    """Vectorized row emission: keep-mask, change-point coalescing, one
    ``tolist`` per column.  ``none_mask`` marks entries whose finalised
    value is ``None`` (AVG over zero records); two ``None`` spans coalesce
    like equal values, mirroring :func:`merge_delta_maps`' ``emit``."""
    ends = np.empty(len(keys), dtype=np.int64)
    ends[:-1] = keys[1:]
    ends[-1] = until
    keep = keys < ends
    if drop_empty:
        keep &= run_cnts != 0
    if not keep.any():
        return []
    lo = keys[keep]
    hi = ends[keep]
    vals = finals[keep]
    nm = None if none_mask is None else none_mask[keep]
    if coalesce and len(lo) > 1:
        contiguous = lo[1:] == hi[:-1]
        if nm is None:
            same = vals[1:] == vals[:-1]
        else:
            both_none = nm[1:] & nm[:-1]
            neither = ~nm[1:] & ~nm[:-1]
            same = both_none | (neither & (vals[1:] == vals[:-1]))
        new_group = np.concatenate([[True], ~(contiguous & same)])
        starts = np.flatnonzero(new_group)
    else:
        starts = np.arange(len(lo))
    last = np.append(starts[1:], len(lo)) - 1
    lo_list = lo[starts].tolist()
    hi_list = hi[last].tolist()
    val_list = vals[starts].tolist()
    if nm is not None:
        val_list = [
            None if is_none else v
            for v, is_none in zip(val_list, nm[starts].tolist())
        ]
    return [
        (Interval(a, b), v) for a, b, v in zip(lo_list, hi_list, val_list)
    ]


def merge_sorted_arrays(
    maps: Sequence[ColumnarDeltaMap],
    aggregate: AggregateFunction,
    until: int = FOREVER,
    drop_empty: bool = False,
    coalesce: bool = True,
) -> list[tuple[Interval, object]]:
    """Vectorized Step 2 for columnar delta maps.

    Semantically identical to :func:`merge_delta_maps`; concatenates the
    backing arrays, re-consolidates with one stable sort + segmented
    reduction (:mod:`repro.core.kernels`), runs the Step-2 accumulator as
    a prefix scan (``np.cumsum``; ``np.minimum``/``np.maximum.accumulate``
    for extreme-kind maps), and emits rows without a per-entry loop.
    """
    _count_merge(maps)
    keys_parts, val_parts, cnt_parts = [], [], []
    kind = maps[0].kind if maps else ColumnarDeltaMap.KIND_ADDITIVE
    for m in maps:
        keys, (vals, cnts) = m.arrays
        keys_parts.append(keys)
        val_parts.append(vals)
        cnt_parts.append(cnts)
    if not keys_parts or sum(map(len, keys_parts)) == 0:
        return []
    all_keys = np.concatenate(keys_parts)
    all_vals = np.concatenate(val_parts)
    all_cnts = np.concatenate(cnt_parts)
    if kind == ColumnarDeltaMap.KIND_EXTREME:
        ufunc = np.minimum if aggregate.name == "min" else np.maximum
        keys, deltas, cnts = kernels.consolidate_extreme(
            all_keys, all_vals, all_cnts, ufunc
        )
        run_vals, run_cnts = kernels.running_extremes(deltas, cnts, ufunc)
        return _emit_rows(
            keys, run_cnts, run_vals, run_cnts == 0, until, drop_empty, coalesce
        )
    keys, deltas, cnts = kernels.consolidate_additive(all_keys, all_vals, all_cnts)
    run_vals, run_cnts = kernels.running_totals(deltas, cnts)
    name = aggregate.name
    if name == "sum":
        return _emit_rows(keys, run_cnts, run_vals, None, until, drop_empty, coalesce)
    if name == "count":
        return _emit_rows(keys, run_cnts, run_cnts, None, until, drop_empty, coalesce)
    if name == "avg":
        with np.errstate(invalid="ignore", divide="ignore"):
            finals = run_vals / run_cnts
        return _emit_rows(
            keys, run_cnts, finals, run_cnts == 0, until, drop_empty, coalesce
        )
    # Aggregates outside the columnar family never build these maps; keep
    # a generic scalar emission so hand-constructed maps still resolve.
    finals_list = finalize_arrays(aggregate, run_vals, run_cnts)
    rows: list[tuple[Interval, object]] = []
    ends = np.empty(len(keys), dtype=np.int64)
    ends[:-1] = keys[1:]
    ends[-1] = until
    for i, lo in enumerate(keys.tolist()):
        if drop_empty and run_cnts[i] == 0:
            continue
        hi = int(ends[i])
        if lo >= hi:
            continue
        value = finals_list[i]
        if coalesce and rows and rows[-1][0].end == lo and rows[-1][1] == value:
            rows[-1] = (Interval(rows[-1][0].start, hi), value)
        else:
            rows.append((Interval(lo, hi), value))
    return rows


def merge_window_maps(
    maps: Sequence[object],
    window: WindowSpec,
    aggregate: AggregateFunction,
    drop_empty: bool = False,
) -> list[tuple[int, object]]:
    """Step 2 for windowed aggregation: sum the fixed-size delta arrays
    slot-wise, then one prefix scan yields the value at every sample point.

    Accepts a mix of :class:`ArrayDeltaMap` (pure path) and
    ``(value_deltas, count_deltas)`` array pairs (vectorized path).
    """
    _count_merge(maps)
    if aggregate.columnar:
        val_total = np.zeros(window.count + 1, dtype=np.float64)
        cnt_total = np.zeros(window.count + 1, dtype=np.int64)
        for m in maps:
            if isinstance(m, ArrayDeltaMap):
                for bucket, delta in m.items():
                    val_total[bucket] += delta[0]
                    cnt_total[bucket] += delta[1]
            else:
                vals, cnts = m
                val_total += vals
                cnt_total += cnts
        run_vals = np.cumsum(val_total[: window.count])
        run_cnts = np.cumsum(cnt_total[: window.count])
        rows: list[tuple[int, object]] = []
        for i in range(window.count):
            if drop_empty and run_cnts[i] == 0:
                continue
            value = aggregate.finalize((run_vals[i].item(), int(run_cnts[i])))
            rows.append((window.point(i), value))
        return rows

    # Non-incremental aggregates: replay bucket deltas through the
    # accumulator (the "priority queue" merge of Section 3.2.3).
    acc = aggregate.identity()
    slot_deltas: list[object] = [None] * (window.count + 1)
    for m in maps:
        if not isinstance(m, ArrayDeltaMap):
            raise TypeError("non-incremental windowed merge needs ArrayDeltaMaps")
        for bucket, delta in m.items():
            old = slot_deltas[bucket]
            slot_deltas[bucket] = delta if old is None else aggregate.combine(old, delta)
    rows = []
    for i in range(window.count):
        if slot_deltas[i] is not None:
            acc = aggregate.apply(acc, slot_deltas[i])
        if drop_empty and aggregate.count(acc) == 0:
            continue
        rows.append((window.point(i), aggregate.finalize(acc)))
    return rows


# --------------------------------------------------------------------------
# Multi-dimensional merge (Section 3.4)
# --------------------------------------------------------------------------


def _resolve(
    items: Iterable[tuple[tuple, object]],
    aggregate: AggregateFunction,
    dims_remaining: int,
    untils: Sequence[int],
) -> list[tuple[tuple[Interval, ...], object]]:
    """The interval Cartesian product of overlapping deltas.

    ``items`` are ``(flat_key, delta)`` pairs where ``flat_key`` holds
    ``dims_remaining`` interval boundary pairs ``(s0, e0, s1, e1, ...)``.
    Sweeps the first dimension's boundaries, maintaining the set of active
    deltas (keyed by their remaining intervals), and recurses — producing
    one output row per cell of the overlap grid, exactly the result
    explosion of Figure 3.
    """
    if dims_remaining == 0:
        acc = aggregate.identity()
        for _key, delta in items:
            acc = aggregate.apply(acc, delta)
        if aggregate.count(acc) == 0:
            return []
        return [((), aggregate.finalize(acc))]

    # Build the event list over the first remaining dimension.
    events: dict[int, dict[tuple, object]] = {}

    def add_event(ts: int, rest: tuple, delta) -> None:
        bucket = events.setdefault(ts, {})
        old = bucket.get(rest)
        merged = delta if old is None else aggregate.combine(old, delta)
        if aggregate.is_null_delta(merged):
            bucket.pop(rest, None)
        else:
            bucket[rest] = merged

    until = untils[0]
    for key, delta in items:
        start, end, rest = key[0], key[1], key[2:]
        add_event(start, rest, delta)
        if end < until:
            add_event(end, rest, aggregate.negate(delta))

    rows: list[tuple[tuple[Interval, ...], object]] = []
    active: dict[tuple, object] = {}
    boundaries = sorted(events)
    for idx, ts in enumerate(boundaries):
        for rest, delta in events[ts].items():
            old = active.get(rest)
            merged = delta if old is None else aggregate.combine(old, delta)
            if aggregate.is_null_delta(merged):
                active.pop(rest, None)
            else:
                active[rest] = merged
        hi = boundaries[idx + 1] if idx + 1 < len(boundaries) else until
        if ts >= hi or not active:
            continue
        sub = _resolve(list(active.items()), aggregate, dims_remaining - 1, untils[1:])
        span = Interval(ts, hi)
        for sub_intervals, value in sub:
            rows.append(((span,) + sub_intervals, value))
    return rows


def merge_multidim_maps(
    maps: Sequence[DeltaMap],
    aggregate: AggregateFunction,
    num_dims: int,
    pivot_until: int = FOREVER,
    nonpivot_untils: Sequence[int] | None = None,
    coalesce: bool = False,
) -> list[tuple[tuple[Interval, ...], object]]:
    """Step 2 for multi-dimensional aggregation.

    Entries arrive ordered by pivot timestamp (the maps reorder their keys
    internally); the sweep maintains the set of active non-pivot deltas and
    resolves their interval overlaps for every pivot span.  Output rows are
    ``((nonpivot_intervals..., pivot_interval), value)`` — non-pivot
    dimensions in key order, pivot last, as in the paper's delta notation.

    Rows with no active record are dropped (they do not appear in Figure 3
    either).  ``coalesce`` optionally merges pivot-adjacent rows whose
    non-pivot intervals and values are identical; Figure 3 keeps them
    separate (every pivot event splits all rows), so the default is off.
    """
    untils = list(nonpivot_untils or [FOREVER] * (num_dims - 1))
    if len(untils) != num_dims - 1:
        raise ValueError("need one 'until' per non-pivot dimension")
    _count_merge(maps)

    active: dict[tuple, object] = {}
    rows: list[tuple[tuple[Interval, ...], object]] = []

    def emit_row(nonpivot_intervals: tuple, span: Interval, value) -> None:
        if coalesce:
            # Try to extend a row from the immediately preceding pivot span.
            for j in range(len(rows) - 1, -1, -1):
                prev_iv, prev_val = rows[j]
                if prev_iv[-1].end < span.start:
                    break
                if (
                    prev_iv[-1].end == span.start
                    and prev_iv[:-1] == nonpivot_intervals
                    and prev_val == value
                ):
                    rows[j] = (
                        nonpivot_intervals
                        + (Interval(prev_iv[-1].start, span.end),),
                        value,
                    )
                    return
        rows.append((nonpivot_intervals + (span,), value))

    def emit_span(lo: int, hi: int) -> None:
        if lo >= hi or not active:
            return
        resolved = _resolve(list(active.items()), aggregate, num_dims - 1, untils)
        span = Interval(lo, hi)
        for nonpivot_intervals, value in resolved:
            emit_row(nonpivot_intervals, span, value)

    prev_ts: int | None = None
    for key, delta in _merged_entries(maps):
        ts = int(key[0])
        rest = tuple(int(x) for x in key[1:])
        if prev_ts is not None and ts > prev_ts:
            emit_span(prev_ts, ts)
        if prev_ts is None or ts > prev_ts:
            prev_ts = ts
        old = active.get(rest)
        merged = delta if old is None else aggregate.combine(old, delta)
        if aggregate.is_null_delta(merged):
            active.pop(rest, None)
        else:
            active[rest] = merged
    if prev_ts is not None:
        emit_span(prev_ts, pivot_until)
    return rows


# --------------------------------------------------------------------------
# Parallel multi-level merge (the paper's future work, Section 3.4)
# --------------------------------------------------------------------------


class _ListDeltaMap(DeltaMap):
    """A consolidated delta map backed by a sorted entry list."""

    def __init__(self, aggregate: AggregateFunction, entries: list) -> None:
        super().__init__(aggregate)
        self._entries = entries

    def put(self, key, delta) -> None:
        raise TypeError("consolidated delta maps are read-only")

    def items(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


def consolidate_pair(
    a: DeltaMap, b: DeltaMap, aggregate: AggregateFunction
) -> DeltaMap:
    """Merge two delta maps into one, combining deltas at equal keys.

    This is the unit of work of the multi-level parallel merge: at each
    level, pairs of maps are consolidated independently (in parallel),
    halving the number of maps; after log2(k) levels one map remains and
    the final accumulator pass is linear in its size.

    Two columnar maps of the same kind consolidate with one concatenate +
    segmented reduction, producing a new columnar map — the multi-level
    merge stays vectorized end to end.
    """
    _count_merge((a, b))
    if (
        isinstance(a, ColumnarDeltaMap)
        and isinstance(b, ColumnarDeltaMap)
        and a.kind == b.kind
    ):
        ka, (va, ca) = a.arrays
        kb, (vb, cb) = b.arrays
        keys = np.concatenate([ka, kb])
        vals = np.concatenate([va, vb])
        cnts = np.concatenate([ca, cb])
        if a.kind == ColumnarDeltaMap.KIND_EXTREME:
            ufunc = np.minimum if aggregate.name == "min" else np.maximum
            keys, vals, cnts = kernels.consolidate_extreme(keys, vals, cnts, ufunc)
        else:
            keys, vals, cnts = kernels.consolidate_additive(keys, vals, cnts)
        return ColumnarDeltaMap(aggregate, keys, (vals, cnts), kind=a.kind)
    entries: list = []
    for key, delta in heapq.merge(a.items(), b.items(), key=lambda kv: kv[0]):
        if entries and entries[-1][0] == key:
            entries[-1] = (key, aggregate.combine(entries[-1][1], delta))
        else:
            entries.append((key, delta))
    return _ListDeltaMap(aggregate, entries)


def parallel_merge_plan(maps: Sequence[DeltaMap]) -> list[list[tuple[int, int]]]:
    """The pairing schedule of the multi-level merge: a list of levels,
    each a list of ``(i, j)`` index pairs merged concurrently.  Odd maps
    pass through a level untouched."""
    plan: list[list[tuple[int, int]]] = []
    n = len(maps)
    while n > 1:
        level = [(i, i + 1) for i in range(0, n - 1, 2)]
        plan.append(level)
        n = (n + 1) // 2
    return plan
