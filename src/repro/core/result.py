"""Result containers for temporal aggregation queries.

A :class:`TemporalAggregationResult` is a list of rows, each carrying one
:class:`~repro.temporal.timestamps.Interval` per varied dimension plus the
aggregate value — i.e. rows of the shape of Figures 2 (one dimension),
3 (two dimensions) and 4 (windowed, degenerate intervals of one sample
point each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple, Sequence

from repro.temporal.timestamps import Interval, format_ts


class ResultRow(NamedTuple):
    """One row: an interval per output dimension and the aggregate value.

    A NamedTuple — results can hold hundreds of thousands of rows (query
    r2), so per-row construction cost matters.
    """

    intervals: tuple[Interval, ...]
    value: object

    def interval(self, i: int = 0) -> Interval:
        return self.intervals[i]


@dataclass
class TemporalAggregationResult:
    """Rows of a temporal aggregation, with named output dimensions.

    ``dims`` names the varied dimensions in row order.  For windowed
    queries, rows carry degenerate ``[p, p+stride)`` spans and
    :meth:`points` gives the sampled view.
    """

    dims: tuple[str, ...]
    rows: list[ResultRow] = field(default_factory=list)
    aggregate_name: str = "sum"

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    def __getitem__(self, i: int) -> ResultRow:
        return self.rows[i]

    @classmethod
    def from_pairs(
        cls,
        dim: str,
        pairs: Sequence[tuple[Interval, object]],
        aggregate_name: str = "sum",
    ) -> "TemporalAggregationResult":
        """Build a one-dimensional result from ``(interval, value)`` pairs."""
        return cls(
            dims=(dim,),
            rows=[ResultRow((iv,), value) for iv, value in pairs],
            aggregate_name=aggregate_name,
        )

    @classmethod
    def from_points(
        cls,
        dim: str,
        stride: int,
        pairs: Sequence[tuple[int, object]],
        aggregate_name: str = "sum",
    ) -> "TemporalAggregationResult":
        """Build a windowed result from ``(sample_point, value)`` pairs."""
        return cls(
            dims=(dim,),
            rows=[ResultRow((Interval(p, p + stride),), v) for p, v in pairs],
            aggregate_name=aggregate_name,
        )

    @classmethod
    def from_multidim(
        cls,
        dims: Sequence[str],
        rows: Sequence[tuple[tuple[Interval, ...], object]],
        aggregate_name: str = "sum",
    ) -> "TemporalAggregationResult":
        return cls(
            dims=tuple(dims),
            rows=[ResultRow(tuple(ivs), value) for ivs, value in rows],
            aggregate_name=aggregate_name,
        )

    # ---------------------------------------------------------------- views

    def value_at(self, *timestamps: int):
        """The aggregate value at a point (one timestamp per dimension);
        ``None`` when no row covers the point."""
        if len(timestamps) != len(self.dims):
            raise ValueError(f"need {len(self.dims)} timestamps")
        for row in self.rows:
            if all(iv.contains(ts) for iv, ts in zip(row.intervals, timestamps)):
                return row.value
        return None

    def points(self) -> list[tuple[int, object]]:
        """``(interval_start, value)`` pairs of a one-dimensional result."""
        if len(self.dims) != 1:
            raise ValueError("points() requires a one-dimensional result")
        return [(row.intervals[0].start, row.value) for row in self.rows]

    def pairs(self) -> list[tuple[Interval, object]]:
        """``(interval, value)`` pairs of a one-dimensional result."""
        if len(self.dims) != 1:
            raise ValueError("pairs() requires a one-dimensional result")
        return [(row.intervals[0], row.value) for row in self.rows]

    def total_rows(self) -> int:
        return len(self.rows)

    def format_table(self, max_rows: int = 50) -> str:
        """Pretty-print the result like the paper's figures.

        >>> r = TemporalAggregationResult.from_pairs(
        ...     "tt", [(Interval(0, 5), 15000), (Interval(5, FOREVER), 20000)])
        >>> print(r.format_table())  # doctest: +NORMALIZE_WHITESPACE
        tt_start | tt_end | SUM
        ---------+--------+------
               0 |      5 | 15000
               5 |    inf | 20000
        """
        headers: list[str] = []
        for d in self.dims:
            headers += [f"{d}_start", f"{d}_end"]
        headers.append(self.aggregate_name.upper())
        body: list[list[str]] = []
        for row in self.rows[:max_rows]:
            cells: list[str] = []
            for iv in row.intervals:
                cells += [format_ts(iv.start), format_ts(iv.end)]
            cells.append(str(row.value))
            body.append(cells)
        widths = [len(h) for h in headers]
        for cells in body:
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
        lines.append("-+-".join("-" * w for w in widths))
        for cells in body:
            lines.append(
                " | ".join(c.rjust(w) for c, w in zip(cells, widths)).rstrip()
            )
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)
