"""Step 1 of ParTime: scanning a partition into a delta map.

This module contains the three generators of the paper, each in two
flavours:

* ``mode="pure"`` — a per-record loop that is line-for-line the paper's
  pseudo-code (Figures 7, 9 and 10), kept for clarity and as a reference
  implementation;
* ``mode="vectorized"`` — the same computation expressed as NumPy array
  operations, which is what a tight C++ scan loop compiles to and what the
  benchmarks use.  Property tests assert the two produce identical delta
  maps.

Step 1 is embarrassingly parallel: it is called once per partition chunk,
with no coordination between chunks (Section 3.2).  Records that the
query's predicate rejects are filtered out *before* delta generation
(Section 3.2.1, the "Rows 1, 4, and 8 are ignored" example); additionally
a record's validity is clamped to the query interval of the varied
dimension, which implements range-restricted queries such as TPC-BiH r3/r4.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aggregates import AggregateFunction
from repro.core.deltamap import (
    ArrayDeltaMap,
    BTreeDeltaMap,
    ColumnarDeltaMap,
    DeltaMap,
    HashDeltaMap,
    MultiDimDeltaMap,
)
from repro.core.window import WindowSpec
from repro.obs.metrics import metrics
from repro.temporal.predicates import Predicate
from repro.temporal.table import TableChunk
from repro.temporal.timestamps import FOREVER, Interval, MIN_TIME

_BACKENDS = {"btree": BTreeDeltaMap, "hash": HashDeltaMap}

#: The delta-map representations the `deltamap=` switch accepts:
#: ``"columnar"`` selects the NumPy kernels (with per-aggregate scalar
#: fallback), the rest name a scalar oracle backend.
DELTA_MAP_MODES = ("columnar",) + tuple(sorted(_BACKENDS))


def resolve_deltamap(mode: str, backend: str, deltamap: str | None) -> str:
    """Canonicalise the (legacy ``mode``/``backend``, new ``deltamap``)
    triple into one delta-map choice.

    ``deltamap`` wins when given; otherwise the legacy knobs map onto the
    equivalent representation (``vectorized`` was always the columnar
    sorted-array build, ``pure`` builds on ``backend``).
    """
    if mode not in ("pure", "vectorized"):
        raise ValueError(f"unknown mode {mode!r}")
    if deltamap is None:
        deltamap = "columnar" if mode == "vectorized" else backend
    if deltamap not in DELTA_MAP_MODES:
        raise ValueError(
            f"unknown deltamap {deltamap!r}; known: {sorted(DELTA_MAP_MODES)}"
        )
    return deltamap


def _count_scan(chunk: TableChunk) -> None:
    """Book the partition scan with the observability layer.

    Counted *before* predicate filtering: Step 1 reads every record of its
    chunk (the predicate test itself is part of the scan), so the counter
    reflects work done, not rows kept.
    """
    metrics().counter("step1.rows_scanned").add(len(chunk))


def _make_backend(backend: str, aggregate: AggregateFunction) -> DeltaMap:
    try:
        return _BACKENDS[backend](aggregate)
    except KeyError:
        raise ValueError(
            f"unknown delta-map backend {backend!r}; known: {sorted(_BACKENDS)}"
        ) from None


def _filtered(chunk: TableChunk, predicate: Predicate | None) -> TableChunk:
    if predicate is None:
        return chunk
    return chunk.select(predicate.mask(chunk))


def _project(
    chunk: TableChunk,
    predicate: Predicate | None,
    columns: Sequence[str],
) -> dict[str, np.ndarray]:
    """Predicate-filtered views of only the named columns.

    ``chunk.select`` would copy every column of the partition; Step 1 only
    touches the varied dimension's boundaries and the value column, so the
    filter is applied per needed column — the moral equivalent of the
    column-at-a-time access of a real columnar scan.
    """
    mask = None if predicate is None else predicate.mask(chunk)
    out = {}
    for name in columns:
        col = chunk.column(name)
        out[name] = col if mask is None else col[mask]
    return out


def _value_array(chunk: TableChunk, value_column: str | None) -> np.ndarray:
    if value_column is None:
        return np.ones(len(chunk), dtype=np.float64)
    return chunk.column(value_column).astype(np.float64)


def generate_delta_map(
    chunk: TableChunk,
    value_column: str | None,
    dim: str,
    aggregate: AggregateFunction,
    predicate: Predicate | None = None,
    query_interval: Interval | None = None,
    mode: str = "vectorized",
    backend: str = "btree",
    deltamap: str | None = None,
) -> DeltaMap:
    """General one-dimensional Step 1 (Figure 7).

    Scans ``chunk``, and for every record that passes ``predicate`` and
    whose validity in ``dim`` intersects ``query_interval``, contributes
    ``+value`` at the (clamped) start of its validity and ``-value`` at the
    (clamped) end — unless the record is valid beyond the query interval,
    in which case no end event is generated (the ``validTo != ∞`` test of
    the pseudo-code).

    ``value_column=None`` aggregates ``COUNT(*)``-style with value 1.
    ``deltamap="columnar"`` builds a :class:`ColumnarDeltaMap` with the
    NumPy kernels where the aggregate permits (SUM/COUNT/AVG always;
    MIN/MAX when the chunk is append-only within the query interval) and
    falls back to the scalar b-tree loop otherwise.
    """
    deltamap = resolve_deltamap(mode, backend, deltamap)
    qlo = MIN_TIME if query_interval is None else query_interval.start
    qhi = FOREVER if query_interval is None else query_interval.end
    start_col = f"{dim}_start"
    end_col = f"{dim}_end"
    _count_scan(chunk)

    if deltamap == "columnar" and (
        aggregate.columnar or aggregate.name in ("min", "max")
    ):
        needed = [start_col, end_col]
        if value_column is not None:
            needed.append(value_column)
        cols = _project(chunk, predicate, needed)
        starts = np.maximum(cols[start_col], qlo)
        ends = np.minimum(cols[end_col], qhi)
        if value_column is None:
            values = np.ones(len(starts), dtype=np.float64)
        else:
            values = cols[value_column].astype(np.float64)
        live = starts < ends
        starts, ends, values = starts[live], ends[live], values[live]
        expiring = ends < qhi
        dm: ColumnarDeltaMap | None = None
        if aggregate.columnar:
            timestamps = np.concatenate([starts, ends[expiring]])
            if aggregate.name == "count":
                vals = np.concatenate(
                    [np.ones(len(starts)), -np.ones(int(expiring.sum()))]
                )
            else:
                vals = np.concatenate([values, -values[expiring]])
            counts = np.concatenate(
                [np.ones(len(starts), dtype=np.int64),
                 -np.ones(int(expiring.sum()), dtype=np.int64)]
            )
            dm = ColumnarDeltaMap.from_events(aggregate, timestamps, vals, counts)
        elif not expiring.any():
            # MIN/MAX over an append-only interval: an accumulate can
            # absorb new extremes but never retract one, so the columnar
            # representation is exact exactly when nothing expires.
            dm = ColumnarDeltaMap.from_extreme_events(aggregate, starts, values)
        if dm is not None:
            metrics().counter("step1.delta_entries").add(len(dm))
            return dm

    # Pure per-record path (the scalar oracle; also the fallback for
    # aggregates/chunks the columnar kernels cannot express).
    chunk = _filtered(chunk, predicate)
    dm = _make_backend(backend if deltamap == "columnar" else deltamap, aggregate)
    for record in chunk.records():
        value = 1 if value_column is None else record[value_column]
        valid_from = max(int(record[start_col]), qlo)
        valid_to = min(int(record[end_col]), qhi)
        if valid_from >= valid_to:
            continue
        dm.put(valid_from, aggregate.make_delta(value, +1))
        if valid_to < qhi:
            dm.put(valid_to, aggregate.make_delta(value, -1))
    metrics().counter("step1.delta_entries").add(len(dm))
    return dm


def generate_windowed_delta_map(
    chunk: TableChunk,
    value_column: str | None,
    dim: str,
    window: WindowSpec,
    aggregate: AggregateFunction,
    predicate: Predicate | None = None,
    mode: str = "vectorized",
) -> ArrayDeltaMap | tuple[np.ndarray, np.ndarray]:
    """Windowed Step 1 (Figure 9): the delta map is a fixed-size array.

    The ``dm-put`` of the general algorithm becomes a direct array store at
    the window bucket of the timestamp.  The vectorized flavour returns the
    raw ``(value_deltas, count_deltas)`` arrays of length ``count + 1``
    (slot ``count`` collects out-of-window events and is discarded by the
    merge); the pure flavour returns an :class:`ArrayDeltaMap`.
    """
    start_col = f"{dim}_start"
    end_col = f"{dim}_end"
    _count_scan(chunk)

    if mode == "vectorized" and aggregate.columnar:
        needed = [start_col, end_col]
        if value_column is not None and aggregate.name != "count":
            needed.append(value_column)
        cols = _project(chunk, predicate, needed)
        start_buckets = window.buckets(cols[start_col])
        end_buckets = window.buckets(cols[end_col])
        if value_column is None or aggregate.name == "count":
            values = np.ones(len(start_buckets), dtype=np.float64)
        else:
            values = cols[value_column].astype(np.float64)
        val_deltas = np.zeros(window.count + 1, dtype=np.float64)
        cnt_deltas = np.zeros(window.count + 1, dtype=np.int64)
        np.add.at(val_deltas, start_buckets, values)
        np.add.at(val_deltas, end_buckets, -values)
        np.add.at(cnt_deltas, start_buckets, 1)
        np.add.at(cnt_deltas, end_buckets, -1)
        occupied = (val_deltas != 0.0) | (cnt_deltas != 0)
        metrics().counter("step1.delta_entries").add(int(occupied.sum()))
        return val_deltas, cnt_deltas

    if mode not in ("pure", "vectorized"):
        raise ValueError(f"unknown mode {mode!r}")
    chunk = _filtered(chunk, predicate)
    dm = ArrayDeltaMap(aggregate, window.count)
    for record in chunk.records():
        value = 1 if value_column is None else record[value_column]
        from_bucket = window.bucket(int(record[start_col]))
        to_bucket = window.bucket(int(record[end_col]))
        if from_bucket >= to_bucket:
            continue  # never visible at any sample point
        dm.put(from_bucket, aggregate.make_delta(value, +1))
        if to_bucket <= window.count:
            dm.put(to_bucket, aggregate.make_delta(value, -1))
    metrics().counter("step1.delta_entries").add(len(dm))
    return dm


def generate_multidim_delta_map(
    chunk: TableChunk,
    value_column: str | None,
    dims: Sequence[str],
    pivot: str,
    aggregate: AggregateFunction,
    predicate: Predicate | None = None,
    query_intervals: dict[str, Interval] | None = None,
) -> MultiDimDeltaMap:
    """Multi-dimensional Step 1 (Figure 10).

    ``dims`` are the varied time dimensions of the query; ``pivot`` must be
    one of them.  For every record, the validity intervals of all non-pivot
    dimensions are captured in the delta key, and the pivot validity is
    turned into a ``+delta`` event at its start plus, if it expires inside
    the query range, a ``-delta`` event at its end.  As in the paper, the
    pivot component is kept last in the key.

    ``query_intervals`` optionally clamps each dimension to a range,
    generalising the 1-D ``query_interval``.
    """
    if pivot not in dims:
        raise ValueError(f"pivot {pivot!r} is not among the varied dims {dims}")
    nonpivot = [d for d in dims if d != pivot]
    bounds = query_intervals or {}
    _count_scan(chunk)

    def clamp_of(d: str) -> tuple[int, int]:
        iv = bounds.get(d)
        return (MIN_TIME, FOREVER) if iv is None else (iv.start, iv.end)

    chunk = _filtered(chunk, predicate)
    dm = MultiDimDeltaMap(aggregate)
    p_lo, p_hi = clamp_of(pivot)
    np_clamps = [clamp_of(d) for d in nonpivot]

    for record in chunk.records():
        value = 1 if value_column is None else record[value_column]
        pivot_begin = max(int(record[f"{pivot}_start"]), p_lo)
        pivot_end = min(int(record[f"{pivot}_end"]), p_hi)
        if pivot_begin >= pivot_end:
            continue
        key_parts: list[int] = []
        dead = False
        for d, (lo, hi) in zip(nonpivot, np_clamps):
            s = max(int(record[f"{d}_start"]), lo)
            e = min(int(record[f"{d}_end"]), hi)
            if s >= e:
                dead = True
                break
            key_parts.append(s)
            key_parts.append(e)
        if dead:
            continue
        nonpivot_key = tuple(key_parts)
        dm.put_event(pivot_begin, nonpivot_key, aggregate.make_delta(value, +1))
        if pivot_end < p_hi:
            dm.put_event(pivot_end, nonpivot_key, aggregate.make_delta(value, -1))
    metrics().counter("step1.delta_entries").add(len(dm))
    return dm
