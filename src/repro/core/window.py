"""Window specifications for windowed temporal aggregation (Section 3.3).

A *windowed* temporal aggregation query samples the aggregate at a known,
fixed grid of points in time — e.g. "the total payroll at the beginning of
each year" (Example 3, Figure 4).  Because the result size is known in
advance, Step 1 can use a plain array as the delta map (Figure 9) instead
of a dynamic B-tree.

:class:`WindowSpec` describes the grid: ``count`` sample points starting at
``origin``, ``stride`` apart.  A record valid over ``[start, end)`` is
visible at sample point ``p`` iff ``start <= p < end``; translated to array
indices, the record contributes ``+value`` at ``bucket(start)`` and
``-value`` at ``bucket(end)``, where ``bucket`` rounds *up* to the next
sample point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.temporal.timestamps import FOREVER, Interval


@dataclass(frozen=True)
class WindowSpec:
    """A fixed grid of ``count`` sample points: origin + i * stride."""

    origin: int
    stride: int
    count: int

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if self.count <= 0:
            raise ValueError("need at least one sample point")

    @classmethod
    def covering(cls, interval: Interval, stride: int) -> "WindowSpec":
        """The grid with the given stride whose points cover ``interval``."""
        count = max(1, -(-(interval.end - interval.start) // stride))
        return cls(interval.start, stride, count)

    def points(self) -> np.ndarray:
        """All sample points as an int64 array."""
        return self.origin + self.stride * np.arange(self.count, dtype=np.int64)

    def point(self, i: int) -> int:
        if not 0 <= i < self.count:
            raise IndexError(i)
        return self.origin + i * self.stride

    def bucket(self, ts: int) -> int:
        """Index of the first sample point >= ``ts``, clamped to
        ``[0, count]``.  Index ``count`` means "beyond the window" — a
        start there never becomes visible, an end there never expires
        within the window."""
        if ts >= FOREVER:
            return self.count
        i = -(-(ts - self.origin) // self.stride)  # ceil division
        if i < 0:
            return 0
        if i > self.count:
            return self.count
        return int(i)

    def buckets(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bucket`."""
        ts = np.asarray(ts, dtype=np.int64)
        # Avoid overflow on FOREVER sentinels: clamp before arithmetic.
        hi = self.origin + self.stride * (self.count + 1)
        clamped = np.minimum(ts, hi)
        idx = -((self.origin - clamped) // self.stride)
        return np.clip(idx, 0, self.count).astype(np.int64)
