"""The runtime side of ``repro.faults``: injectors, retry sessions, and
the ambient activation used by ``python -m repro bench --faults``.

A :class:`FaultInjector` pairs a (stateless, deterministic)
:class:`~repro.faults.plan.FaultPlan` with a
:class:`~repro.faults.plan.RetryPolicy` and carries the only mutable
state of the plane: per-site sequence counters, the recorded fault
history, and the injected/retried/gave-up totals.  Executors open one
:class:`PhaseSession` per phase and run every task attempt through
:meth:`PhaseSession.execute`, which

* draws the attempt's fault from the plan (pure, order-independent);
* lets the backend-specific ``attempt_fn`` enact it (raise, kill a
  worker, fail an shm attach, stretch a duration);
* on an injected failure, books the retry and its deterministic
  exponential-backoff wait, then tries again;
* after ``max_attempts`` (or past the policy's per-phase simulated
  timeout) raises
  :class:`~repro.simtime.executor.ExecutorTaskError` carrying the full
  attempt history.

Backoff waits are accumulated per ``(task, attempt)`` and summed in
sorted key order at :meth:`PhaseSession.finish`, so the booked
``faults.backoff`` phase — and the ``faults.backoff_seconds`` counter —
are bit-identical across serial, thread and process backends even though
threads retire tasks in nondeterministic order.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.faults.plan import (
    FAILING_KINDS,
    TASK_KINDS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.obs.events import events
from repro.obs.metrics import metrics
from repro.simtime.measure import measured

#: Phase-label suffixes that name *which kernel* ran, not *what phase* it
#: was (``partime.step1.columnar`` is the same logical phase as
#: ``partime.step1``).  Fault sites strip them so a columnar run draws
#: the exact same deterministic fault schedule as its scalar oracle —
#: the chaos-parity suites assert identical injected/retry totals across
#: ``deltamap=`` modes, which only holds if labels and sites decouple.
_KERNEL_SUFFIXES = (".columnar", ".vectorized")


def fault_site(label: str) -> str:
    """Canonical fault-plan site for a phase label."""
    for suffix in _KERNEL_SUFFIXES:
        if label.endswith(suffix):
            return label[: -len(suffix)]
    return label


class FaultInjector:
    """Mutable runtime state of one fault-injection run.

    Create one injector per run (the chaos-parity tests create one per
    backend with the *same* plan); share it between the executors, WAL
    and engines that should draw from the same schedule.
    """

    def __init__(self, plan: FaultPlan, policy: RetryPolicy | None = None) -> None:
        self.plan = plan
        self.policy = policy or RetryPolicy()
        self._lock = threading.Lock()
        self._site_seq: dict[str, int] = {}
        self._history: list[FaultSpec] = []
        self.injected = 0
        self.retries = 0
        self.gave_up = 0
        self.backoff_seconds = 0.0

    def begin_phase(
        self, label: str, kinds: tuple[str, ...] = TASK_KINDS
    ) -> "PhaseSession":
        """Open the next session for a phase labelled ``label``.

        The per-site sequence number distinguishes repeated phases (every
        ``partime.step1`` of a workload gets its own draws) and is part of
        the plan's site key, so backends that execute the same logical
        phase sequence see the same faults.  Labels canonicalise through
        :func:`fault_site` first, so kernel-variant suffixes don't fork
        the schedule.
        """
        site = fault_site(label)
        with self._lock:
            seq = self._site_seq.get(site, 0)
            self._site_seq[site] = seq + 1
        return PhaseSession(self, site, seq, kinds)

    def history(self) -> tuple[FaultSpec, ...]:
        """Every fault injected so far, in deterministic (sorted) order."""
        with self._lock:
            return tuple(sorted(self._history))

    def summary(self) -> dict:
        """Plan parameters + totals, as embedded in bench telemetry."""
        with self._lock:
            return {
                "seed": self.plan.seed,
                "rate": self.plan.rate,
                "kinds": list(self.plan.kinds),
                "injected": self.injected,
                "retries": self.retries,
                "gave_up": self.gave_up,
                "backoff_seconds": self.backoff_seconds,
            }

    # ------------------------------------------------- internal bookkeeping

    def _record_injected(self, spec: FaultSpec) -> None:
        with self._lock:
            self._history.append(spec)
            self.injected += 1
        metrics().counter("faults.injected").add(1)
        events().emit(
            "fault_injected",
            site=spec.site,
            task=spec.task,
            attempt=spec.attempt,
            fault=spec.kind,
        )

    def _record_retry(self, spec: FaultSpec | None = None) -> None:
        with self._lock:
            self.retries += 1
        metrics().counter("faults.retries").add(1)
        fields = (
            {"site": spec.site, "task": spec.task, "fault": spec.kind}
            if spec is not None
            else {}
        )
        events().emit("fault_retry", **fields)

    def _record_gave_up(self, spec: FaultSpec | None = None) -> None:
        with self._lock:
            self.gave_up += 1
        metrics().counter("faults.gave_up").add(1)
        fields = (
            {"site": spec.site, "task": spec.task, "fault": spec.kind}
            if spec is not None
            else {}
        )
        events().emit("fault_gave_up", **fields)

    def _record_backoff(self, seconds: float) -> None:
        with self._lock:
            self.backoff_seconds += seconds
        metrics().counter("faults.backoff_seconds").add(seconds)


class PhaseSession:
    """Retry bookkeeping for one phase (one ``map_parallel``/``run_serial``
    call, or one WAL append)."""

    def __init__(
        self,
        injector: FaultInjector,
        phase: str,
        seq: int,
        kinds: tuple[str, ...],
    ) -> None:
        self.injector = injector
        self.phase = phase
        self.seq = seq
        self.kinds = kinds
        self._lock = threading.Lock()
        #: Backoff waits keyed by (task, attempt): summing them in sorted
        #: key order keeps the booked total independent of thread timing.
        self._backoff: dict[tuple[int, int], float] = {}
        self._specs: dict[int, list[FaultSpec]] = {}
        self.retries = 0

    # ----------------------------------------------------------- execution

    def execute(
        self,
        index: int,
        attempt_fn: Callable[[FaultSpec | None], tuple[Any, float]],
    ) -> tuple[Any, float]:
        """Run one task with retries.

        ``attempt_fn(spec)`` performs a single attempt: it must enact
        ``spec`` (raise :class:`FaultInjected` for failing kinds — see
        :func:`attempt_locally` — or inflate the measured duration for
        ``slow_task``) and return ``(result, seconds)``.  Genuine
        exceptions from the task body are *not* retried: the plane only
        absorbs the faults it injected, so real bugs still surface
        immediately.
        """
        plan = self.injector.plan
        policy = self.injector.policy
        for attempt in range(1, policy.max_attempts + 1):
            spec = plan.draw(self.phase, self.seq, index, attempt, self.kinds)
            if spec is not None:
                self._note_spec(index, spec)
                self.injector._record_injected(spec)
            try:
                return attempt_fn(spec)
            except FaultInjected as exc:
                jitter = plan.backoff_jitter(self.phase, self.seq, index, attempt)
                delay = policy.backoff_delay(attempt, jitter)
                exhausted = attempt >= policy.max_attempts
                over_budget = (
                    policy.phase_timeout is not None
                    and self.backoff_total() + delay > policy.phase_timeout
                )
                if exhausted or over_budget:
                    self.injector._record_gave_up(spec)
                    raise self._give_up_error(index, attempt, over_budget) from exc
                with self._lock:
                    self._backoff[(index, attempt)] = delay
                    self.retries += 1
                self.injector._record_retry(spec)
        raise AssertionError("unreachable: retry loop exits via return/raise")

    def _note_spec(self, index: int, spec: FaultSpec) -> None:
        with self._lock:
            self._specs.setdefault(index, []).append(spec)

    def _give_up_error(self, index: int, attempts: int, over_budget: bool):
        from repro.simtime.executor import ExecutorTaskError  # cycle-free at call time

        with self._lock:
            history = tuple(self._specs.get(index, ()))
        kinds = ", ".join(s.kind for s in history) or "?"
        why = (
            "per-phase retry budget exhausted"
            if over_budget
            else f"all {attempts} attempt(s) faulted"
        )
        error = ExecutorTaskError(
            self.phase,
            index,
            f"{why} under fault plan seed={self.injector.plan.seed} "
            f"(injected: {kinds})",
            attempts=history,
        )
        return error

    # ---------------------------------------------------------- accounting

    def backoff_total(self) -> float:
        """Simulated backoff accumulated by this phase (deterministic)."""
        with self._lock:
            return sum(v for _k, v in sorted(self._backoff.items()))

    def finish(self, clock=None) -> None:
        """Book this phase's retry overhead.

        The accumulated backoff becomes one ``faults.backoff`` serial
        booking on ``clock`` (mirrored into spans/schedules/Chrome traces
        like every other phase) and is added to the
        ``faults.backoff_seconds`` counter.  No-op when nothing faulted.
        """
        total = self.backoff_total()
        if total <= 0.0:
            return
        self.injector._record_backoff(total)
        if clock is not None:
            clock.serial(
                "faults.backoff",
                total,
                meta={"phase": self.phase, "retries": self.retries},
            )


# ---------------------------------------------------------------------------
# Backend-side enactment helpers
# ---------------------------------------------------------------------------


def attempt_locally(
    spec: FaultSpec | None, fn: Callable, item: Any
) -> tuple[Any, float]:
    """One in-process task attempt under a fault spec.

    Failing kinds raise *before* the task body runs (so a retried task
    performs its work exactly once — results and engine metrics stay
    bit-identical to a fault-free run); ``slow_task`` runs the body and
    stretches the measured duration by the plan's multiplier.  Used by
    the serial and thread executors; the process executor ships the
    enactment to its workers instead (real worker kills, real shm-attach
    failures).
    """
    if spec is not None and spec.kind in FAILING_KINDS:
        raise FaultInjected(spec.kind, site=spec.site)
    with measured() as sw:
        result = fn(item)
    seconds = sw.elapsed
    if spec is not None and spec.kind == "slow_task":
        seconds *= spec.multiplier
    return result, seconds


def make_injector(
    faults: "FaultInjector | FaultPlan | int | str | None",
    retry: RetryPolicy | None = None,
) -> FaultInjector | None:
    """Normalise the ``faults=`` argument engines accept.

    ``None`` stays ``None``; an injector passes through (sharing its
    schedule); a plan / seed / ``"SEED[:RATE]"`` string becomes a fresh
    injector with ``retry`` (or the default policy).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    plan = FaultPlan.parse(faults)
    if plan is None:  # pragma: no cover — parse(None) handled above
        return None
    return FaultInjector(plan, retry)


# ---------------------------------------------------------------------------
# Ambient activation (the bench runner / CLI integration)
# ---------------------------------------------------------------------------

_ACTIVE: FaultInjector | None = None


def current_injector() -> FaultInjector | None:
    """The ambient injector, or ``None`` when fault injection is off.

    Executors and the :class:`~repro.storage.recovery.WriteAheadLog` pick
    this up at *construction* time (mirroring the tracer's activation
    pattern), which is how ``python -m repro bench <name> --faults SEED``
    threads one plan through every engine a benchmark builds without the
    22 benchmark scripts knowing faults exist.
    """
    return _ACTIVE


@contextmanager
def fault_injection(
    faults: "FaultInjector | FaultPlan | int | str",
    retry: RetryPolicy | None = None,
) -> Iterator[FaultInjector]:
    """Activate an injector for the ``with`` block (re-entrant: the outer
    injector is restored on exit)."""
    global _ACTIVE
    injector = make_injector(faults, retry)
    if injector is None:
        raise ValueError("fault_injection() needs a plan, seed or injector")
    outer = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = outer
