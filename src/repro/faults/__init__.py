"""``repro.faults`` — deterministic fault injection + retry/backoff.

The production-readiness plane of the reproduction (see
docs/fault_injection.md): a seeded :class:`FaultPlan` schedules task
exceptions, worker kills, shared-memory attach failures, torn WAL
records and straggler latency across the execution stack; a
:class:`RetryPolicy` (bounded attempts, exponential backoff with
deterministic jitter, per-phase timeouts) absorbs them, booking every
retry and backoff wait into the :class:`~repro.simtime.clock.SimClock`
so slowdown-under-faults is a first-class observable.

Determinism contract: the same seed produces the same fault schedule,
the same retry metrics and — because failing faults fire *before* task
bodies run — query results bit-identical to a fault-free run, on every
execution backend.  Pinned by ``tests/test_fault_injection.py``, the
chaos-parity suite in ``tests/test_executor_parity.py`` and the
Hypothesis chaos fuzzer in ``tests/test_chaos_fuzzer.py``.
"""

from repro.faults.inject import (
    FaultInjector,
    PhaseSession,
    attempt_locally,
    current_injector,
    fault_injection,
    make_injector,
)
from repro.faults.plan import (
    FAILING_KINDS,
    FAULT_KINDS,
    TASK_KINDS,
    WAL_KINDS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)

__all__ = [
    "FAILING_KINDS",
    "FAULT_KINDS",
    "TASK_KINDS",
    "WAL_KINDS",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "PhaseSession",
    "RetryPolicy",
    "attempt_locally",
    "current_injector",
    "fault_injection",
    "make_injector",
]
