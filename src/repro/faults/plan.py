"""Deterministic fault plans and retry policies — the data side of
``repro.faults``.

A :class:`FaultPlan` is a *pure function* from injection sites to faults.
It holds no mutable RNG stream: every draw re-seeds a private
``random.Random`` from ``(plan seed, site label, site sequence, task
index, attempt)``, so the decision for any site is independent of the
order in which sites are visited.  That property is what makes the whole
plane deterministic across execution backends — a thread pool may retire
tasks in any order, a process pool may interleave phases differently, and
the same seed still produces the *same* fault schedule (the contract
pinned by the chaos-parity suite in ``tests/test_executor_parity.py`` and
documented in docs/fault_injection.md).

The vocabulary:

* ``task_error`` — the task raises before doing any work;
* ``worker_kill`` — the worker executing the task dies (the process
  backend genuinely ``os._exit``\\ s a pool worker; serial/thread
  backends simulate the death as an injected exception);
* ``shm_attach`` — attaching the task's shared-memory chunk fails (the
  process backend enacts it through the attach hook of
  :mod:`repro.simtime.shm`; other backends simulate it);
* ``slow_task`` — the task runs normally but its measured duration is
  inflated by a deterministic latency multiplier (a straggler);
* ``wal_torn`` — a :meth:`~repro.storage.recovery.WriteAheadLog.append`
  writes only a prefix of its record and then "crashes".

Faults that fail the attempt (everything but ``slow_task``) are injected
*before* the task body runs.  A retried task therefore performs its work
exactly once, which is why fault-injected runs return results — and
engine metric snapshots — bit-identical to fault-free runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Fault kinds injectable at executor task sites.
TASK_KINDS = ("task_error", "worker_kill", "shm_attach", "slow_task")

#: Fault kinds injectable at write-ahead-log append sites.
WAL_KINDS = ("wal_torn",)

#: The full fault taxonomy (see docs/fault_injection.md).
FAULT_KINDS = TASK_KINDS + WAL_KINDS

#: Task-site kinds that fail the attempt (as opposed to slowing it down).
FAILING_KINDS = ("task_error", "worker_kill", "shm_attach", "wal_torn")


class FaultInjected(RuntimeError):
    """An injected fault fired.

    Raised by the fault plane itself (never by engine code) and caught by
    the retry layer; crossing a process boundary must preserve the kind,
    hence the explicit ``__reduce__``.
    """

    def __init__(self, kind: str, site: str = "", detail: str = "") -> None:
        where = f" at {site!r}" if site else ""
        extra = f" ({detail})" if detail else ""
        super().__init__(f"injected fault {kind!r}{where}{extra}")
        self.kind = kind
        self.site = site
        self.detail = detail

    def __reduce__(self):
        return (FaultInjected, (self.kind, self.site, self.detail))


@dataclass(frozen=True, order=True)
class FaultSpec:
    """One concrete injected fault: where, when, and what.

    ``site`` is the phase label (or ``"wal.append"``), ``seq`` the
    per-site sequence number (the n-th phase with that label), ``task``
    the task index within the phase, ``attempt`` the 1-based attempt the
    fault fires on.  ``multiplier`` is the latency factor of a
    ``slow_task``; ``fraction`` the tear point of a ``wal_torn`` record.
    Ordered, so fault histories can be compared independently of the
    (backend-specific) order in which they were recorded.
    """

    site: str
    seq: int
    task: int
    attempt: int
    kind: str
    multiplier: float = 1.0
    fraction: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of faults.

    ``rate`` is the per-(site, task, attempt) injection probability;
    ``kinds`` restricts the taxonomy (sites additionally pass the kinds
    that make sense for them — executors never draw ``wal_torn``, the WAL
    never draws ``worker_kill``); ``latency`` bounds the ``slow_task``
    multiplier, drawn uniformly from ``[1, latency]``.

    >>> plan = FaultPlan(seed=7, rate=1.0)
    >>> spec = plan.draw("partime.step1", 0, 2, 1)
    >>> spec == plan.draw("partime.step1", 0, 2, 1)  # pure function
    True
    """

    seed: int
    rate: float = 0.1
    kinds: tuple[str, ...] = FAULT_KINDS
    latency: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        unknown = [k for k in self.kinds if k not in FAULT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {unknown}; known: {FAULT_KINDS}"
            )
        if self.latency < 1.0:
            raise ValueError("slow-task latency multiplier must be >= 1")

    # ------------------------------------------------------------- parsing

    @classmethod
    def parse(
        cls, spec: "FaultPlan | int | str | None"
    ) -> "FaultPlan | None":
        """Build a plan from a CLI-style spec: ``SEED`` or ``SEED:RATE``.

        Accepts an existing plan (returned as-is), an integer seed, or a
        string like ``"1337"`` / ``"1337:0.25"``; ``None`` stays ``None``.
        """
        if spec is None:
            return None
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, bool):  # bool is an int; reject explicitly
            raise TypeError("fault spec must be a seed, 'SEED[:RATE]' or a FaultPlan")
        if isinstance(spec, int):
            return cls(seed=spec)
        if isinstance(spec, str):
            text = spec.strip()
            try:
                if ":" in text:
                    seed_text, rate_text = text.split(":", 1)
                    return cls(seed=int(seed_text), rate=float(rate_text))
                return cls(seed=int(text))
            except ValueError as exc:
                raise ValueError(
                    f"bad fault spec {spec!r}: expected SEED or SEED:RATE"
                ) from exc
        raise TypeError(
            f"fault spec must be a seed, 'SEED[:RATE]' or a FaultPlan, "
            f"got {type(spec).__name__}"
        )

    # --------------------------------------------------------------- draws

    def _rng(self, *key) -> random.Random:
        """A private RNG for one injection site.

        Seeding ``random.Random`` with a string hashes it through SHA-512
        (``seed(a, version=2)``) — stable across processes, platforms and
        ``PYTHONHASHSEED``, which is exactly the determinism the
        cross-backend contract needs.
        """
        return random.Random("|".join(str(part) for part in (self.seed, *key)))

    def draw(
        self,
        site: str,
        seq: int,
        task: int,
        attempt: int,
        kinds: tuple[str, ...] = TASK_KINDS,
    ) -> FaultSpec | None:
        """The fault (if any) scheduled for one attempt at one site.

        Pure: same arguments, same answer — regardless of call order,
        thread interleaving or backend.
        """
        enabled = tuple(k for k in kinds if k in self.kinds)
        if not enabled:
            return None
        rng = self._rng(site, seq, task, attempt)
        if rng.random() >= self.rate:
            return None
        kind = enabled[rng.randrange(len(enabled))]
        multiplier = 1.0
        fraction = 0.0
        if kind == "slow_task":
            multiplier = 1.0 + rng.random() * (self.latency - 1.0)
        elif kind == "wal_torn":
            fraction = rng.random()
        return FaultSpec(site, seq, task, attempt, kind, multiplier, fraction)

    def backoff_jitter(self, site: str, seq: int, task: int, attempt: int) -> float:
        """Deterministic jitter in ``[0, 1)`` for one backoff wait."""
        return self._rng("backoff", site, seq, task, attempt).random()


@dataclass(frozen=True)
class RetryPolicy:
    """How faulted operations are retried (and when they give up).

    * ``max_attempts`` — total attempts per task (first try included);
    * exponential backoff: attempt ``k`` waits
      ``base_delay * multiplier**(k-1)``, stretched by up to ``jitter``
      (the jitter fraction is drawn deterministically from the plan);
    * ``phase_timeout`` — a *simulated-seconds* budget per phase: when the
      accumulated backoff of a phase would exceed it, the task gives up
      early instead of waiting further (per-phase timeout semantics).

    Backoff waits are never slept for real — they are *booked* into the
    executor's :class:`~repro.simtime.clock.SimClock` as
    ``faults.backoff`` serial phases, so slowdown-under-faults shows up in
    ``sim_elapsed``, span trees, schedules and Chrome traces exactly like
    any other cost.
    """

    max_attempts: int = 5
    base_delay: float = 0.005
    multiplier: float = 2.0
    jitter: float = 0.5
    phase_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay < 0 or self.jitter < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.phase_timeout is not None and self.phase_timeout < 0:
            raise ValueError("phase_timeout must be non-negative")

    def backoff_delay(self, attempt: int, jitter_u: float) -> float:
        """The simulated wait after failed attempt ``attempt`` (1-based)."""
        base = self.base_delay * self.multiplier ** (attempt - 1)
        return base * (1.0 + self.jitter * jitter_u)
