"""The TPC-BiH bi-temporal benchmark ([14], Kaufmann et al., TPCTC 2013).

TPC-BiH starts from a TPC-H database (version 0) and generates history by
running TPC-C-style update transactions, each commit creating a new
version.  This module provides:

* :class:`TPCBiHDataset` — a scaled synthetic instance: a ``customer``
  table (with residence business time — the substrate of queries r1-r4)
  and an ``orders`` table (with order-validity business time — the
  substrate of the time-travel and key-in-time queries);
* :data:`TPCBIH_QUERIES` — constructors for all 13 queries of Table 2,
  expressed against the engine-neutral query vocabulary so every engine
  (ParTime/Crescando, Timeline, System D, System M) runs the same logical
  workload.

The scale factor follows the paper's convention in spirit: SF=1 is the
"small" database; absolute row counts are scaled down for a Python
substrate and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.query import TemporalAggregationQuery
from repro.core.window import WindowSpec
from repro.storage.queries import SelectQuery, TemporalAggQuery
from repro.temporal.predicates import (
    ColumnEquals,
    CurrentVersion,
    Overlaps,
    TimeTravel,
)
from repro.temporal.schema import Column, ColumnType, TableSchema
from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import FOREVER, Interval
from repro.workloads.bulk import append_rows, version_chain_bounds

#: TPC-H nation key of the United States.
US_NATION = 24
NUM_NATIONS = 25

ORDER_OPEN = 0
ORDER_SHIPPED = 1
ORDER_CLOSED = 2


@dataclass(frozen=True)
class TPCBiHConfig:
    """Scale knobs; ``scale_factor`` plays the role of TPC-H's SF."""

    scale_factor: float = 1.0
    customers_per_sf: int = 3_000
    orders_per_sf: int = 9_000
    avg_customer_versions: float = 2.5
    avg_order_versions: float = 3.0
    business_horizon_days: int = 2_400  # ~the TPC-H 1992-1998 span
    seed: int = 42

    @property
    def num_customers(self) -> int:
        return max(100, int(self.customers_per_sf * self.scale_factor))

    @property
    def num_orders(self) -> int:
        return max(300, int(self.orders_per_sf * self.scale_factor))


def customer_schema() -> TableSchema:
    return TableSchema(
        name="customer",
        columns=[
            Column("custkey", ColumnType.INT),
            Column("nationkey", ColumnType.INT),
            Column("segment", ColumnType.INT),
            Column("acctbal", ColumnType.FLOAT),
        ],
        business_dims=["bt"],  # residence validity
        key="custkey",
    )


def lineitem_schema() -> TableSchema:
    return TableSchema(
        name="lineitem",
        columns=[
            Column("linekey", ColumnType.INT),
            Column("orderkey", ColumnType.INT),
            Column("partkey", ColumnType.INT),
            Column("quantity", ColumnType.INT),
            Column("extendedprice", ColumnType.FLOAT),
        ],
        business_dims=["bt"],  # shipment validity
        key="linekey",
    )


def orders_schema() -> TableSchema:
    return TableSchema(
        name="orders",
        columns=[
            Column("orderkey", ColumnType.INT),
            Column("custkey", ColumnType.INT),
            Column("totalprice", ColumnType.FLOAT),
            Column("status", ColumnType.INT),
            Column("clerk", ColumnType.INT),
            Column("lead_days", ColumnType.INT),
        ],
        business_dims=["bt"],  # order validity (order date .. fulfilment)
        key="orderkey",
    )


class TPCBiHDataset:
    """One generated TPC-BiH instance."""

    def __init__(self, config: TPCBiHConfig = TPCBiHConfig()) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.customer = self._build_customer(rng)
        self.orders = self._build_orders(rng)
        self.lineitem = self._build_lineitem(rng)

    # ------------------------------------------------------------ tables

    def _build_customer(self, rng: np.random.Generator) -> TemporalTable:
        cfg = self.config
        table = TemporalTable(customer_schema())
        horizon = max(1000, cfg.num_customers)
        cust, tt_start, tt_end = version_chain_bounds(
            rng, cfg.num_customers, cfg.avg_customer_versions, horizon
        )
        n = len(cust)
        # Per-version residences: customers move between nations; a bias
        # toward the US makes queries r1-r4 moderately selective.
        nation = rng.integers(0, NUM_NATIONS, n)
        to_us = rng.random(n) < 0.15
        nation[to_us] = US_NATION
        segment = rng.integers(0, 5, cfg.num_customers)
        acctbal = np.round(rng.uniform(-999, 9_999, n), 2)
        # Residence validity: essentially unique boundaries per version —
        # the r2 corner case ("the query result has roughly the same size
        # as the whole temporal table", Section 5.4.2).
        bt_start = rng.integers(0, cfg.business_horizon_days, n)
        duration = rng.integers(30, 2_000, n)
        bt_end = bt_start + duration
        still_there = rng.random(n) < 0.4
        bt_end[still_there] = FOREVER
        append_rows(
            table,
            {
                "custkey": cust,
                "nationkey": nation,
                "segment": segment[cust],
                "acctbal": acctbal,
                "bt_start": bt_start,
                "bt_end": bt_end,
                "tt_start": tt_start,
                "tt_end": tt_end,
            },
        )
        return table

    def _build_orders(self, rng: np.random.Generator) -> TemporalTable:
        cfg = self.config
        table = TemporalTable(orders_schema())
        horizon = max(1000, cfg.num_orders)
        order, tt_start, tt_end = version_chain_bounds(
            rng, cfg.num_orders, cfg.avg_order_versions, horizon
        )
        n = len(order)
        custkey = rng.integers(0, cfg.num_customers, cfg.num_orders)
        clerk = rng.integers(0, 50, cfg.num_orders)
        orderdate = rng.integers(0, cfg.business_horizon_days - 200, cfg.num_orders)
        lead = rng.integers(1, 90, cfg.num_orders)
        totalprice = np.round(rng.uniform(100, 400_000, n), 2)
        status = rng.choice(
            [ORDER_OPEN, ORDER_SHIPPED, ORDER_CLOSED], size=n, p=[0.4, 0.35, 0.25]
        )
        bt_start = orderdate[order]
        bt_end = bt_start + rng.integers(10, 200, n)
        open_mask = status == ORDER_OPEN
        bt_end[open_mask] = FOREVER
        append_rows(
            table,
            {
                "orderkey": order,
                "custkey": custkey[order],
                "totalprice": totalprice,
                "status": status,
                "clerk": clerk[order],
                "lead_days": lead[order],
                "bt_start": bt_start,
                "bt_end": bt_end,
                "tt_start": tt_start,
                "tt_end": tt_end,
            },
        )
        return table

    def _build_lineitem(self, rng: np.random.Generator) -> TemporalTable:
        """1-4 line items per order; shipment validity nested inside the
        order's business validity so the temporal join orders x lineitem
        produces meaningful overlaps."""
        cfg = self.config
        table = TemporalTable(lineitem_schema())
        per_order = rng.integers(1, 5, cfg.num_orders)
        num_items = int(per_order.sum())
        orderkey = np.repeat(np.arange(cfg.num_orders, dtype=np.int64), per_order)
        item, tt_start, tt_end = version_chain_bounds(
            rng, num_items, 1.8, max(1000, num_items)
        )
        n = len(item)
        order_of_version = orderkey[item]
        # Shipment window: starts inside the order's lifetime.
        order_start = self.orders.column("bt_start")
        # Use the first version of each order as the anchor date.
        first_version_row = np.zeros(cfg.num_orders, dtype=np.int64)
        seen = set()
        okeys = self.orders.column("orderkey")
        for row in range(len(okeys)):
            k = int(okeys[row])
            if k not in seen:
                seen.add(k)
                first_version_row[k] = row
        anchor = order_start[first_version_row[order_of_version]]
        bt_start = anchor + rng.integers(0, 30, n)
        bt_end = bt_start + rng.integers(5, 120, n)
        append_rows(
            table,
            {
                "linekey": item,
                "orderkey": order_of_version,
                "partkey": rng.integers(0, 2_000, n),
                "quantity": rng.integers(1, 50, n),
                "extendedprice": np.round(rng.uniform(10, 90_000, n), 2),
                "bt_start": bt_start,
                "bt_end": bt_end,
                "tt_start": tt_start,
                "tt_end": tt_end,
            },
        )
        return table

    # ----------------------------------------------------------- helpers

    def mid_version(self, table: TemporalTable, fraction: float = 0.5) -> int:
        return int(table.current_version * fraction)

    def mid_day(self, fraction: float = 0.5) -> int:
        return int(self.config.business_horizon_days * fraction)


# --------------------------------------------------------------------------
# The Table 2 query set
# --------------------------------------------------------------------------


def _point_agg(predicate, at_day: int, value_column: str, aggregate="sum"):
    """An aggregate at a single business-time point — a windowed query
    with one sample point (the degenerate window of time travel)."""
    return TemporalAggregationQuery(
        varied_dims=("bt",),
        value_column=value_column,
        aggregate=aggregate,
        predicate=predicate,
        window=WindowSpec(at_day, 1, 1),
    )


def q_t2(ds: TPCBiHDataset):
    """t2: total revenue of all orders at a given business time, as
    recorded at a previous version."""
    v = ds.mid_version(ds.orders, 0.6)
    day = ds.mid_day(0.5)
    return "orders", TemporalAggQuery(
        _point_agg(TimeTravel("tt", v), day, "totalprice")
    )


def q_t3_sys(ds: TPCBiHDataset):
    """t3_sys: revenue of open orders at one business time, recorded at two
    versions — two point aggregations."""
    day = ds.mid_day(0.5)
    ops = []
    for frac in (0.3, 0.8):
        v = ds.mid_version(ds.orders, frac)
        pred = TimeTravel("tt", v) & ColumnEquals("status", ORDER_OPEN)
        ops.append(TemporalAggQuery(_point_agg(pred, day, "totalprice")))
    return "orders", ops


def q_t3_app(ds: TPCBiHDataset):
    """t3_app: revenue of open orders at two business times, current
    version."""
    ops = []
    for frac in (0.3, 0.8):
        pred = CurrentVersion("tt") & ColumnEquals("status", ORDER_OPEN)
        ops.append(
            TemporalAggQuery(_point_agg(pred, ds.mid_day(frac), "totalprice"))
        )
    return "orders", ops


def q_t6_sys(ds: TPCBiHDataset):
    """t6_sys: average revenue per customer over business time, at a given
    version — a full business-time aggregation."""
    v = ds.mid_version(ds.orders, 0.7)
    return "orders", TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("bt",),
            value_column="totalprice",
            aggregate="avg",
            predicate=TimeTravel("tt", v),
        )
    )


def q_t6_app(ds: TPCBiHDataset):
    """t6_app: average order revenue over history at a given business
    time — varies transaction time."""
    day = ds.mid_day(0.5)
    return "orders", TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("tt",),
            value_column="totalprice",
            aggregate="avg",
            predicate=Overlaps("bt", day, day + 1),
        )
    )


def q_t8(ds: TPCBiHDataset):
    """t8: average booking lead time for one clerk's orders (the paper
    phrases it for an airline; the shape is avg over a selection)."""
    return "orders", TemporalAggQuery(
        _point_agg(
            CurrentVersion("tt") & ColumnEquals("clerk", 7),
            ds.mid_day(0.5),
            "lead_days",
            aggregate="avg",
        )
    )


def q_t9(ds: TPCBiHDataset):
    """t9: bookings per point in system time, over a version interval."""
    lo = ds.mid_version(ds.orders, 0.25)
    hi = ds.mid_version(ds.orders, 0.75)
    return "orders", TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("tt",),
            value_column=None,
            aggregate="count",
            query_intervals={"tt": Interval(lo, hi)},
        )
    )


def q_k1_sys(ds: TPCBiHDataset):
    """k1_sys: how one order (valid at a business time) evolved over
    history — all its versions overlapping that business time."""
    day = ds.mid_day(0.5)
    return "orders", SelectQuery(
        ColumnEquals("orderkey", 17) & Overlaps("bt", day, day + 1)
    )


def q_k1_app(ds: TPCBiHDataset):
    """k1_app: one order's state as of a version, over business time."""
    v = ds.mid_version(ds.orders, 0.5)
    return "orders", SelectQuery(
        ColumnEquals("orderkey", 17) & TimeTravel("tt", v)
    )


def q_r1(ds: TPCBiHDataset):
    """r1: customers who moved to the US and still live there, counted
    over full system time."""
    return "customer", TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("tt",),
            value_column=None,
            aggregate="count",
            predicate=ColumnEquals("nationkey", US_NATION),
        )
    )


def q_r2(ds: TPCBiHDataset):
    """r2: the same over full business time — the corner case whose result
    is nearly as large as the table (Section 5.4.2)."""
    return "customer", TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("bt",),
            value_column=None,
            aggregate="count",
            predicate=ColumnEquals("nationkey", US_NATION)
            & CurrentVersion("tt"),
        )
    )


def q_r3(ds: TPCBiHDataset):
    """r3: r1 restricted to a system-time interval."""
    lo = ds.mid_version(ds.customer, 0.3)
    hi = ds.mid_version(ds.customer, 0.7)
    return "customer", TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("tt",),
            value_column=None,
            aggregate="count",
            predicate=ColumnEquals("nationkey", US_NATION),
            query_intervals={"tt": Interval(lo, hi)},
        )
    )


def q_r4(ds: TPCBiHDataset):
    """r4: windowed business-time aggregation over an interval (weekly
    samples) — the windowed fast path."""
    lo = ds.mid_day(0.2)
    hi = ds.mid_day(0.8)
    window = WindowSpec.covering(Interval(lo, hi), stride=7)
    return "customer", TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("bt",),
            value_column=None,
            aggregate="count",
            predicate=ColumnEquals("nationkey", US_NATION)
            & CurrentVersion("tt"),
            window=window,
        )
    )


#: name -> constructor(dataset) -> (table name, op or list of ops)
TPCBIH_QUERIES: dict[str, Callable] = {
    "t2": q_t2,
    "t3_sys": q_t3_sys,
    "t3_app": q_t3_app,
    "t6_sys": q_t6_sys,
    "t6_app": q_t6_app,
    "t8": q_t8,
    "t9": q_t9,
    "k1_sys": q_k1_sys,
    "k1_app": q_k1_app,
    "r1": q_r1,
    "r2": q_r2,
    "r3": q_r3,
    "r4": q_r4,
}
