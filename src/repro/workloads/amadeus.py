"""The Amadeus airline-reservation workload (Section 5.2.1).

The paper's workload is a production trace over a bookings table of 2.4
billion rows (bookings x versions).  This generator produces a synthetic
equivalent at configurable scale with the characteristics the paper
reports:

* every booking has on average five versions, with Zipf skew ("some
  bookings are updated much more often than others");
* two business-time facets — the ticket's validity interval and the
  departure day — plus transaction time;
* the query mix of Table 1: 1% ta1 (number of open bookings of a flight
  grouped by transaction time), 1% ta2 (valid tickets over business
  time), 8% other temporal queries (time travel, ranges), 90%
  non-temporal queries (booking lookups, passenger lists per flight);
* an update stream of configurable rate (the paper: 250 updates/second).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import TemporalAggregationQuery
from repro.core.window import WindowSpec
from repro.storage.queries import InsertOp, SelectQuery, TemporalAggQuery, UpdateOp
from repro.temporal.predicates import (
    ColumnEquals,
    CurrentVersion,
    Overlaps,
    TimeTravel,
)
from repro.temporal.schema import Column, ColumnType, TableSchema
from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import Interval
from repro.workloads.bulk import append_rows, version_chain_bounds

#: Status codes of a booking version.
STATUS_OPEN = 0
STATUS_TICKETED = 1
STATUS_CANCELLED = 2


@dataclass(frozen=True)
class AmadeusConfig:
    """Scale and shape knobs of the synthetic Amadeus workload."""

    num_bookings: int = 20_000
    avg_versions: float = 5.0
    num_flights: int = 200
    num_airlines: int = 12
    update_rate_per_second: int = 250
    seed: int = 7

    @property
    def horizon(self) -> int:
        """Number of committed transactions in the generated history."""
        return max(1000, self.num_bookings // 2)


def bookings_schema() -> TableSchema:
    """The bookings table: key + flight/airline/passenger attributes, the
    ticket-validity business time ``bt`` and transaction time ``tt``."""
    return TableSchema(
        name="bookings",
        columns=[
            Column("booking_id", ColumnType.INT),
            Column("flight_id", ColumnType.INT),
            Column("airline", ColumnType.INT),
            Column("passenger", ColumnType.INT),
            Column("status", ColumnType.INT),
            Column("seats", ColumnType.INT),
            Column("fare", ColumnType.FLOAT),
            Column("departure_day", ColumnType.INT),
            Column("lead_days", ColumnType.INT),
        ],
        business_dims=["bt"],
        key="booking_id",
    )


class AmadeusWorkload:
    """Synthetic bookings table plus Table 1's query mix."""

    def __init__(self, config: AmadeusConfig = AmadeusConfig()) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.table = self._build_table()

    # ------------------------------------------------------------- data

    def _build_table(self) -> TemporalTable:
        cfg = self.config
        rng = self._rng
        table = TemporalTable(bookings_schema())
        booking, tt_start, tt_end = version_chain_bounds(
            rng, cfg.num_bookings, cfg.avg_versions, cfg.horizon
        )
        n = len(booking)

        # Per-booking (version-invariant) attributes.
        flight = rng.integers(0, cfg.num_flights, cfg.num_bookings)
        airline = flight % cfg.num_airlines
        passenger = rng.integers(0, cfg.num_bookings * 2, cfg.num_bookings)
        booking_day = rng.integers(0, 365, cfg.num_bookings)
        lead = rng.integers(1, 120, cfg.num_bookings)
        departure = booking_day + lead

        # Per-version attributes: fares drift, some versions cancel.
        fare = np.round(rng.uniform(50, 1500, n), 2)
        status = np.where(
            rng.random(n) < 0.08, STATUS_CANCELLED,
            np.where(rng.random(n) < 0.5, STATUS_TICKETED, STATUS_OPEN),
        )
        seats = rng.integers(1, 5, n)

        # Ticket validity: from the booking day until shortly after the
        # departure; cancelled versions get their validity truncated.
        bt_start = booking_day[booking]
        bt_end = departure[booking] + rng.integers(1, 30, n)
        bt_end = np.where(status == STATUS_CANCELLED, bt_start + 1, bt_end)

        append_rows(
            table,
            {
                "booking_id": booking,
                "flight_id": flight[booking],
                "airline": airline[booking],
                "passenger": passenger[booking],
                "status": status,
                "seats": seats,
                "fare": fare,
                "departure_day": departure[booking],
                "lead_days": lead[booking],
                "bt_start": bt_start,
                "bt_end": bt_end,
                "tt_start": tt_start,
                "tt_end": tt_end,
            },
        )
        return table

    # ---------------------------------------------------------- queries

    def ta1(self, flight_id: int | None = None) -> TemporalAggQuery:
        """Table 1 ta1: number of open bookings of a flight, grouped by
        transaction time (how did the count evolve over versions)."""
        flight_id = self._pick_flight(flight_id)
        return TemporalAggQuery(
            TemporalAggregationQuery(
                varied_dims=("tt",),
                value_column=None,
                aggregate="count",
                predicate=ColumnEquals("flight_id", flight_id)
                & ColumnEquals("status", STATUS_OPEN),
            )
        )

    def ta2(self, flight_id: int | None = None) -> TemporalAggQuery:
        """Table 1 ta2: number of valid tickets over business time, for the
        current state of the database."""
        flight_id = self._pick_flight(flight_id)
        return TemporalAggQuery(
            TemporalAggregationQuery(
                varied_dims=("bt",),
                value_column=None,
                aggregate="count",
                predicate=ColumnEquals("flight_id", flight_id)
                & CurrentVersion("tt"),
            )
        )

    def seats_over_time(self, flight_id: int | None = None) -> TemporalAggQuery:
        """The intro's motivating query: booked seats of a flight over
        business time (windowed by day)."""
        flight_id = self._pick_flight(flight_id)
        return TemporalAggQuery(
            TemporalAggregationQuery(
                varied_dims=("bt",),
                value_column="seats",
                aggregate="sum",
                predicate=ColumnEquals("flight_id", flight_id)
                & CurrentVersion("tt"),
                window=WindowSpec(0, 7, 75),
            )
        )

    def time_travel_count(self) -> SelectQuery:
        """'Other temporal': bookings existing at some past version."""
        version = int(self._rng.integers(0, max(1, self.table.current_version)))
        return SelectQuery(
            TimeTravel("tt", version) & ColumnEquals("status", STATUS_OPEN)
        )

    def bookings_by_day_range(self) -> SelectQuery:
        """'Other temporal': bookings valid in a business-time range."""
        day = int(self._rng.integers(0, 300))
        return SelectQuery(
            Overlaps("bt", day, day + 30) & CurrentVersion("tt")
        )

    def booking_lookup(self) -> SelectQuery:
        """Non-temporal: one booking by key (index-served elsewhere)."""
        booking = int(self._rng.integers(0, self.config.num_bookings))
        return SelectQuery(
            ColumnEquals("booking_id", booking) & CurrentVersion("tt"),
            indexed=True,
        )

    def passenger_list(self) -> SelectQuery:
        """Non-temporal: passengers currently booked on a flight."""
        flight = self._pick_flight(None)
        return SelectQuery(
            ColumnEquals("flight_id", flight) & CurrentVersion("tt")
        )

    def _pick_flight(self, flight_id: int | None) -> int:
        if flight_id is not None:
            return flight_id
        return int(self._rng.integers(0, self.config.num_flights))

    # ------------------------------------------------------------ mixes

    def query_batch(self, size: int) -> list:
        """A batch with Table 1's mix: 1% ta1, 1% ta2, 8% other temporal,
        90% non-temporal."""
        ops = []
        for _ in range(size):
            r = self._rng.random()
            if r < 0.01:
                ops.append(self.ta1())
            elif r < 0.02:
                ops.append(self.ta2())
            elif r < 0.06:
                ops.append(self.time_travel_count())
            elif r < 0.10:
                ops.append(self.bookings_by_day_range())
            elif r < 0.55:
                ops.append(self.booking_lookup())
            else:
                ops.append(self.passenger_list())
        return ops

    def update_stream(self, count: int) -> list[UpdateOp]:
        """``count`` updates: fare changes, ticketing, dietary flags — the
        paper's 250/s stream.  Keys are Zipf-skewed like the version
        counts."""
        ops: list[UpdateOp] = []
        for _ in range(count):
            booking = int(
                min(self.config.num_bookings - 1, self._rng.zipf(1.3))
            )
            kind = self._rng.random()
            if kind < 0.6:
                changes = {"fare": float(np.round(self._rng.uniform(50, 1500), 2))}
            elif kind < 0.9:
                changes = {"status": STATUS_TICKETED}
            else:
                changes = {"seats": int(self._rng.integers(1, 5))}
            ops.append(UpdateOp(booking, changes))
        return ops

    def insert_stream(self, count: int) -> list[InsertOp]:
        """New bookings (part of the update mix)."""
        cfg = self.config
        ops: list[InsertOp] = []
        for i in range(count):
            flight = int(self._rng.integers(0, cfg.num_flights))
            day = int(self._rng.integers(0, 365))
            ops.append(
                InsertOp(
                    {
                        "booking_id": cfg.num_bookings + i,
                        "flight_id": flight,
                        "airline": flight % cfg.num_airlines,
                        "passenger": int(self._rng.integers(0, cfg.num_bookings)),
                        "status": STATUS_OPEN,
                        "seats": int(self._rng.integers(1, 5)),
                        "fare": float(np.round(self._rng.uniform(50, 1500), 2)),
                        "departure_day": day + 30,
                        "lead_days": 30,
                    },
                    business={"bt": Interval(day, day + 60)},
                )
            )
        return ops
