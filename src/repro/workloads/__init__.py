"""Workload generators: the Amadeus airline-reservation workload and the
TPC-BiH bi-temporal benchmark.

Both follow the substitution documented in DESIGN.md: the paper's
proprietary production trace (2.4 billion bookings) and the TPC-BiH data
generator are replaced by synthetic generators that exercise the same code
paths at configurable scale — version chains with skew, mixed query
batches matching Table 1, update streams, and the full Table 2 query set.
"""

from repro.workloads.amadeus import AmadeusConfig, AmadeusWorkload
from repro.workloads.openloop import (
    ARRIVAL_PROCESSES,
    Arrival,
    OpenLoopConfig,
    OpenLoopTrafficGenerator,
)
from repro.workloads.tpcbih import TPCBiHConfig, TPCBiHDataset, TPCBIH_QUERIES

__all__ = [
    "AmadeusConfig",
    "AmadeusWorkload",
    "ARRIVAL_PROCESSES",
    "Arrival",
    "OpenLoopConfig",
    "OpenLoopTrafficGenerator",
    "TPCBiHConfig",
    "TPCBiHDataset",
    "TPCBIH_QUERIES",
]
