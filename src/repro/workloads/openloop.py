"""Open-loop traffic: seeded arrival processes over the Table-1 mix.

A *closed-loop* client waits for each response before sending the next
query, so a slow server conveniently slows its own load down.  Production
front doors face *open-loop* traffic: arrivals keep coming at their own
rate whether or not the engine keeps up, and queueing delay — not service
time — dominates the latency tail near saturation.  This module generates
such traffic deterministically:

* **poisson** — exponential inter-arrival gaps at a fixed rate, the
  classic open-loop model;
* **bursty** — a two-state modulated Poisson process (quiet base rate,
  periodic bursts at ``burst_factor`` times the rate), the shape that
  actually stresses admission control.

Every arrival carries both the executable cluster operation *and* its SQL
rendering (via :mod:`repro.sql.render`), so one trace can drive the
in-process serving simulation (``benchmarks/bench_serving.py``) and the
wire-protocol server (``python -m repro serve``) with identical work.
The mix is Table 1's: 1% ta1, 1% ta2, 8% other temporal, 90%
non-temporal — the Amadeus production profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.render import render_query, render_select
from repro.storage.queries import TemporalAggQuery
from repro.workloads.amadeus import AmadeusWorkload

ARRIVAL_PROCESSES = ("poisson", "bursty")


@dataclass(frozen=True)
class OpenLoopConfig:
    """Shape of one open-loop traffic trace."""

    #: Mean arrival rate in queries per (simulated) second.
    rate_qps: float = 1000.0
    #: Number of queries in the trace.
    num_queries: int = 500
    #: ``poisson`` or ``bursty``.
    process: str = "poisson"
    #: Bursty only: rate multiplier inside a burst...
    burst_factor: float = 8.0
    #: ...and the fraction of time spent bursting.
    burst_fraction: float = 0.1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if self.num_queries < 1:
            raise ValueError("num_queries must be at least 1")
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"known: {ARRIVAL_PROCESSES}"
            )
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.burst_factor <= 1.0:
            raise ValueError("burst_factor must exceed 1")
        if self.burst_fraction * self.burst_factor >= 1.0:
            raise ValueError(
                "burst_fraction * burst_factor must stay below 1 "
                "(otherwise no quiet rate can balance the time average)"
            )


@dataclass(frozen=True)
class Arrival:
    """One query arrival: when, what (as an op), and its SQL text."""

    time: float
    op: object
    sql: str


def _interarrival_gaps(config: OpenLoopConfig, rng) -> np.ndarray:
    """Per-query gaps; both processes have mean rate ``rate_qps``."""
    n = config.num_queries
    if config.process == "poisson":
        return rng.exponential(1.0 / config.rate_qps, n)
    # Bursty: a two-state modulated process.  A fraction f of *time* runs
    # at burst_rate = factor * rate; the quiet rate is chosen so the
    # time-average stays rate_qps.  Each arrival then belongs to a state
    # with probability proportional to that state's share of *arrivals*
    # (time share x state rate) — weighting by raw factors instead would
    # under-deliver the nominal rate.
    factor = config.burst_factor
    fraction = config.burst_fraction
    quiet_rate = config.rate_qps * (1.0 - fraction * factor) / (1.0 - fraction)
    quiet_rate = max(quiet_rate, config.rate_qps * 0.05)
    burst_rate = config.rate_qps * factor
    burst_share = fraction * burst_rate
    quiet_share = (1.0 - fraction) * quiet_rate
    in_burst = rng.random(n) < burst_share / (burst_share + quiet_share)
    gaps = np.where(
        in_burst,
        rng.exponential(1.0 / burst_rate, n),
        rng.exponential(1.0 / quiet_rate, n),
    )
    return gaps


class OpenLoopTrafficGenerator:
    """Deterministic arrival traces over an Amadeus workload's mix."""

    def __init__(
        self, workload: AmadeusWorkload, config: OpenLoopConfig = OpenLoopConfig()
    ) -> None:
        self.workload = workload
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def arrivals(self) -> list[Arrival]:
        """One fresh trace: sorted arrival times + Table-1-mix queries.

        Each call draws new queries and new gaps from the generator's
        stream — successive calls give independent (but reproducible)
        traces.
        """
        gaps = _interarrival_gaps(self.config, self._rng)
        times = np.cumsum(gaps)
        ops = self.workload.query_batch(self.config.num_queries)
        table = self.workload.table.schema.name
        out: list[Arrival] = []
        for t, op in zip(times, ops):
            if isinstance(op, TemporalAggQuery):
                sql = render_query(op.query, table)
            else:
                sql = render_select(op.predicate, table)
            out.append(Arrival(float(t), op, sql))
        return out

    def statements(self) -> list[tuple[float, str]]:
        """The SQL-only view of a trace (what a wire client sends)."""
        return [(a.time, a.sql) for a in self.arrivals()]
