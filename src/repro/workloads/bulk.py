"""Bulk construction of version histories.

Generating hundreds of thousands of versions through the transactional
API would cost one key-column scan per update; workload generators instead
compute whole version chains vectorized and append them column-wise.  The
resulting tables are indistinguishable from organically grown ones: every
logical entity has a chain of versions whose transaction-time intervals
tile ``[birth, FOREVER)``, and superseded versions are properly closed.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import FOREVER


def append_rows(
    table: TemporalTable,
    columns: Mapping[str, np.ndarray],
    next_version: int | None = None,
) -> None:
    """Append pre-built physical rows to ``table``.

    ``columns`` must provide every physical column (value columns plus
    ``<dim>_start`` / ``<dim>_end`` for every time dimension), all of equal
    length.  ``next_version`` optionally fast-forwards the table's commit
    counter past the appended transaction times.
    """
    physical = table.schema.physical_columns()
    missing = [name for name in physical if name not in columns]
    if missing:
        raise KeyError(f"missing physical columns: {missing}")
    lengths = {len(np.asarray(columns[name])) for name in physical}
    if len(lengths) != 1:
        raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
    for name in physical:
        table._cols[name].extend(np.asarray(columns[name]))  # noqa: SLF001
    if next_version is None:
        tt_starts = np.asarray(columns[f"{table.schema.transaction_dim}_start"])
        tt_ends = np.asarray(columns[f"{table.schema.transaction_dim}_end"])
        finite = tt_ends[tt_ends < FOREVER]
        highest = int(tt_starts.max(initial=-1))
        if len(finite):
            highest = max(highest, int(finite.max()))
        next_version = highest + 1
    table.sync_version(max(next_version, table.current_version))


def version_chain_bounds(
    rng: np.random.Generator,
    num_entities: int,
    avg_versions: float,
    horizon: int,
    skew: float = 1.3,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-entity version counts and commit times.

    Returns ``(entity_of_version, tt_start, tt_end)`` arrays describing a
    version chain per entity: version counts are Zipf-skewed around
    ``avg_versions`` ("on average, a booking has five versions, but there
    is skew and some bookings are updated much more often than others",
    Section 5.2.1), commit times are uniform over ``[0, horizon)`` and
    sorted within each chain, and every chain's last version is open.
    """
    raw = np.minimum(rng.zipf(skew, size=num_entities), 200).astype(np.float64)
    counts = np.maximum(
        1, np.round(raw * (avg_versions / raw.mean())).astype(np.int64)
    )
    counts = np.minimum(counts, 500)  # cap pathological chains
    total = int(counts.sum())
    entity = np.repeat(np.arange(num_entities, dtype=np.int64), counts)
    times = rng.integers(0, horizon, size=total, dtype=np.int64)
    # Sort commit times within each entity chain: order by (entity, time).
    order = np.lexsort((times, entity))
    entity, times = entity[order], times[order]
    # Make commit times strictly increasing within a chain by adding the
    # within-chain version index (preserves order, kills duplicates).
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    times = times + within
    ends = np.empty(total, dtype=np.int64)
    ends[:-1] = times[1:]
    ends[-1] = FOREVER
    # Last version of each chain is open-ended; chain boundaries are where
    # the entity id changes.
    chain_end = np.empty(total, dtype=bool)
    chain_end[:-1] = entity[1:] != entity[:-1]
    chain_end[-1] = True
    ends[chain_end] = FOREVER
    return entity, times, ends
