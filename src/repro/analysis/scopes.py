"""Scope and mutation analysis shared by the lint rules.

Python closures make the shared-mutable-state race easy to write and hard
to see: a task function handed to ``map_parallel`` that does
``results.append(...)`` on a list from the enclosing scope is correct
under the :class:`~repro.simtime.executor.SerialExecutor` (tasks run one
after another) and silently order-dependent — or corrupting — the moment a
real parallel backend is substituted.  The helpers here answer the two
questions rules need: *which names are local to a function* and *which
captured (non-local) names does its body mutate, and how*.

The analysis is intentionally lexical and conservative: it treats every
name bound anywhere inside the function (params, assignments, loop
targets, ``with`` targets, comprehension targets, nested ``def``/imports)
as local unless declared ``global``/``nonlocal``, so only mutations that
must target enclosing state are reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Method names that mutate their receiver in-place (built-in containers
#: plus this repo's delta-map/table write surface).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
        # repo-specific write surface
        "put",
        "put_event",
        "add_record",
        "dm_put",
    }
)


@dataclass(frozen=True)
class Mutation:
    """One mutation of a captured name inside a function body."""

    node: ast.AST
    name: str
    how: str  # human-readable description of the mutation form


def function_params(fn: FunctionNode) -> list[str]:
    a = fn.args
    params = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
    if a.vararg:
        params.append(a.vararg.arg)
    if a.kwarg:
        params.append(a.kwarg.arg)
    return params


def _bound_names(target: ast.AST) -> Iterator[str]:
    """Names bound by an assignment/loop/with target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bound_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)
    # Attribute / Subscript targets bind nothing new.


def local_bindings(fn: FunctionNode) -> set[str]:
    """Every name the function binds locally (hence *not* captured).

    Includes bindings made in nested scopes too — a deliberate
    over-approximation that keeps the race rule low-noise: we only report
    mutations of names that cannot possibly be local.
    """
    locals_: set[str] = set(function_params(fn))
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    locals_.update(_bound_names(t))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                locals_.update(_bound_names(node.target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                locals_.update(_bound_names(node.target))
            elif isinstance(node, ast.withitem) and node.optional_vars:
                locals_.update(_bound_names(node.optional_vars))
            elif isinstance(node, ast.comprehension):
                locals_.update(_bound_names(node.target))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                locals_.add(node.name)
            elif isinstance(node, ast.ClassDef):
                locals_.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    locals_.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                locals_.add(node.name)
            elif isinstance(node, ast.NamedExpr):
                locals_.update(_bound_names(node.target))
    for name in declared_escaping(fn):
        locals_.discard(name)
    return locals_


def declared_escaping(fn: FunctionNode) -> set[str]:
    """Names declared ``global`` or ``nonlocal`` anywhere in the body."""
    out: set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                out.update(node.names)
    return out


def _root_name(node: ast.AST) -> "str | None":
    """The base ``Name`` of a (possibly nested) attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def mutations_of_names(
    body: "list[ast.stmt] | ast.expr", names: set[str]
) -> Iterator[Mutation]:
    """Every statement/expression in ``body`` that mutates one of ``names``.

    Detected forms, for a watched name ``x``:

    * ``x[...] = v`` / ``x.attr = v``        (store through the object)
    * ``x += v`` / ``x[...] += v``           (augmented assignment)
    * ``del x[...]`` / ``del x.attr``        (deletion through the object)
    * ``x.append(v)`` and friends            (:data:`MUTATING_METHODS`)
    """
    stmts = body if isinstance(body, list) else [body]
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, (ast.Subscript, ast.Attribute)):
                        root = _root_name(t)
                        if root in names:
                            kind = (
                                "subscript" if isinstance(t, ast.Subscript)
                                else "attribute"
                            )
                            yield Mutation(node, root, f"{kind} assignment")
            elif isinstance(node, ast.AugAssign):
                root = _root_name(node.target)
                if root in names:
                    yield Mutation(node, root, "augmented assignment")
            elif isinstance(node, ast.Delete):
                for t in node.targets:
                    if isinstance(t, (ast.Subscript, ast.Attribute)):
                        root = _root_name(t)
                        if root in names:
                            yield Mutation(node, root, "del through the object")
            elif isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in MUTATING_METHODS
                    and isinstance(f.value, ast.Name)
                    and f.value.id in names
                ):
                    yield Mutation(node, f.value.id, f".{f.attr}() call")


def captured_mutations(fn: FunctionNode) -> Iterator[Mutation]:
    """Mutations of names the function captures from an enclosing scope.

    Covers both in-place mutation of captured objects and rebinding of
    ``global``/``nonlocal``-declared names (a rebind of enclosing state is
    a write-write race between parallel tasks just as surely).
    """
    locals_ = local_bindings(fn)
    escaping = declared_escaping(fn)
    body = fn.body if isinstance(fn.body, list) else [fn.body]

    # Rebinding of declared-escaping names.
    stmts = body if isinstance(body, list) else [body]
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    for name in _bound_names(t):
                        if name in escaping:
                            yield Mutation(node, name, "rebinding (global/nonlocal)")
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                if node.target.id in escaping:
                    yield Mutation(
                        node, node.target.id, "augmented rebinding (global/nonlocal)"
                    )

    # In-place mutation of anything not provably local.
    watched: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in locals_:
                    watched.add(node.id)
    watched |= escaping
    yield from mutations_of_names(body, watched)


def enclosing_scopes(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> Iterator[ast.AST]:
    """The chain of enclosing function/module scopes, innermost first."""
    cur = parents.get(node)
    while cur is not None:
        if isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module)
        ):
            yield cur
        cur = parents.get(cur)


def resolve_callable(
    name: str, call: ast.AST, parents: dict[ast.AST, ast.AST]
) -> "FunctionNode | None":
    """Find the function/lambda bound to ``name`` in the lexical scopes
    enclosing ``call`` (nearest scope wins)."""
    for scope in enclosing_scopes(call, parents):
        body = scope.body if isinstance(scope.body, list) else [scope.body]
        best: FunctionNode | None = None
        for stmt in body if isinstance(body, list) else [body]:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == name
                ):
                    best = node
                elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Lambda
                ):
                    for t in node.targets:
                        if isinstance(t, ast.Name) and t.id == name:
                            best = node.value
        if best is not None:
            return best
    return None
