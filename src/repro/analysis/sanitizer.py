"""Runtime race sanitizer for the simulated-parallel substrate.

The :class:`~repro.simtime.executor.SerialExecutor` runs "parallel" tasks
one after another, so a genuine data race — two tasks of the same phase
writing the same key of a shared structure — executes deterministically
and produces *an* answer.  That answer is only correct by accident of
serial ordering, and the phase it came from is booked as parallel, which
is exactly the situation the DESIGN.md substitution forbids.

:class:`SanitizingExecutor` is ThreadSanitizer for this substrate: it
wraps any :class:`~repro.simtime.executor.Executor`, gives every
``map_parallel`` task its own access log, proxies the task items
(:class:`~repro.temporal.table.TableChunk` columns become read-only NumPy
views, :class:`~repro.core.deltamap.DeltaMap` puts are recorded) and lets
callers :meth:`~SanitizingExecutor.watch` shared structures.  At the end
of each phase the per-task write sets are intersected; overlapping writes
by distinct tasks raise (or record) a :class:`RaceReport`.

The static counterpart is lint rule PT001 (shared-mutable-capture); the
sanitizer catches what escapes lexical analysis — aliasing through
``self``, containers of containers, dynamic dispatch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.core.deltamap import DeltaMap
from repro.simtime.clock import SimClock
from repro.simtime.executor import Executor, SerialExecutor
from repro.temporal.table import TableChunk


@dataclass
class TaskLog:
    """Read/write sets of one task of one phase."""

    phase: str
    task_index: int
    #: ``(watch_id, key)`` pairs.
    reads: set = field(default_factory=set)
    writes: set = field(default_factory=set)


@dataclass(frozen=True)
class RaceReport:
    """Two tasks of the same phase touched the same key, at least one
    writing."""

    phase: str
    target: str
    key: Any
    task_a: int
    task_b: int
    kind: str  # "write-write" | "read-write"

    def format(self) -> str:
        return (
            f"[{self.kind}] phase {self.phase!r}: tasks {self.task_a} and "
            f"{self.task_b} both touched {self.target}[{self.key!r}]"
        )


class RaceError(RuntimeError):
    """Raised by :class:`SanitizingExecutor` on a write-write overlap."""

    def __init__(self, reports: Sequence[RaceReport]) -> None:
        self.reports = list(reports)
        lines = "\n  ".join(r.format() for r in self.reports[:10])
        more = len(self.reports) - 10
        suffix = f"\n  ... and {more} more" if more > 0 else ""
        super().__init__(
            f"simulated race detected ({len(self.reports)} overlap(s)):\n"
            f"  {lines}{suffix}"
        )


class _Recorder:
    """Resolves the currently running task's log (thread-safe, so the
    sanitizer also works over a real :class:`ThreadExecutor`)."""

    def __init__(self) -> None:
        self._tls = threading.local()

    def enter(self, log: TaskLog) -> "TaskLog | None":
        previous = getattr(self._tls, "log", None)
        self._tls.log = log
        return previous

    def exit(self, previous: "TaskLog | None") -> None:
        self._tls.log = previous

    @staticmethod
    def _hashable(key: Any) -> Any:
        try:
            hash(key)
        except TypeError:
            return repr(key)
        return key

    def read(self, watch_id: str, key: Any) -> None:
        log = getattr(self._tls, "log", None)
        if log is not None:
            log.reads.add((watch_id, self._hashable(key)))

    def write(self, watch_id: str, key: Any) -> None:
        log = getattr(self._tls, "log", None)
        if log is not None:
            log.writes.add((watch_id, self._hashable(key)))


class ChunkProxy:
    """A :class:`TableChunk` stand-in that records column reads and hands
    out *read-only* NumPy views, so any in-place write to shared table
    storage raises immediately inside the offending task."""

    def __init__(self, chunk: TableChunk, recorder: _Recorder, name: str) -> None:
        self._chunk = chunk
        self._recorder = recorder
        self._name = name

    # -- read surface ----------------------------------------------------
    def _readonly(self, arr):
        view = arr.view()
        view.flags.writeable = False
        return view

    @property
    def schema(self):
        return self._chunk.schema

    @property
    def row_offset(self) -> int:
        return self._chunk.row_offset

    @property
    def columns(self) -> dict:
        for name in self._chunk.columns:
            self._recorder.read(self._name, ("column", name))
        return {
            name: self._readonly(arr) for name, arr in self._chunk.columns.items()
        }

    def column(self, name: str):
        self._recorder.read(self._name, ("column", name))
        return self._readonly(self._chunk.column(name))

    def record(self, i: int) -> dict:
        self._recorder.read(self._name, ("row", int(i)))
        return self._chunk.record(i)

    def records(self) -> Iterator[dict]:
        for name in self._chunk.columns:
            self._recorder.read(self._name, ("column", name))
        return self._chunk.records()

    def select(self, mask) -> "ChunkProxy":
        for name in self._chunk.columns:
            self._recorder.read(self._name, ("column", name))
        return ChunkProxy(
            self._chunk.select(mask), self._recorder, f"{self._name}.select"
        )

    def __len__(self) -> int:
        return len(self._chunk)

    def __repr__(self) -> str:
        return f"<ChunkProxy {self._name} of {len(self)} rows>"


class DeltaMapProxy:
    """Wraps a :class:`DeltaMap`, recording puts as writes and iteration
    as reads.  Tasks that share one of these — the canonical broken
    "just aggregate into a shared map" shortcut — produce overlapping
    write sets the phase analysis then reports."""

    def __init__(self, dm: DeltaMap, recorder: _Recorder, name: str) -> None:
        self._dm = dm
        self._recorder = recorder
        self._name = name

    @property
    def aggregate(self):
        return self._dm.aggregate

    def put(self, key, delta) -> None:
        self._recorder.write(self._name, key)
        self._dm.put(key, delta)

    def put_event(self, pivot_ts, nonpivot_intervals, delta) -> None:
        self._recorder.write(self._name, (pivot_ts,) + tuple(nonpivot_intervals))
        self._dm.put_event(pivot_ts, nonpivot_intervals, delta)

    def add_record(self, valid_from, valid_to, value, forever) -> None:
        self._recorder.write(self._name, valid_from)
        if valid_to < forever:
            self._recorder.write(self._name, valid_to)
        self._dm.add_record(valid_from, valid_to, value, forever)

    def items(self):
        self._recorder.read(self._name, ("items",))
        return self._dm.items()

    def __iter__(self):
        return self.items()

    def __len__(self) -> int:
        return len(self._dm)

    def __getattr__(self, name: str):
        # Unknown attributes fall through to the wrapped map (e.g. the
        # backend-specific `arrays` / `put_count` accessors).
        return getattr(self._dm, name)

    def __repr__(self) -> str:
        return f"<DeltaMapProxy {self._name}>"


class _WatchedObject:
    """Generic watch proxy for shared mutable containers (dict/list-like):
    ``obj[key] = v`` and mutating method calls are recorded as writes."""

    _MUTATORS = {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "remove", "discard", "clear",
    }

    def __init__(self, obj: Any, recorder: _Recorder, name: str) -> None:
        self._obj = obj
        self._recorder = recorder
        self._name = name

    def __getitem__(self, key):
        self._recorder.read(self._name, key)
        return self._obj[key]

    def __setitem__(self, key, value):
        self._recorder.write(self._name, key)
        self._obj[key] = value

    def __delitem__(self, key):
        self._recorder.write(self._name, key)
        del self._obj[key]

    def __contains__(self, key) -> bool:
        self._recorder.read(self._name, key)
        return key in self._obj

    def __len__(self) -> int:
        return len(self._obj)

    def __iter__(self):
        self._recorder.read(self._name, ("iter",))
        return iter(self._obj)

    def __getattr__(self, name: str):
        attr = getattr(self._obj, name)
        if name in self._MUTATORS and callable(attr):
            recorder, watch = self._recorder, self._name

            def recorded(*args, **kwargs):
                # Key-addressed mutators record the key; positional
                # mutators (append/add/...) record the whole-object key,
                # which still collides across tasks — any two appends to
                # a shared list are a race.
                if name in {"pop", "setdefault"} and args:
                    key = args[0]
                else:
                    key = ("*",)
                recorder.write(watch, key)
                return attr(*args, **kwargs)

            return recorded
        return attr

    def __repr__(self) -> str:
        return f"<watched {self._name}: {self._obj!r}>"


class SanitizingExecutor:
    """Race-sanitizing wrapper around any :class:`Executor`.

    Parameters
    ----------
    inner:
        The executor that actually runs and accounts the phases
        (default: a fresh :class:`SerialExecutor`).
    on_race:
        ``"raise"`` (default) raises :class:`RaceError` at the end of a
        phase with write-write overlaps; ``"record"`` only appends to
        :attr:`reports` (read-write overlaps are always only recorded).

    Usage::

        sanitizer = SanitizingExecutor(SerialExecutor(slots=8))
        partime.execute(table, query, workers=8, executor=sanitizer)
        assert not sanitizer.reports
    """

    def __init__(
        self, inner: "Executor | None" = None, on_race: str = "raise"
    ) -> None:
        if on_race not in ("raise", "record"):
            raise ValueError("on_race must be 'raise' or 'record'")
        self.inner: Executor = inner if inner is not None else SerialExecutor()
        self.on_race = on_race
        self.reports: list[RaceReport] = []
        self.task_logs: list[TaskLog] = []
        self._recorder = _Recorder()
        self._watch_count = 0

    # -- Executor protocol ------------------------------------------------

    @property
    def clock(self) -> SimClock:
        return self.inner.clock

    def map_parallel(self, fn: Callable, items: Sequence, label: str = "") -> list:
        logs = [TaskLog(label, i) for i in range(len(items))]
        proxied = [
            self._proxy_item(item, f"{label or 'phase'}.item[{i}]")
            for i, item in enumerate(items)
        ]

        def run(pair):
            index, item = pair
            previous = self._recorder.enter(logs[index])
            try:
                return fn(item)
            finally:
                self._recorder.exit(previous)

        results = self.inner.map_parallel(
            run, list(enumerate(proxied)), label=label
        )
        self.task_logs.extend(logs)
        self._analyze_phase(label, logs)
        return results

    def run_serial(self, fn: Callable[[], Any], label: str = "") -> Any:
        # A serial phase has a single task: no intra-phase race is
        # possible, but accesses are still recorded for inspection.
        log = TaskLog(label, 0)
        previous = self._recorder.enter(log)
        try:
            return self.inner.run_serial(fn, label=label)
        finally:
            self._recorder.exit(previous)
            self.task_logs.append(log)

    # -- instrumentation --------------------------------------------------

    def watch(self, obj: Any, name: "str | None" = None) -> Any:
        """Wrap a *shared* structure so task accesses are tracked.

        Returns the proxy; tasks must go through it (capture the proxy,
        not the original) for their accesses to be visible.
        """
        self._watch_count += 1
        watch_name = name or f"watched#{self._watch_count}"
        if isinstance(obj, DeltaMap):
            return DeltaMapProxy(obj, self._recorder, watch_name)
        if isinstance(obj, TableChunk):
            return ChunkProxy(obj, self._recorder, watch_name)
        return _WatchedObject(obj, self._recorder, watch_name)

    def _proxy_item(self, item: Any, name: str) -> Any:
        if isinstance(item, TableChunk):
            return ChunkProxy(item, self._recorder, name)
        if isinstance(item, DeltaMap):
            return DeltaMapProxy(item, self._recorder, name)
        return item

    # -- analysis ----------------------------------------------------------

    def _analyze_phase(self, label: str, logs: Sequence[TaskLog]) -> None:
        races: list[RaceReport] = []
        writers: dict[Any, int] = {}
        for log in logs:
            for access in log.writes:
                owner = writers.get(access)
                if owner is not None and owner != log.task_index:
                    races.append(
                        RaceReport(
                            phase=label,
                            target=str(access[0]),
                            key=access[1],
                            task_a=owner,
                            task_b=log.task_index,
                            kind="write-write",
                        )
                    )
                else:
                    writers[access] = log.task_index
        # Read-write overlaps: informative, never fatal (two tasks reading
        # a key one of them wrote is order-dependent under real threads).
        for log in logs:
            for access in log.reads:
                owner = writers.get(access)
                if owner is not None and owner != log.task_index:
                    races.append(
                        RaceReport(
                            phase=label,
                            target=str(access[0]),
                            key=access[1],
                            task_a=owner,
                            task_b=log.task_index,
                            kind="read-write",
                        )
                    )
        self.reports.extend(races)
        fatal = [r for r in races if r.kind == "write-write"]
        if fatal and self.on_race == "raise":
            raise RaceError(fatal)
