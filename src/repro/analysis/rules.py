"""The repo-specific rule catalogue (PT001–PT005).

Each rule machine-checks one invariant the reproduction's credibility
rests on; see ``docs/static_analysis.md`` for the full catalogue with
examples and suppression guidance.

=====  ========================  ==============================================
id     name                      invariant enforced
=====  ========================  ==============================================
PT001  shared-mutable-capture    ``map_parallel`` tasks touch disjoint state
PT002  unaccounted-wall-clock    every measured cost flows through ``simtime``
PT003  unlabeled-phase           every phase is attributable in traces
PT004  impure-aggregate          aggregate deltas are value-semantic
PT005  gil-blind-loop            vectorized paths stay vectorized
=====  ========================  ==============================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, ModuleContext, Rule, Severity
from repro.analysis.scopes import (
    captured_mutations,
    function_params,
    mutations_of_names,
    resolve_callable,
)

_PHASE_METHODS = {"map_parallel": 2, "run_serial": 1}  # label positional index
_CLOCK_METHODS = {"parallel", "serial"}
_WALL_CLOCK_ATTRS = {"time", "perf_counter", "monotonic", "process_time", "clock"}


def _callable_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return node.name
    if isinstance(node, ast.Lambda):
        return "<lambda>"
    return "<callable>"


class SharedMutableCaptureRule(Rule):
    """PT001 — the simulated race detector.

    A task function passed to ``Executor.map_parallel`` must not mutate
    state captured from an enclosing (or global) scope: under the
    :class:`~repro.simtime.executor.SerialExecutor` the tasks run one
    after another and the mutation *happens to work*, but the phase is
    accounted as parallel — the moment a real thread/process backend is
    substituted (the ROADMAP's scaling work), the same code is a data
    race.  Step 1's claim to be embarrassingly parallel (Section 3.2) is
    exactly the absence of such captures.
    """

    id = "PT001"
    name = "shared-mutable-capture"
    severity = Severity.ERROR
    rationale = (
        "map_parallel tasks must be pure over captured state; a captured "
        "mutation is a data race under any real parallel executor and "
        "silently order-dependent under the simulated one."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "map_parallel"
                and node.args
            ):
                continue
            task = node.args[0]
            fn: ast.AST | None = None
            if isinstance(task, ast.Lambda):
                fn = task
            elif isinstance(task, ast.Name):
                fn = resolve_callable(task.id, node, ctx.parents)
            if fn is None:
                continue
            seen: set[tuple[int, str]] = set()
            for mut in captured_mutations(fn):
                key = (getattr(mut.node, "lineno", 0), mut.name)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    ctx,
                    mut.node,
                    f"task {_callable_name(task)!r} passed to map_parallel "
                    f"mutates captured variable {mut.name!r} "
                    f"({mut.how}); parallel tasks must write only "
                    f"task-local state",
                )


class UnaccountedWallClockRule(Rule):
    """PT002 — wall-clock reads outside the accounting layer.

    All measured cost must flow through ``repro.simtime`` (see
    :mod:`repro.simtime.measure`): a direct ``time.perf_counter()`` in an
    algorithm module produces durations the ``SimClock`` never sees,
    which silently corrupts every simulated speedup curve.
    """

    id = "PT002"
    name = "unaccounted-wall-clock"
    severity = Severity.ERROR
    rationale = (
        "Durations measured outside repro.simtime bypass SimClock "
        "accounting; use `with measured() as sw:` from "
        "repro.simtime.measure instead."
    )

    #: Path components exempt from the rule: the accounting layer itself
    #: and the benchmark harness (which reports real wall time by design).
    exempt_parts = frozenset({"simtime", "bench", "benchmarks"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self.exempt_parts & set(ctx.path_parts):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _WALL_CLOCK_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"direct wall-clock read time.{node.attr} bypasses "
                    f"SimClock accounting; use repro.simtime.measure."
                    f"measured() so the duration is booked",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                names = [
                    a.name for a in node.names if a.name in _WALL_CLOCK_ATTRS
                ]
                if names:
                    yield self.finding(
                        ctx,
                        node,
                        f"importing {', '.join(names)} from time invites "
                        f"unaccounted measurements; route timing through "
                        f"repro.simtime.measure",
                    )


def _is_empty_label(node: "ast.expr | None") -> bool:
    if node is None:
        return True
    if isinstance(node, ast.Constant):
        # A non-string constant in the label position means the label was
        # omitted and a payload argument slid into its slot.
        return not (isinstance(node.value, str) and node.value)
    # Same for a literal collection (e.g. clock.parallel([1.0], 2)).
    return isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.Set))


def _label_argument(call: ast.Call, positional_index: int) -> "ast.expr | None":
    for kw in call.keywords:
        if kw.arg == "label":
            return kw.value
    if len(call.args) > positional_index:
        return call.args[positional_index]
    return None


def _mentions_clock(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "clock" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "clock" in node.attr.lower() or _mentions_clock(node.value)
    return False


class UnlabeledPhaseRule(Rule):
    """PT003 — phases must be labeled.

    Phase traces (``SimClock.phases``) and per-phase attribution
    (``phase_elapsed``) are only readable when every
    ``map_parallel``/``run_serial``/``clock.parallel`` call names its
    phase; the ``fn.__name__`` fallback produces labels like ``step1``
    from five different call sites.
    """

    id = "PT003"
    name = "unlabeled-phase"
    severity = Severity.WARNING
    rationale = (
        "Unlabeled phases make SimClock traces unattributable; pass "
        "label='component.phase' at every executor/clock call site."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            if attr in _PHASE_METHODS:
                label = _label_argument(node, _PHASE_METHODS[attr])
                if _is_empty_label(label):
                    yield self.finding(
                        ctx,
                        node,
                        f"{attr} call without a phase label; pass "
                        f"label='component.phase' so SimClock traces stay "
                        f"attributable",
                    )
            elif attr in _CLOCK_METHODS and _mentions_clock(node.func.value):
                label = _label_argument(node, 0)
                if _is_empty_label(label):
                    yield self.finding(
                        ctx,
                        node,
                        f"clock.{attr} call without a phase label",
                    )


class ImpureAggregateRule(Rule):
    """PT004 — aggregate deltas must be value-semantic.

    ``make_delta`` / ``combine`` / ``negate`` results are shared freely
    between delta maps (consolidation re-combines entries from many maps;
    the multi-dimensional merge negates a delta that still lives in its
    source map), so mutating an *argument* corrupts other maps.  ``apply``
    owns its accumulator (first argument) but must not mutate the delta.
    """

    id = "PT004"
    name = "impure-aggregate"
    severity = Severity.ERROR
    rationale = (
        "Delta objects are shared across delta maps and merge levels; "
        "combine/negate/make_delta must build new values, and apply may "
        "mutate only its accumulator."
    )

    _pure_methods = {"make_delta", "combine", "negate", "is_null_delta"}
    _acc_methods = {"apply"}

    def _aggregate_classes(self, ctx: ModuleContext) -> list[ast.ClassDef]:
        classes = {
            n.name: n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
        }

        def base_names(cls: ast.ClassDef) -> list[str]:
            out = []
            for b in cls.bases:
                if isinstance(b, ast.Name):
                    out.append(b.id)
                elif isinstance(b, ast.Attribute):
                    out.append(b.attr)
            return out

        def is_aggregate(cls: ast.ClassDef, seen: frozenset = frozenset()) -> bool:
            if cls.name in seen:
                return False
            if "aggregate" in cls.name.lower():
                return True
            for base in base_names(cls):
                if "aggregate" in base.lower():
                    return True
                if base in classes and is_aggregate(
                    classes[base], seen | {cls.name}
                ):
                    return True
            return False

        return [c for c in classes.values() if is_aggregate(c)]

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in self._aggregate_classes(ctx):
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in self._pure_methods:
                    protected_from = 1  # everything but self
                elif item.name in self._acc_methods:
                    protected_from = 2  # self + accumulator may mutate
                else:
                    continue
                params = function_params(item)
                protected = set(params[protected_from:])
                if not protected:
                    continue
                for mut in mutations_of_names(item.body, protected):
                    yield self.finding(
                        ctx,
                        mut.node,
                        f"{cls.name}.{item.name} mutates its input "
                        f"argument {mut.name!r} ({mut.how}); deltas are "
                        f"shared between delta maps — build a new value "
                        f"instead",
                    )


class GilBlindLoopRule(Rule):
    """PT005 — per-record Python loops inside vectorized code paths.

    The ``mode="vectorized"`` paths exist to stand in for a tight C++
    scan loop (DESIGN.md); a per-record ``for record in chunk.records()``
    inside such a path reintroduces interpreter-per-row cost and makes
    the measured Step 1 durations — and hence every simulated speedup —
    meaningless for that path.
    """

    id = "PT005"
    name = "gil-blind-loop"
    severity = Severity.WARNING
    rationale = (
        "Vectorized code paths must express per-record work as NumPy "
        "array operations; a Python row loop invalidates their measured "
        "cost."
    )

    @staticmethod
    def _is_vectorized_guard(test: ast.expr) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(
                    isinstance(op, ast.Constant) and op.value == "vectorized"
                    for op in operands
                ):
                    return True
        return False

    @staticmethod
    def _is_per_record_iter(iter_node: ast.expr) -> bool:
        if isinstance(iter_node, ast.Call):
            f = iter_node.func
            if isinstance(f, ast.Attribute) and f.attr in {"records", "iterrows"}:
                return True
            if (
                isinstance(f, ast.Name)
                and f.id == "range"
                and len(iter_node.args) == 1
                and isinstance(iter_node.args[0], ast.Call)
                and isinstance(iter_node.args[0].func, ast.Name)
                and iter_node.args[0].func.id == "len"
            ):
                return True
        return False

    def _scan_block(
        self, ctx: ModuleContext, block: list[ast.stmt]
    ) -> Iterator[Finding]:
        for stmt in block:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.For, ast.AsyncFor)) and (
                    self._is_per_record_iter(node.iter)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "per-record Python loop inside a vectorized code "
                        "path; express this as NumPy array operations or "
                        "move it to the mode='pure' branch",
                    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.If) and self._is_vectorized_guard(node.test):
                yield from self._scan_block(ctx, node.body)
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and "vectorized" in node.name.lower()
            ):
                yield from self._scan_block(ctx, node.body)


#: The module-local rule set, in id order.
DEFAULT_RULES: tuple[Rule, ...] = (
    SharedMutableCaptureRule(),
    UnaccountedWallClockRule(),
    UnlabeledPhaseRule(),
    ImpureAggregateRule(),
    GilBlindLoopRule(),
)


def _project_rules() -> tuple[Rule, ...]:
    from repro.analysis.flow.rules import PROJECT_RULES

    return PROJECT_RULES


#: The full shipped catalogue: module rules plus the whole-program
#: PT006–PT010 family (and the interprocedural PT001 extension).
ALL_RULES: tuple[Rule, ...] = DEFAULT_RULES + _project_rules()

RULES_BY_ID = {rule.id: rule for rule in ALL_RULES}
