"""Whole-program dataflow layer of the lint framework.

Three stages, deliberately separable (the summary cache serializes the
output of stage 1, so warm lint runs never re-parse unchanged files):

1. **Extraction** (:func:`~repro.analysis.flow.effects.extract_module`) —
   one pass over a module's AST producing a :class:`ModuleSummary`:
   symbol tables, symbolic call references, executor dispatch sites,
   per-function *seed* effects, and the compact taint graphs of shm
   mapping windows.  Pure function of the source; JSON-serializable.
2. **Resolution** (:meth:`~repro.analysis.flow.callgraph.CallGraph.build`)
   — name/attribute/partial/method resolution across modules, producing
   the project call graph and its SCC condensation.
3. **Effect fixpoint** (:func:`~repro.analysis.flow.effects.solve_effects`)
   — bottom-up propagation of effect summaries over the SCCs (callees
   before callers; cyclic components iterated to a fixed point).

The PT006–PT010 rule family (:mod:`repro.analysis.flow.rules`) consumes
the solved summaries; see ``docs/static_analysis.md`` for the catalogue.
"""

from repro.analysis.flow.callgraph import (
    CallGraph,
    CallRef,
    ClassNode,
    DispatchSite,
    FuncNode,
    ModuleSummary,
    TaskRef,
    TypeRef,
)
from repro.analysis.flow.effects import (
    EffectMap,
    EffectSummary,
    Witness,
    extract_module,
    solve_effects,
)
from repro.analysis.flow.rules import (
    PROJECT_RULES,
    FaultBlindPhaseRule,
    NondeterminismSourceRule,
    ShmViewEscapeRule,
    TransitiveImpureAggregateRule,
    TransitiveSharedMutationRule,
    UnpicklableTaskCaptureRule,
)

__all__ = [
    "CallGraph",
    "CallRef",
    "ClassNode",
    "DispatchSite",
    "FuncNode",
    "ModuleSummary",
    "TaskRef",
    "TypeRef",
    "EffectMap",
    "EffectSummary",
    "Witness",
    "extract_module",
    "solve_effects",
    "PROJECT_RULES",
    "UnpicklableTaskCaptureRule",
    "ShmViewEscapeRule",
    "NondeterminismSourceRule",
    "FaultBlindPhaseRule",
    "TransitiveImpureAggregateRule",
    "TransitiveSharedMutationRule",
]
