"""Interprocedural rules PT006–PT010 (plus the PT001 extension).

Every rule here is a :class:`~repro.analysis.model.ProjectRule` consuming
the call graph and the solved effect summaries from
:class:`~repro.analysis.model.ProjectContext`.  The catalogue::

    PT006  unpicklable-task-capture     dispatched tasks must pickle
    PT007  shm-view-escape              no view outlives its mapping window
    PT008  nondeterminism-source        merge/schedule order must be pure
    PT009  fault-blind-phase            booked phases need a fault site
    PT010  transitive-impure-aggregate  PT004 through helper calls
    PT001  (extension)                  captured mutation through helpers

Resolution is conservative (unresolved callees contribute nothing), so
the family under-approximates; see ``docs/static_analysis.md`` for the
semantics and worked fixes.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.flow.callgraph import (
    LOCALS,
    CallGraph,
    CallRef,
    FuncNode,
    TaskRef,
)
from repro.analysis.flow.effects import ShmBlock, Witness, _self_offset
from repro.analysis.model import (
    Finding,
    ProjectContext,
    ProjectRule,
    Severity,
)

#: Path components exempt from dispatch-task rules: the sanitizer runs
#: deliberately racy probe tasks in-thread and never crosses a process.
DISPATCH_EXEMPT = frozenset({"analysis"})

#: Path components exempt from PT009: the accounting/fault layers *are*
#: the mechanism, and bench harnesses book phases for raw measurement.
PT009_EXEMPT = frozenset({"simtime", "faults", "bench", "benchmarks", "analysis"})

_PURE_AGG_METHODS = frozenset({"make_delta", "combine", "negate", "is_null_delta"})
_ACC_AGG_METHODS = frozenset({"apply"})


def _parts(graph: CallGraph, fn: FuncNode) -> frozenset:
    mod = graph.modules.get(fn.module)
    return frozenset(mod.path_parts if mod is not None else ())


def _iter_functions(graph: CallGraph) -> Iterator[FuncNode]:
    for qual in sorted(graph.functions):
        yield graph.functions[qual]


def _task_desc(task: TaskRef) -> str:
    if task.form == "lambda":
        return "lambda task"
    if task.name:
        return f"task {task.name!r}"
    return "dispatched task"


class UnpicklableTaskCaptureRule(ProjectRule):
    """PT006 — anything dispatched via ``map_parallel`` must pickle.

    The process backend ships each task to a worker with :mod:`pickle`;
    lambdas and nested functions pickle by qualified name and fail (or,
    worse, resolve to the wrong object after a refactor), and captured
    locks / open handles / ``SharedMemory`` objects fail outright.
    ``run_serial`` is exempt — it runs in the parent process by design.
    """

    id = "PT006"
    name = "unpicklable-task-capture"
    severity = Severity.ERROR
    rationale = (
        "Dispatched tasks cross a process boundary on the process "
        "backend; a task must be a module-level callable (e.g. a frozen "
        "dataclass with __call__) whose every field pickles."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for fn in _iter_functions(graph):
            if DISPATCH_EXEMPT & _parts(graph, fn):
                continue
            if fn.summary is None:
                continue
            for d in fn.summary.dispatches:
                if d.method != "map_parallel":
                    continue
                t = d.task
                if t.form == "lambda":
                    yield self.finding_at(
                        fn.path, t.line, t.col,
                        "lambda passed to map_parallel cannot cross a "
                        "process boundary (pickled by qualified name); "
                        "define a module-level task, e.g. a frozen "
                        "dataclass with __call__",
                    )
                elif t.form == "local_function":
                    yield self.finding_at(
                        fn.path, t.line, t.col,
                        f"task {t.name!r} is a nested function (closure): "
                        "pickled by qualified name it cannot cross a "
                        "process boundary, and its captured variables are "
                        "silently re-bound per worker; hoist it to module "
                        "level",
                    )
                elif t.form == "function":
                    qual = graph.resolve_task(fn, t)
                    if qual is not None and f".{LOCALS}." in qual:
                        yield self.finding_at(
                            fn.path, t.line, t.col,
                            f"task {t.name!r} resolves to the nested "
                            f"function {qual}; nested functions are "
                            "unpicklable on the process backend — hoist "
                            "it to module level",
                        )
                elif t.form == "constructor" and t.issues:
                    yield self.finding_at(
                        fn.path, t.line, t.col,
                        f"task {t.name}(...) captures "
                        f"{', '.join(t.issues)}; every field of a "
                        "dispatched task must be picklable",
                    )
                elif t.form == "partial":
                    qual = (
                        graph._resolve_name(fn, t.name) if t.name else None
                    )
                    if qual is not None and f".{LOCALS}." in qual:
                        yield self.finding_at(
                            fn.path, t.line, t.col,
                            f"functools.partial wraps the nested function "
                            f"{t.name!r}; the partial pickles but its "
                            "target does not — hoist the target to module "
                            "level",
                        )
                    if t.issues:
                        yield self.finding_at(
                            fn.path, t.line, t.col,
                            f"functools.partial binds {', '.join(t.issues)}"
                            "; bound arguments ship to workers and must "
                            "pickle",
                        )


class TransitiveSharedMutationRule(ProjectRule):
    """PT001 (interprocedural) — captured-state mutation through helpers.

    The module-local PT001 sees a lexical closure mutating its capture;
    this extension follows the dispatched task through the call graph, so
    a mutation buried two helpers deep — or behind a task object's
    ``__call__`` — still fails the gate.
    """

    id = "PT001"
    name = "transitive-shared-mutable-capture"
    severity = Severity.ERROR
    rationale = (
        "Step-1 tasks must be effect-free; a dispatched task that "
        "transitively mutates captured or global state races under the "
        "thread backend and silently diverges under the process backend."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        effects = project.effects
        for fn in _iter_functions(graph):
            if DISPATCH_EXEMPT & _parts(graph, fn):
                continue
            if fn.summary is None:
                continue
            for d in fn.summary.dispatches:
                if d.method != "map_parallel":
                    continue
                qual = graph.resolve_task(fn, d.task)
                if qual is None or qual not in effects:
                    continue
                for name, w in sorted(effects[qual].mut_captured.items()):
                    if not w.chain and d.task.form in ("lambda", "local_function"):
                        # The lexical PT001 already points at the body.
                        continue
                    yield self.finding_at(
                        fn.path, d.line, d.col,
                        f"{_task_desc(d.task)} transitively mutates "
                        f"captured/global state {name!r} "
                        f"({w.render_chain()}{w.path}:{w.line}); Step-1 "
                        "tasks must return values, not mutate shared "
                        "structures",
                    )


class ShmViewEscapeRule(ProjectRule):
    """PT007 — no NumPy view may outlive its shm mapping window.

    A view produced inside ``with chunk.open() as c:`` points into the
    mapped buffer; once the window closes the mapping is gone and the
    view silently reads unmapped (or reused) memory.  Results must be
    materialized (pickled/copied) *inside* the window.
    """

    id = "PT007"
    name = "shm-view-escape"
    severity = Severity.ERROR
    rationale = (
        "Zero-copy shm views are only valid inside the mapping window; "
        "an escaping view is the PR 3 dangling-view bug class — pickle "
        "or copy the result before the window closes."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        effects = project.effects
        for fn in _iter_functions(graph):
            if fn.summary is None:
                continue
            for block in fn.summary.shm_blocks:
                yield from self._replay(graph, effects, fn, block)

    def _replay(
        self, graph: CallGraph, effects: dict, fn: FuncNode, block: ShmBlock
    ) -> Iterator[Finding]:
        tainted: set[str] = {block.alias}
        for op in block.ops:
            if op.kind == "assign":
                hit = bool(set(op.sources) & tainted)
                if op.func_kind == "sanitizer":
                    hit = False
                elif op.func_kind == "name" and hit:
                    hit = self._call_taints(graph, effects, fn, op, tainted)
                elif op.func_kind == "unknown_call":
                    hit = False
                if hit:
                    tainted.add(op.target)
                else:
                    tainted.discard(op.target)
            elif op.kind in ("return", "yield"):
                if op.func_kind == "sanitizer":
                    continue
                names = sorted(set(op.sources) & tainted)
                if names:
                    yield self.finding_at(
                        fn.path, op.line, op.col,
                        f"{op.kind} of {', '.join(repr(n) for n in names)} "
                        "escapes the shm mapping window opened at line "
                        f"{block.line}; the view dangles once the window "
                        "closes — pickle or copy inside the window",
                    )
            elif op.kind == "store":
                names = sorted(set(op.sources) & tainted)
                if names:
                    yield self.finding_at(
                        fn.path, op.line, op.col,
                        f"stores {', '.join(repr(n) for n in names)} into "
                        f"{op.target!r}, which outlives the shm mapping "
                        f"window opened at line {block.line}; copy the "
                        "data before the window closes",
                    )
            elif op.kind == "load_after":
                if op.target in tainted:
                    yield self.finding_at(
                        fn.path, op.line, op.col,
                        f"{op.target!r} is a view into the shm mapping "
                        f"window opened at line {block.line} and is used "
                        "after the window closed; materialize it inside "
                        "the window",
                    )
                    tainted.discard(op.target)  # one finding per name

    def _call_taints(
        self, graph: CallGraph, effects: dict, fn: FuncNode, op, tainted: set
    ) -> bool:
        """Does a resolved project call propagate taint to its result?"""
        ref = CallRef("name", op.func_name)
        qual = graph.resolve(fn, ref)
        if qual is None or qual not in effects:
            # Unresolved calls are assumed to materialize their result;
            # unresolvable receivers (builtins, numpy) overwhelmingly do.
            return False
        if not effects[qual].returns_view:
            return False
        return bool(set(op.arg_sources) & tainted) or not op.arg_sources


class NondeterminismSourceRule(ProjectRule):
    """PT008 — nondeterminism feeding merge or schedule order.

    Chaos parity (PR 5) asserts bit-identical results across fault
    seeds; that only holds if no task or ordering decision consults an
    unseeded RNG, the wall clock, or set-iteration order.
    """

    id = "PT008"
    name = "nondeterminism-source"
    severity = Severity.ERROR
    rationale = (
        "Deterministic replay (and the chaos-parity suite) requires "
        "every random draw to come from a seeded generator, every time "
        "read to go through repro.simtime.measure, and every ordered "
        "result to be independent of set-iteration order."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        effects = project.effects
        for fn in _iter_functions(graph):
            if fn.summary is None:
                continue
            s = fn.summary
            if s.unseeded_random is not None:
                w = s.unseeded_random
                yield self.finding_at(
                    fn.path, w.line, w.col,
                    f"{w.desc}; draw from a generator seeded by the run "
                    "config (np.random.default_rng(seed) / random.Random(seed))",
                )
            for w in s.set_order:
                yield self.finding_at(fn.path, w.line, w.col, w.desc)
            for d in s.dispatches:
                if d.method != "map_parallel":
                    continue
                if d.items_is_set:
                    yield self.finding_at(
                        fn.path, d.line, d.col,
                        "map_parallel items are built from a set: task "
                        "order — and hence merge/schedule order — varies "
                        "per process (PYTHONHASHSEED); sort the items",
                    )
                qual = graph.resolve_task(fn, d.task)
                if qual is None or qual not in effects:
                    continue
                eff = effects[qual]
                if eff.unseeded_random is not None:
                    w = eff.unseeded_random
                    yield self.finding_at(
                        fn.path, d.line, d.col,
                        f"{_task_desc(d.task)} transitively draws "
                        f"unseeded randomness ({w.render_chain()}"
                        f"{w.path}:{w.line}); chaos parity requires "
                        "seeded generators threaded through the task",
                    )
                if eff.wall_clock is not None:
                    w = eff.wall_clock
                    yield self.finding_at(
                        fn.path, d.line, d.col,
                        f"{_task_desc(d.task)} transitively reads the "
                        f"wall clock ({w.render_chain()}{w.path}:{w.line})"
                        "; route timing through repro.simtime.measure so "
                        "the cost is booked, not raced",
                    )


class FaultBlindPhaseRule(ProjectRule):
    """PT009 — a booked parallel phase the fault plane cannot reach.

    ``--faults`` draws per-(site, task, attempt); a phase booked
    directly on the clock with no reachable ``FaultInjector`` session is
    silently never exercised by the chaos suite.
    """

    id = "PT009"
    name = "fault-blind-phase"
    severity = Severity.ERROR
    rationale = (
        "Every parallel phase must either run through an executor (which "
        "opens a PhaseSession) or open one itself; otherwise chaos runs "
        "report full coverage while skipping the phase entirely."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        effects = project.effects
        for fn in _iter_functions(graph):
            if PT009_EXEMPT & _parts(graph, fn):
                continue
            if fn.summary is None:
                continue
            eff = effects.get(fn.qual)
            for kind, line, col in fn.summary.bookings:
                if kind != "parallel":
                    continue
                if eff is not None and eff.fault_site:
                    continue
                yield self.finding_at(
                    fn.path, line, col,
                    "books a parallel phase directly on the clock with no "
                    "FaultInjector site reachable from this function; "
                    "wrap the phase in injector.begin_phase(...) (or "
                    "dispatch through an executor) so --faults can "
                    "exercise it",
                )


class TransitiveImpureAggregateRule(ProjectRule):
    """PT010 — PT004's value-semantics check through helper calls.

    PT004 sees ``combine`` mutate its argument lexically; this rule
    follows protected parameters through calls, so ``combine`` handing
    its delta to a helper that ``.update()``s it is caught too.
    """

    id = "PT010"
    name = "transitive-impure-aggregate"
    severity = Severity.ERROR
    rationale = (
        "Deltas are shared between delta maps and merge levels; passing "
        "one to a helper that mutates it corrupts other maps exactly "
        "like a direct mutation would."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        effects = project.effects
        for module in sorted(graph.modules):
            mod = graph.modules[module]
            for cls_name in sorted(mod.classes):
                cls = mod.classes[cls_name]
                if not self._is_aggregate(graph, cls):
                    continue
                for method in sorted(cls.methods):
                    if method in _PURE_AGG_METHODS:
                        protected_from = 1
                    elif method in _ACC_AGG_METHODS:
                        protected_from = 2
                    else:
                        continue
                    qual = cls.methods[method]
                    fn = graph.functions.get(qual)
                    if fn is None or fn.summary is None:
                        continue
                    yield from self._check_method(
                        graph, effects, cls.name, fn, protected_from
                    )

    def _is_aggregate(self, graph: CallGraph, cls, _seen=frozenset()) -> bool:
        if cls.qual in _seen:
            return False
        if "aggregate" in cls.name.lower():
            return True
        for base in cls.bases:
            if "aggregate" in base.lower():
                return True
            parent = graph.resolve_class(base, cls.module)
            if parent is not None and self._is_aggregate(
                graph, parent, _seen | {cls.qual}
            ):
                return True
        return False

    def _check_method(
        self, graph, effects, cls_name, fn: FuncNode, protected_from: int
    ) -> Iterator[Finding]:
        for flow in fn.summary.param_flows:
            if flow.param_index < protected_from:
                continue
            qual = graph.resolve(fn, flow.ref)
            if qual is None or qual not in effects:
                continue
            callee = graph.functions[qual]
            if flow.callee_kw:
                try:
                    pos = callee.params.index(flow.callee_kw)
                except ValueError:
                    continue
            else:
                pos = flow.callee_pos + _self_offset(callee)
            w = effects[qual].mutates_params.get(pos)
            if w is None:
                continue
            param = (
                fn.params[flow.param_index]
                if flow.param_index < len(fn.params) else "?"
            )
            yield self.finding_at(
                fn.path, flow.line, flow.col,
                f"{cls_name}.{fn.name} passes its input {param!r} to "
                f"{callee.name}, which mutates it "
                f"({Witness(w.path, w.line, w.col, w.desc, (qual,) + w.chain).render_chain()}"
                f"{w.path}:{w.line}); deltas are shared between delta "
                "maps — build a new value instead",
            )


#: The interprocedural rule set, in id order (PT001 extension first).
PROJECT_RULES: tuple[ProjectRule, ...] = (
    TransitiveSharedMutationRule(),
    UnpicklableTaskCaptureRule(),
    ShmViewEscapeRule(),
    NondeterminismSourceRule(),
    FaultBlindPhaseRule(),
    TransitiveImpureAggregateRule(),
)

PROJECT_RULES_BY_ID = {rule.id: rule for rule in PROJECT_RULES}
