"""Project call graph: symbols, resolution, and SCCs.

The graph is built from :class:`ModuleSummary` objects — the serializable
product of :func:`repro.analysis.flow.effects.extract_module` — so the
whole-program stages never need an AST.  Resolution is deliberately
*lexical and conservative*: an edge exists only when the callee can be
pinned to a project function (plain names, ``self.method`` dispatch on
known classes, imported symbols, ``functools.partial`` targets, instances
of project classes bound to locals).  Unresolvable calls (builtins, numpy,
protocol receivers) simply contribute no edge, which keeps every
downstream rule under-approximate rather than noisy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.flow.effects import FuncSummary

#: Separator between a module's dotted name and its symbol path, chosen
#: so quals stay unambiguous ("repro.core.joins:ParTimeJoin.execute").
QUAL_SEP = ":"
#: Path component of nested (hence unpicklable-by-reference) functions.
LOCALS = "<locals>"


@dataclass(frozen=True)
class CallRef:
    """One call site, recorded symbolically during extraction.

    ``form`` is ``"name"`` for ``f(...)`` (``name`` may be dotted when the
    callee was written as an attribute chain of modules, e.g.
    ``repro.core.joins.helper``) and ``"attr"`` for ``base.attr(...)``.
    """

    form: str
    name: str = ""
    attr: str = ""
    line: int = 0
    col: int = 0

    def to_dict(self) -> dict:
        return {
            "form": self.form, "name": self.name, "attr": self.attr,
            "line": self.line, "col": self.col,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CallRef":
        return cls(**d)


@dataclass(frozen=True)
class TypeRef:
    """What a local (or module-level) name is bound to, when statically
    evident.  ``kind`` ∈ instance/partial/callable/lambda/set/lock/file/
    shm/shm_chunk/generator; ``target`` names the class / wrapped callable
    / nested-function qual; ``issues`` carries unpicklable ingredients
    observed at the binding site (constructor or partial arguments)."""

    kind: str
    target: str = ""
    issues: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"kind": self.kind, "target": self.target,
                "issues": list(self.issues)}

    @classmethod
    def from_dict(cls, d: dict) -> "TypeRef":
        return cls(d["kind"], d.get("target", ""),
                   tuple(d.get("issues", ())))


@dataclass(frozen=True)
class TaskRef:
    """The task argument of one executor dispatch, symbolically.

    ``form`` ∈ lambda/local_function/function/constructor/partial/
    attribute/other.  ``qual`` is set when the callable's body function is
    already known locally (nested defs); ``name`` is the written name
    (class name for constructors, wrapped target for partials).
    """

    form: str
    name: str = ""
    qual: str = ""
    issues: tuple[str, ...] = ()
    line: int = 0
    col: int = 0

    def to_dict(self) -> dict:
        return {"form": self.form, "name": self.name, "qual": self.qual,
                "issues": list(self.issues), "line": self.line,
                "col": self.col}

    @classmethod
    def from_dict(cls, d: dict) -> "TaskRef":
        return cls(d["form"], d.get("name", ""), d.get("qual", ""),
                   tuple(d.get("issues", ())), d.get("line", 0),
                   d.get("col", 0))


@dataclass(frozen=True)
class DispatchSite:
    """One ``<executor>.map_parallel(...)`` / ``.run_serial(...)`` call."""

    method: str
    task: TaskRef
    items_is_set: bool = False
    line: int = 0
    col: int = 0

    def to_dict(self) -> dict:
        return {"method": self.method, "task": self.task.to_dict(),
                "items_is_set": self.items_is_set, "line": self.line,
                "col": self.col}

    @classmethod
    def from_dict(cls, d: dict) -> "DispatchSite":
        return cls(d["method"], TaskRef.from_dict(d["task"]),
                   d.get("items_is_set", False), d.get("line", 0),
                   d.get("col", 0))


@dataclass
class FuncNode:
    """One project function/method/lambda plus its local summary."""

    qual: str
    module: str
    path: str
    name: str
    cls: str | None
    params: tuple[str, ...]
    lineno: int
    col: int
    is_nested: bool
    is_lambda: bool
    local_bindings: frozenset[str]
    calls: tuple[CallRef, ...]
    var_types: dict[str, TypeRef]
    summary: "FuncSummary" = None  # attached by extract_module

    @property
    def enclosing_quals(self) -> Iterator[str]:
        """Quals of lexically enclosing functions, innermost first."""
        parts = self.qual.split(f".{LOCALS}.")
        for i in range(len(parts) - 1, 0, -1):
            yield f".{LOCALS}.".join(parts[:i])

    def to_dict(self) -> dict:
        return {
            "qual": self.qual, "module": self.module, "path": self.path,
            "name": self.name, "cls": self.cls, "params": list(self.params),
            "lineno": self.lineno, "col": self.col,
            "is_nested": self.is_nested, "is_lambda": self.is_lambda,
            "local_bindings": sorted(self.local_bindings),
            "calls": [c.to_dict() for c in self.calls],
            "var_types": {k: v.to_dict() for k, v in self.var_types.items()},
            "summary": self.summary.to_dict() if self.summary else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FuncNode":
        from repro.analysis.flow.effects import FuncSummary

        return cls(
            qual=d["qual"], module=d["module"], path=d["path"],
            name=d["name"], cls=d.get("cls"),
            params=tuple(d.get("params", ())),
            lineno=d.get("lineno", 1), col=d.get("col", 0),
            is_nested=d.get("is_nested", False),
            is_lambda=d.get("is_lambda", False),
            local_bindings=frozenset(d.get("local_bindings", ())),
            calls=tuple(CallRef.from_dict(c) for c in d.get("calls", ())),
            var_types={
                k: TypeRef.from_dict(v)
                for k, v in d.get("var_types", {}).items()
            },
            summary=(
                FuncSummary.from_dict(d["summary"]) if d.get("summary")
                else None
            ),
        )


@dataclass
class ClassNode:
    """One project class: methods by name, base names as written."""

    name: str
    module: str
    lineno: int
    bases: tuple[str, ...]
    methods: dict[str, str]  # method name -> function qual

    @property
    def qual(self) -> str:
        return f"{self.module}{QUAL_SEP}{self.name}"

    def to_dict(self) -> dict:
        return {"name": self.name, "module": self.module,
                "lineno": self.lineno, "bases": list(self.bases),
                "methods": dict(self.methods)}

    @classmethod
    def from_dict(cls, d: dict) -> "ClassNode":
        return cls(d["name"], d["module"], d.get("lineno", 1),
                   tuple(d.get("bases", ())), dict(d.get("methods", {})))


@dataclass
class ModuleSummary:
    """Everything the whole-program stages need from one module."""

    module: str
    path: str
    path_parts: tuple[str, ...]
    imports: dict[str, str]  # local name -> dotted target
    functions: dict[str, FuncNode] = field(default_factory=dict)
    classes: dict[str, ClassNode] = field(default_factory=dict)
    module_var_types: dict[str, TypeRef] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "module": self.module, "path": self.path,
            "path_parts": list(self.path_parts),
            "imports": dict(self.imports),
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "classes": {n: c.to_dict() for n, c in self.classes.items()},
            "module_var_types": {
                k: v.to_dict() for k, v in self.module_var_types.items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleSummary":
        return cls(
            module=d["module"], path=d["path"],
            path_parts=tuple(d.get("path_parts", ())),
            imports=dict(d.get("imports", {})),
            functions={
                q: FuncNode.from_dict(f)
                for q, f in d.get("functions", {}).items()
            },
            classes={
                n: ClassNode.from_dict(c)
                for n, c in d.get("classes", {}).items()
            },
            module_var_types={
                k: TypeRef.from_dict(v)
                for k, v in d.get("module_var_types", {}).items()
            },
        )


class CallGraph:
    """The resolved whole-program call graph."""

    def __init__(self, modules: list[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {m.module: m for m in modules}
        self.functions: dict[str, FuncNode] = {}
        for mod in modules:
            self.functions.update(mod.functions)
        #: caller qual -> list of resolved callee quals (with the ref).
        self.edges: dict[str, list[tuple[str, CallRef]]] = {}

    # ------------------------------------------------------------ building

    @classmethod
    def build(cls, modules: list[ModuleSummary]) -> "CallGraph":
        graph = cls(modules)
        for fn in graph.functions.values():
            resolved: list[tuple[str, CallRef]] = []
            for ref in fn.calls:
                target = graph.resolve(fn, ref)
                if target is not None:
                    resolved.append((target, ref))
            graph.edges[fn.qual] = resolved
        return graph

    # ---------------------------------------------------------- resolution

    def _module_of(self, fn_or_name) -> "ModuleSummary | None":
        name = fn_or_name if isinstance(fn_or_name, str) else fn_or_name.module
        return self.modules.get(name)

    def resolve_class(
        self, name: str, module: str, _seen: frozenset = frozenset()
    ) -> "ClassNode | None":
        """A class by written name from the perspective of ``module``."""
        if (name, module) in _seen:
            return None
        mod = self.modules.get(module)
        if mod is None:
            return None
        if name in mod.classes:
            return mod.classes[name]
        target = mod.imports.get(name)
        if target:
            # "pkg.mod.Class" or a re-export; try tail-split.
            head, _, tail = target.rpartition(".")
            if head in self.modules and tail in self.modules[head].classes:
                return self.modules[head].classes[tail]
        return None

    def resolve_method(
        self, cls: ClassNode, method: str, _depth: int = 0
    ) -> "str | None":
        """Method qual on ``cls`` or (DFS, in-project) its bases."""
        if method in cls.methods:
            return cls.methods[method]
        if _depth > 8:
            return None
        for base in cls.bases:
            parent = self.resolve_class(base, cls.module)
            if parent is not None and parent is not cls:
                found = self.resolve_method(parent, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_symbol(self, dotted: str) -> "str | None":
        """A dotted ``pkg.mod.sym`` to a function qual (class → __init__)."""
        head, _, tail = dotted.rpartition(".")
        mod = self.modules.get(head)
        if mod is None:
            return None
        qual = f"{head}{QUAL_SEP}{tail}"
        if qual in self.functions:
            return qual
        if tail in mod.classes:
            return self.resolve_method(mod.classes[tail], "__init__")
        return None

    def _resolve_name(
        self, fn: FuncNode, name: str, _depth: int = 0
    ) -> "str | None":
        """A bare name called from inside ``fn``."""
        if _depth > 8:
            return None
        # 1. nested function of fn or of an enclosing scope
        probe = f"{fn.qual}.{LOCALS}.{name}"
        if probe in self.functions:
            return probe
        for enclosing in fn.enclosing_quals:
            probe = f"{enclosing}.{LOCALS}.{name}"
            if probe in self.functions:
                return probe
        # 2. local bindings with known callable types
        tref = fn.var_types.get(name)
        if tref is not None:
            return self._resolve_typeref_callable(fn, tref, _depth)
        # 3. module-level function / class / module binding
        mod = self._module_of(fn)
        if mod is not None:
            qual = f"{fn.module}{QUAL_SEP}{name}"
            if qual in self.functions:
                return qual
            if name in mod.classes:
                return self.resolve_method(mod.classes[name], "__init__")
            mref = mod.module_var_types.get(name)
            if mref is not None:
                return self._resolve_typeref_callable(fn, mref, _depth)
            target = mod.imports.get(name)
            if target:
                return self._resolve_symbol(target)
        return None

    def _resolve_typeref_callable(
        self, fn: FuncNode, tref: TypeRef, _depth: int
    ) -> "str | None":
        if tref.kind in ("callable", "lambda") and tref.target:
            return tref.target if tref.target in self.functions else None
        if tref.kind == "partial" and tref.target:
            return self._resolve_name(fn, tref.target, _depth + 1)
        if tref.kind == "instance" and tref.target:
            klass = self.resolve_class(tref.target, fn.module)
            if klass is not None:
                return self.resolve_method(klass, "__call__")
        return None

    def resolve(self, fn: FuncNode, ref: CallRef) -> "str | None":
        """The callee qual of one call site, or ``None``."""
        if ref.form == "name":
            if "." in ref.name:
                # Dotted module-attribute call: "pkg.mod.f" or "alias.f".
                head, _, tail = ref.name.rpartition(".")
                mod = self._module_of(fn)
                dotted = head
                if mod is not None and head.split(".")[0] in mod.imports:
                    first, _, rest = head.partition(".")
                    dotted = mod.imports[first] + (f".{rest}" if rest else "")
                return self._resolve_symbol(f"{dotted}.{tail}")
            return self._resolve_name(fn, ref.name)
        if ref.form == "attr":
            base, attr = ref.name, ref.attr
            if base in ("self", "cls") and fn.cls:
                klass = self.resolve_class(fn.cls, fn.module)
                if klass is not None:
                    return self.resolve_method(klass, attr)
                return None
            tref = fn.var_types.get(base)
            if tref is not None and tref.kind == "instance" and tref.target:
                klass = self.resolve_class(tref.target, fn.module)
                if klass is not None:
                    return self.resolve_method(klass, attr)
                return None
            mod = self._module_of(fn)
            if mod is not None:
                target = mod.imports.get(base)
                if target:
                    if target in self.modules:
                        return self._resolve_symbol(f"{target}.{attr}")
                    # imported class: Class.method (static-ish dispatch)
                    head, _, tail = target.rpartition(".")
                    if head in self.modules and tail in self.modules[head].classes:
                        return self.resolve_method(
                            self.modules[head].classes[tail], attr
                        )
                mref = mod.module_var_types.get(base)
                if mref is not None and mref.kind == "instance" and mref.target:
                    klass = self.resolve_class(mref.target, fn.module)
                    if klass is not None:
                        return self.resolve_method(klass, attr)
        return None

    def resolve_task(self, fn: FuncNode, task: TaskRef) -> "str | None":
        """The function that runs when a dispatched task is *called*."""
        if task.qual and task.qual in self.functions:
            return task.qual
        if task.form in ("local_function", "function", "partial"):
            return self._resolve_name(fn, task.name)
        if task.form == "constructor":
            klass = self.resolve_class(task.name, fn.module)
            if klass is not None:
                return self.resolve_method(klass, "__call__")
        if task.form == "attribute" and task.name.startswith("self."):
            if fn.cls:
                klass = self.resolve_class(fn.cls, fn.module)
                if klass is not None:
                    return self.resolve_method(klass, task.name[5:])
        return None

    # ------------------------------------------------------------- ordering

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order
        (callees before callers) — iterative Tarjan, deterministic."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]

        def edges_of(q: str) -> list[str]:
            return [t for t, _ in self.edges.get(q, ())]

        for root in sorted(self.functions):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, ei = work.pop()
                if ei == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recursed = False
                targets = edges_of(node)
                for i in range(ei, len(targets)):
                    tgt = targets[i]
                    if tgt not in self.functions:
                        continue
                    if tgt not in index:
                        work.append((node, i + 1))
                        work.append((tgt, 0))
                        recursed = True
                        break
                    if tgt in on_stack:
                        low[node] = min(low[node], index[tgt])
                if recursed:
                    continue
                if low[node] == index[node]:
                    comp: list[str] = []
                    while True:
                        top = stack.pop()
                        on_stack.discard(top)
                        comp.append(top)
                        if top == node:
                            break
                    out.append(sorted(comp))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return out
