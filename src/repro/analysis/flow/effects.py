"""Per-function effect summaries: extraction and the bottom-up fixpoint.

**Extraction** (:func:`extract_module`) runs once per module and records,
for every function, the *seed* effects its own body exhibits:

* ``mut_captured`` — in-place mutation / rebinding of state captured from
  an enclosing (or global) scope (the PT001 race shape);
* ``wall_clock`` — direct ``time.*`` reads outside the accounting layer;
* ``unseeded_random`` — module-level ``random`` / legacy ``numpy.random``
  draws (no seeded generator object);
* ``set_order`` — iteration order of a ``set`` escaping into an ordered
  result (list/loop/dispatch items);
* ``fault_site`` — the function opens a fault-injection
  :class:`~repro.faults.inject.PhaseSession` (``begin_phase``);
* ``bookings`` — direct ``clock.parallel`` / ``clock.serial`` phase
  bookings (consumed by PT009);
* ``dispatches`` — executor ``map_parallel``/``run_serial`` sites with a
  symbolic :class:`~repro.analysis.flow.callgraph.TaskRef`;
* ``shm_blocks`` — compact taint graphs of ``with chunk.open()`` mapping
  windows (consumed by PT007);
* ``mutates_params`` / ``ret_views`` / ``param_flows`` — the raw material
  for the transitive value-semantics (PT010) and view-escape (PT007)
  propagation.

**Solving** (:func:`solve_effects`) propagates the seeds bottom-up over
the call graph's SCC condensation: callees before callers, cyclic
components iterated to a fixed point (all effects are monotone over
finite domains, so termination is structural).  Each propagated effect
carries a :class:`Witness` — the terminal source location plus the call
chain that reaches it — so a finding three helpers away still points at
the line that must change.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.callgraph import (
    LOCALS,
    QUAL_SEP,
    CallRef,
    ClassNode,
    DispatchSite,
    FuncNode,
    ModuleSummary,
    TaskRef,
    TypeRef,
)
from repro.analysis.model import ModuleContext
from repro.analysis.scopes import (
    MUTATING_METHODS,
    captured_mutations,
    function_params,
    local_bindings,
    mutations_of_names,
)

#: Wall-clock attributes of the ``time`` module (mirrors PT002).
WALL_CLOCK_ATTRS = frozenset(
    {"time", "perf_counter", "monotonic", "process_time", "clock"}
)
#: Module paths whose wall-clock reads are the accounting layer itself.
WALL_CLOCK_EXEMPT = frozenset({"simtime", "bench", "benchmarks"})

#: Module-level draws on the ``random`` module (unseeded global state).
RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "shuffle", "choice", "choices",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes",
})
#: Legacy (implicitly-seeded, global-state) numpy.random draws.
NP_RANDOM_DRAWS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "shuffle",
    "choice", "permutation", "uniform", "normal", "standard_normal",
})

#: Callables whose result owns its buffer (breaks shm-view taint).
SANITIZER_CALLS = frozenset({
    "pickle.dumps", "np.copy", "numpy.copy", "np.array", "numpy.array",
    "copy.deepcopy", "deepcopy", "bytes", "bytearray", "list", "tuple",
    "dict", "set", "frozenset", "sorted", "len", "sum", "min", "max",
    "int", "float", "str", "bool", "repr",
})
#: Methods whose result materialises (vs. aliasing the receiver).
SANITIZER_METHODS = frozenset({
    "copy", "tolist", "item", "tobytes", "sum", "mean", "min", "max",
    "std", "var", "all", "any", "count", "index", "keys",
})

_LOCK_CTORS = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
    "Event", "Barrier",
})

#: Builtins whose result does not depend on argument iteration order — a
#: set expression fed straight into one of these is order-safe.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})


@dataclass(frozen=True)
class Witness:
    """Terminal location of an effect plus the call chain reaching it."""

    path: str
    line: int
    col: int
    desc: str
    chain: tuple[str, ...] = ()

    def with_hop(self, qual: str, limit: int = 6) -> "Witness":
        if len(self.chain) >= limit:
            return self
        return Witness(self.path, self.line, self.col, self.desc,
                       (qual,) + self.chain)

    def render_chain(self) -> str:
        if not self.chain:
            return ""
        names = [q.split(QUAL_SEP)[-1] for q in self.chain]
        return " -> ".join(names) + " -> "

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "desc": self.desc, "chain": list(self.chain)}

    @classmethod
    def from_dict(cls, d: dict) -> "Witness":
        return cls(d["path"], d["line"], d["col"], d["desc"],
                   tuple(d.get("chain", ())))


# --------------------------------------------------------------------------
# shm mapping-window taint graph (serializable; replayed by PT007)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ShmOp:
    """One ordered operation inside (or after) a mapping window.

    ``kind`` ∈ ``assign`` / ``return`` / ``yield`` / ``store`` /
    ``load_after``.  For assigns, ``func_kind`` describes the value:
    ``none`` (pure expression), ``sanitizer``, ``name`` (project call,
    resolved during replay), ``method_on`` (method call whose receiver
    root is ``func_name``) or ``unknown_call``.
    """

    kind: str
    target: str = ""
    sources: tuple[str, ...] = ()
    func_kind: str = "none"
    func_name: str = ""
    attr: str = ""
    arg_sources: tuple[str, ...] = ()  # bare names passed as args (name calls)
    line: int = 0
    col: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "target": self.target,
            "sources": list(self.sources), "func_kind": self.func_kind,
            "func_name": self.func_name, "attr": self.attr,
            "arg_sources": list(self.arg_sources),
            "line": self.line, "col": self.col,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShmOp":
        return cls(d["kind"], d.get("target", ""),
                   tuple(d.get("sources", ())), d.get("func_kind", "none"),
                   d.get("func_name", ""), d.get("attr", ""),
                   tuple(d.get("arg_sources", ())), d.get("line", 0),
                   d.get("col", 0))


@dataclass(frozen=True)
class ShmBlock:
    """One ``with <chunk>.open() as alias:`` mapping window."""

    alias: str
    receiver: str
    line: int
    ops: tuple[ShmOp, ...]

    def to_dict(self) -> dict:
        return {"alias": self.alias, "receiver": self.receiver,
                "line": self.line, "ops": [o.to_dict() for o in self.ops]}

    @classmethod
    def from_dict(cls, d: dict) -> "ShmBlock":
        return cls(d["alias"], d.get("receiver", ""), d.get("line", 0),
                   tuple(ShmOp.from_dict(o) for o in d.get("ops", ())))


@dataclass(frozen=True)
class ParamFlow:
    """A bare parameter passed onward to a callee (PT010 raw material)."""

    ref: CallRef
    param_index: int
    callee_pos: int = -1
    callee_kw: str = ""
    line: int = 0
    col: int = 0

    def to_dict(self) -> dict:
        return {"ref": self.ref.to_dict(), "param_index": self.param_index,
                "callee_pos": self.callee_pos, "callee_kw": self.callee_kw,
                "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, d: dict) -> "ParamFlow":
        return cls(CallRef.from_dict(d["ref"]), d["param_index"],
                   d.get("callee_pos", -1), d.get("callee_kw", ""),
                   d.get("line", 0), d.get("col", 0))


@dataclass(frozen=True)
class RetView:
    """One return expression shape relevant to view propagation.

    ``param_index >= 0`` — returns (a view of) that parameter directly;
    otherwise ``callee`` + ``arg_map`` defer to the callee's summary.
    """

    param_index: int = -1
    callee: str = ""
    arg_map: tuple[tuple[int, int], ...] = ()  # (own param idx, callee pos)
    line: int = 0
    col: int = 0

    def to_dict(self) -> dict:
        return {"param_index": self.param_index, "callee": self.callee,
                "arg_map": [list(p) for p in self.arg_map],
                "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, d: dict) -> "RetView":
        return cls(d.get("param_index", -1), d.get("callee", ""),
                   tuple((a, b) for a, b in d.get("arg_map", ())),
                   d.get("line", 0), d.get("col", 0))


@dataclass
class FuncSummary:
    """Seed effects of one function's own body (serializable)."""

    mut_captured: dict[str, Witness] = field(default_factory=dict)
    wall_clock: Witness | None = None
    unseeded_random: Witness | None = None
    set_order: tuple[Witness, ...] = ()
    fault_site: bool = False
    bookings: tuple[tuple[str, int, int], ...] = ()
    dispatches: tuple[DispatchSite, ...] = ()
    shm_blocks: tuple[ShmBlock, ...] = ()
    mutates_params: dict[int, Witness] = field(default_factory=dict)
    param_flows: tuple[ParamFlow, ...] = ()
    ret_views: tuple[RetView, ...] = ()

    def to_dict(self) -> dict:
        return {
            "mut_captured": {
                k: w.to_dict() for k, w in self.mut_captured.items()
            },
            "wall_clock": self.wall_clock.to_dict() if self.wall_clock else None,
            "unseeded_random": (
                self.unseeded_random.to_dict() if self.unseeded_random else None
            ),
            "set_order": [w.to_dict() for w in self.set_order],
            "fault_site": self.fault_site,
            "bookings": [list(b) for b in self.bookings],
            "dispatches": [d.to_dict() for d in self.dispatches],
            "shm_blocks": [b.to_dict() for b in self.shm_blocks],
            "mutates_params": {
                str(i): w.to_dict() for i, w in self.mutates_params.items()
            },
            "param_flows": [f.to_dict() for f in self.param_flows],
            "ret_views": [r.to_dict() for r in self.ret_views],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FuncSummary":
        return cls(
            mut_captured={
                k: Witness.from_dict(w)
                for k, w in d.get("mut_captured", {}).items()
            },
            wall_clock=(
                Witness.from_dict(d["wall_clock"]) if d.get("wall_clock")
                else None
            ),
            unseeded_random=(
                Witness.from_dict(d["unseeded_random"])
                if d.get("unseeded_random") else None
            ),
            set_order=tuple(
                Witness.from_dict(w) for w in d.get("set_order", ())
            ),
            fault_site=d.get("fault_site", False),
            bookings=tuple(tuple(b) for b in d.get("bookings", ())),
            dispatches=tuple(
                DispatchSite.from_dict(x) for x in d.get("dispatches", ())
            ),
            shm_blocks=tuple(
                ShmBlock.from_dict(x) for x in d.get("shm_blocks", ())
            ),
            mutates_params={
                int(i): Witness.from_dict(w)
                for i, w in d.get("mutates_params", {}).items()
            },
            param_flows=tuple(
                ParamFlow.from_dict(x) for x in d.get("param_flows", ())
            ),
            ret_views=tuple(
                RetView.from_dict(x) for x in d.get("ret_views", ())
            ),
        )


# --------------------------------------------------------------------------
# Extraction helpers
# --------------------------------------------------------------------------


def _module_name(ctx: ModuleContext) -> str:
    parts = list(ctx.path_parts)
    if not parts or not parts[-1].endswith(".py"):
        return "mod"
    parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    parts = [p for p in parts if p not in ("", ".", "..")]
    return ".".join(parts) or "mod"


def _flatten(node: ast.AST) -> "str | None":
    """A pure Name/Attribute chain as dotted text, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_clock(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "clock" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "clock" in node.attr.lower() or _mentions_clock(node.value)
    return False


def _own_nodes(fn_body: list[ast.stmt]):
    """Walk statements, yielding nested def/lambda nodes themselves but
    never descending into their bodies (those get their own FuncNode)."""
    stack: list[ast.AST] = list(fn_body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _loaded_names(node: ast.AST, *, skip_sanitized: bool = False) -> list[str]:
    """Names loaded in an expression; with ``skip_sanitized`` the subtrees
    of sanitizer calls are not descended (their results own their data)."""
    out: list[str] = []
    stack = [node]
    while stack:
        cur = stack.pop()
        if skip_sanitized and isinstance(cur, ast.Call):
            target = _flatten(cur.func)
            if target and (
                target in SANITIZER_CALLS
                or target.split(".")[-1] in ("dumps", "deepcopy")
            ):
                continue
        if isinstance(cur, ast.Name) and isinstance(cur.ctx, ast.Load):
            out.append(cur.id)
        stack.extend(ast.iter_child_nodes(cur))
    return out


def _collect_imports(tree: ast.Module, imports: dict[str, str]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.asname and alias.name or alias.name.split(".")[0]
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # "import a.b.c" binds "a"; remember the root module.
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
                    if "." in alias.name:
                        imports[alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )


class _Extractor:
    """Single-pass AST walk producing the :class:`ModuleSummary`."""

    def __init__(self, ctx: ModuleContext, ms: ModuleSummary) -> None:
        self.ctx = ctx
        self.ms = ms
        self.wall_exempt = bool(WALL_CLOCK_EXEMPT & set(ctx.path_parts))

    def run(self) -> None:
        tree = self.ctx.tree
        # Module-level bindings first (lambdas, locks, partials...).
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and (
                isinstance(stmt.targets[0], ast.Name)
            ):
                tref = self._infer_type(stmt.value, {}, "")
                if tref is not None:
                    self.ms.module_var_types[stmt.targets[0].id] = tref
        # Classes and functions.
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._visit_class(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_function(stmt, cls=None, parent_qual=None)
        # The module body itself is a pseudo-function: top-level dispatch
        # sites, set iterations and random draws (examples, scripts).
        top = [
            s for s in tree.body
            if not isinstance(
                s, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            )
        ]
        self._make_node(
            qual=f"{self.ms.module}{QUAL_SEP}<module>",
            name="<module>", cls=None, params=(),
            lineno=1, col=0, nested=False, is_lambda=False,
            body=top, fn_ast=None,
        )

    # ------------------------------------------------------------ classes

    def _visit_class(self, cls: ast.ClassDef) -> None:
        bases = []
        for b in cls.bases:
            flat = _flatten(b)
            if flat:
                bases.append(flat.split(".")[-1] if "." in flat else flat)
        node = ClassNode(
            name=cls.name, module=self.ms.module, lineno=cls.lineno,
            bases=tuple(bases), methods={},
        )
        self.ms.classes[cls.name] = node
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._visit_function(item, cls=cls.name, parent_qual=None)
                node.methods[item.name] = fn.qual

    # ---------------------------------------------------------- functions

    def _visit_function(
        self,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda",
        cls: "str | None",
        parent_qual: "str | None",
        name: "str | None" = None,
    ) -> FuncNode:
        if isinstance(fn, ast.Lambda):
            fname = name or f"<lambda@{fn.lineno}>"
            body: list[ast.stmt] = [ast.Expr(value=fn.body)]
        else:
            fname = fn.name
            body = fn.body
        if parent_qual:
            qual = f"{parent_qual}.{LOCALS}.{fname}"
        elif cls:
            qual = f"{self.ms.module}{QUAL_SEP}{cls}.{fname}"
        else:
            qual = f"{self.ms.module}{QUAL_SEP}{fname}"
        return self._make_node(
            qual=qual, name=fname, cls=cls,
            params=tuple(function_params(fn)),
            lineno=fn.lineno, col=fn.col_offset,
            nested=parent_qual is not None,
            is_lambda=isinstance(fn, ast.Lambda),
            body=body, fn_ast=fn,
        )

    def _make_node(
        self, qual: str, name: str, cls: "str | None",
        params: tuple[str, ...], lineno: int, col: int,
        nested: bool, is_lambda: bool,
        body: list[ast.stmt], fn_ast,
    ) -> FuncNode:
        var_types: dict[str, TypeRef] = {}
        # First: nested defs get their own nodes (and name bindings).
        seen_lambdas: set[int] = set()
        for stmt in body:
            for sub in _own_nodes([stmt]):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if sub is fn_ast:
                        continue
                    child = self._visit_function(
                        sub, cls=None, parent_qual=qual
                    )
                    var_types[sub.name] = TypeRef("callable", child.qual)
                elif isinstance(sub, ast.Assign) and isinstance(
                    sub.value, ast.Lambda
                ):
                    seen_lambdas.add(id(sub.value))
                    for t in sub.targets:
                        if isinstance(t, ast.Name):
                            child = self._visit_function(
                                sub.value, cls=None, parent_qual=qual,
                                name=t.id,
                            )
                            var_types[t.id] = TypeRef("lambda", child.qual)
                elif isinstance(sub, ast.Lambda) and id(sub) not in seen_lambdas:
                    self._visit_function(sub, cls=None, parent_qual=qual)

        # Second: type inference over own assignments.
        for sub in _own_nodes(body):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and (
                isinstance(sub.targets[0], ast.Name)
            ):
                tname = sub.targets[0].id
                if tname in var_types:
                    continue
                tref = self._infer_type(sub.value, var_types, qual)
                if tref is not None:
                    var_types[tname] = tref
            elif isinstance(sub, ast.AnnAssign) and isinstance(
                sub.target, ast.Name
            ):
                ann = _flatten(sub.annotation) or ""
                if "ShmChunk" in ann:
                    var_types[sub.target.id] = TypeRef("shm_chunk")

        node = FuncNode(
            qual=qual, module=self.ms.module, path=self.ms.path,
            name=name, cls=cls, params=params, lineno=lineno, col=col,
            is_nested=nested, is_lambda=is_lambda,
            local_bindings=(
                frozenset(local_bindings(fn_ast)) if fn_ast is not None
                and not isinstance(fn_ast, ast.Lambda)
                else frozenset(params)
            ),
            calls=(), var_types=var_types,
        )
        node.calls = tuple(self._collect_calls(body))
        node.summary = self._summarize(node, body, fn_ast)
        self.ms.functions[qual] = node
        return node

    # ------------------------------------------------------ type inference

    def _infer_type(
        self, value: ast.AST, var_types: dict[str, TypeRef], qual: str
    ) -> "TypeRef | None":
        if isinstance(value, (ast.Set, ast.SetComp)):
            return TypeRef("set")
        if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            l = self._expr_is_set(value.left, var_types)
            r = self._expr_is_set(value.right, var_types)
            if l and r:
                return TypeRef("set")
        if not isinstance(value, ast.Call):
            return None
        target = _flatten(value.func)
        if target is None:
            return None
        tail = target.split(".")[-1]
        if tail in ("set", "frozenset") and target == tail:
            return TypeRef("set")
        if target == "open":
            return TypeRef("file")
        if tail in _LOCK_CTORS:
            return TypeRef("lock")
        if tail == "SharedMemory":
            return TypeRef("shm")
        if tail == "export_chunk" or tail == "ShmChunk":
            return TypeRef("shm_chunk")
        if tail == "partial":
            wrapped = ""
            issues: list[str] = []
            if value.args:
                first = value.args[0]
                if isinstance(first, ast.Name):
                    wrapped = first.id
                elif isinstance(first, ast.Lambda):
                    issues.append("wraps a lambda")
            issues.extend(self._arg_issues(value, var_types, skip_first=True))
            return TypeRef("partial", wrapped, tuple(issues))
        if "." not in target and target[:1].isupper():
            return TypeRef(
                "instance", target,
                tuple(self._arg_issues(value, var_types)),
            )
        return None

    def _expr_is_set(
        self, node: ast.AST, var_types: dict[str, TypeRef]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            target = _flatten(node.func)
            return target in ("set", "frozenset")
        if isinstance(node, ast.Name):
            tref = var_types.get(node.id) or self.ms.module_var_types.get(
                node.id
            )
            return tref is not None and tref.kind == "set"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._expr_is_set(node.left, var_types) and (
                self._expr_is_set(node.right, var_types)
            )
        return False

    def _arg_issues(
        self, call: ast.Call, var_types: dict[str, TypeRef],
        skip_first: bool = False,
    ) -> list[str]:
        """Unpicklable ingredients among a call's arguments."""
        issues: list[str] = []
        args = list(call.args) + [kw.value for kw in call.keywords]
        if skip_first and args:
            args = args[1:]
        for arg in args:
            if isinstance(arg, ast.Lambda):
                issues.append("a lambda argument")
            elif isinstance(arg, ast.GeneratorExp):
                issues.append("a generator argument")
            elif isinstance(arg, ast.Name):
                tref = var_types.get(arg.id) or (
                    self.ms.module_var_types.get(arg.id)
                )
                if tref is None:
                    continue
                if tref.kind == "lambda":
                    issues.append(f"{arg.id!r} (a lambda)")
                elif tref.kind == "callable" and f".{LOCALS}." in tref.target:
                    issues.append(f"{arg.id!r} (a nested function)")
                elif tref.kind == "lock":
                    issues.append(f"{arg.id!r} (a threading lock)")
                elif tref.kind == "file":
                    issues.append(f"{arg.id!r} (an open file handle)")
                elif tref.kind == "shm":
                    issues.append(f"{arg.id!r} (a SharedMemory object)")
        return issues

    # ----------------------------------------------------------- call refs

    def _collect_calls(self, body: list[ast.stmt]) -> list[CallRef]:
        out: list[CallRef] = []
        for node in _own_nodes(body):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name):
                out.append(CallRef("name", node.func.id,
                                   line=node.lineno, col=node.col_offset))
            elif isinstance(node.func, ast.Attribute):
                base = _flatten(node.func.value)
                if base is None:
                    continue
                if "." in base:
                    out.append(CallRef(
                        "name", f"{base}.{node.func.attr}",
                        line=node.lineno, col=node.col_offset,
                    ))
                else:
                    out.append(CallRef(
                        "attr", base, node.func.attr,
                        line=node.lineno, col=node.col_offset,
                    ))
        return out

    # ------------------------------------------------------------ summary

    def _summarize(
        self, node: FuncNode, body: list[ast.stmt], fn_ast
    ) -> FuncSummary:
        s = FuncSummary()
        path = self.ms.path

        # Captured mutations (whole body, matching PT001's lexical view).
        if fn_ast is not None and not isinstance(fn_ast, ast.Lambda):
            for mut in captured_mutations(fn_ast):
                if mut.name in s.mut_captured:
                    continue
                s.mut_captured[mut.name] = Witness(
                    path, getattr(mut.node, "lineno", node.lineno),
                    getattr(mut.node, "col_offset", 0),
                    f"mutates captured {mut.name!r} ({mut.how})",
                )
            for mut in mutations_of_names(body, set(node.params)):
                try:
                    idx = node.params.index(mut.name)
                except ValueError:
                    continue
                s.mutates_params.setdefault(idx, Witness(
                    path, getattr(mut.node, "lineno", node.lineno),
                    getattr(mut.node, "col_offset", 0),
                    f"mutates parameter {mut.name!r} ({mut.how})",
                ))

        set_order: list[Witness] = []
        bookings: list[tuple[str, int, int]] = []
        dispatches: list[DispatchSite] = []
        order_ok: set[int] = set()

        for sub in _own_nodes(body):
            self._scan_node(
                node, sub, s, set_order, bookings, dispatches, order_ok
            )

        s.set_order = tuple(set_order)
        s.bookings = tuple(bookings)
        s.dispatches = tuple(dispatches)
        s.shm_blocks = tuple(self._shm_blocks(node, body))
        s.param_flows = tuple(self._param_flows(node, body))
        s.ret_views = tuple(self._ret_views(node, body))
        return s

    def _scan_node(
        self, node: FuncNode, sub: ast.AST, s: FuncSummary,
        set_order: list[Witness], bookings: list[tuple[str, int, int]],
        dispatches: list[DispatchSite], order_ok: set[int],
    ) -> None:
        path = self.ms.path
        imports = self.ms.imports
        if isinstance(sub, ast.Attribute) and not self.wall_exempt:
            if (
                sub.attr in WALL_CLOCK_ATTRS
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "time"
            ) and s.wall_clock is None:
                s.wall_clock = Witness(
                    path, sub.lineno, sub.col_offset,
                    f"reads time.{sub.attr} outside repro.simtime.measure",
                )
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            if self._expr_is_set(sub.iter, node.var_types):
                set_order.append(Witness(
                    path, sub.lineno, sub.col_offset,
                    "iterates a set in order-sensitive position "
                    "(wrap in sorted())",
                ))
        if isinstance(sub, (ast.ListComp, ast.GeneratorExp)):
            if id(sub) not in order_ok:
                for gen in sub.generators:
                    if self._expr_is_set(gen.iter, node.var_types):
                        set_order.append(Witness(
                            path, sub.lineno, sub.col_offset,
                            "comprehension over a set feeds an ordered "
                            "result (wrap in sorted())",
                        ))
        if not isinstance(sub, ast.Call):
            return
        target = _flatten(sub.func)
        if target is None:
            return
        # Arguments of order-insensitive consumers (pre-order walk: the
        # call is seen before its argument comprehensions) are exempt from
        # the set-order check — sorted({...}) is the sanctioned fix.
        if target in _ORDER_INSENSITIVE:
            order_ok.update(id(a) for a in sub.args)
        parts = target.split(".")
        tail = parts[-1]
        # list()/tuple()/enumerate() over a set expression.
        if target in ("list", "tuple", "enumerate") and sub.args and (
            self._expr_is_set(sub.args[0], node.var_types)
        ):
            set_order.append(Witness(
                path, sub.lineno, sub.col_offset,
                f"{target}() over a set freezes a nondeterministic order "
                "(wrap in sorted())",
            ))
        # Unseeded random draws.
        if s.unseeded_random is None:
            if len(parts) == 2 and parts[0] == "random" and (
                tail in RANDOM_DRAWS
            ) and imports.get("random", "random") == "random":
                s.unseeded_random = Witness(
                    path, sub.lineno, sub.col_offset,
                    f"unseeded random.{tail} (module-level global RNG)",
                )
            elif len(parts) == 1 and imports.get(tail, "").startswith(
                "random."
            ) and imports[tail].split(".")[-1] in RANDOM_DRAWS:
                s.unseeded_random = Witness(
                    path, sub.lineno, sub.col_offset,
                    f"unseeded {imports[tail]} (module-level global RNG)",
                )
            elif len(parts) >= 2 and parts[-2] == "random" and (
                tail in NP_RANDOM_DRAWS
            ) and parts[0] in ("np", "numpy"):
                s.unseeded_random = Witness(
                    path, sub.lineno, sub.col_offset,
                    f"legacy numpy.random.{tail} draws from unseeded "
                    "global state (use np.random.default_rng(seed))",
                )
        # Wall-clock via from-imports.
        if (
            not self.wall_exempt and s.wall_clock is None
            and len(parts) == 1
            and imports.get(tail, "").startswith("time.")
            and imports[tail].split(".")[-1] in WALL_CLOCK_ATTRS
        ):
            s.wall_clock = Witness(
                path, sub.lineno, sub.col_offset,
                f"reads {imports[tail]} outside repro.simtime.measure",
            )
        # Fault-injection sites.
        if tail in ("begin_phase", "PhaseSession", "fault_injection"):
            s.fault_site = True
        # Direct clock bookings.
        if isinstance(sub.func, ast.Attribute) and sub.func.attr in (
            "parallel", "serial"
        ) and _mentions_clock(sub.func.value):
            bookings.append((sub.func.attr, sub.lineno, sub.col_offset))
        # Executor dispatch sites.
        if isinstance(sub.func, ast.Attribute) and sub.func.attr in (
            "map_parallel", "run_serial"
        ) and sub.args:
            items_is_set = (
                sub.func.attr == "map_parallel"
                and len(sub.args) > 1
                and self._expr_is_set(sub.args[1], node.var_types)
            )
            dispatches.append(DispatchSite(
                method=sub.func.attr,
                task=self._task_ref(node, sub.args[0]),
                items_is_set=items_is_set,
                line=sub.lineno, col=sub.col_offset,
            ))

    def _task_ref(self, node: FuncNode, expr: ast.AST) -> TaskRef:
        line, col = expr.lineno, expr.col_offset
        if isinstance(expr, ast.Lambda):
            return TaskRef("lambda", line=line, col=col)
        if isinstance(expr, ast.Name):
            tref = node.var_types.get(expr.id) or (
                self.ms.module_var_types.get(expr.id)
            )
            if tref is not None:
                if tref.kind == "lambda":
                    return TaskRef("lambda", expr.id, tref.target,
                                   line=line, col=col)
                if tref.kind == "callable":
                    return TaskRef("local_function", expr.id, tref.target,
                                   line=line, col=col)
                if tref.kind == "instance":
                    return TaskRef("constructor", tref.target,
                                   issues=tref.issues, line=line, col=col)
                if tref.kind == "partial":
                    return TaskRef("partial", tref.target,
                                   issues=tref.issues, line=line, col=col)
            return TaskRef("function", expr.id, line=line, col=col)
        if isinstance(expr, ast.Call):
            target = _flatten(expr.func)
            if target is not None:
                tail = target.split(".")[-1]
                if tail == "partial":
                    wrapped = ""
                    if expr.args and isinstance(expr.args[0], ast.Name):
                        wrapped = expr.args[0].id
                    issues = list(self._arg_issues(
                        expr, node.var_types, skip_first=True
                    ))
                    if expr.args and isinstance(expr.args[0], ast.Lambda):
                        issues.append("wraps a lambda")
                    return TaskRef("partial", wrapped,
                                   issues=tuple(issues), line=line, col=col)
                if "." not in target and target[:1].isupper():
                    return TaskRef(
                        "constructor", target,
                        issues=tuple(
                            self._arg_issues(expr, node.var_types)
                        ),
                        line=line, col=col,
                    )
            return TaskRef("other", line=line, col=col)
        flat = _flatten(expr)
        if flat is not None:
            return TaskRef("attribute", flat, line=line, col=col)
        return TaskRef("other", line=line, col=col)

    # -------------------------------------------------------- shm windows

    def _shm_receiver_ok(self, node: FuncNode, recv: ast.AST, body) -> bool:
        flat = _flatten(recv)
        if flat is None:
            return False
        root = flat.split(".")[0]
        tref = node.var_types.get(root)
        if tref is not None and tref.kind == "shm_chunk":
            return True
        if "shm" in flat.lower() or "chunk" in flat.lower() or (
            "payload" in flat.lower() or "handle" in flat.lower()
        ):
            # Confirm with an isinstance(..., ShmChunk) guard or a
            # ShmChunk annotation anywhere in the function.
            return self._has_shmchunk_evidence(node, root, body)
        return False

    def _has_shmchunk_evidence(
        self, node: FuncNode, name: str, body
    ) -> bool:
        for sub in _own_nodes(body):
            if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Name
            ) and sub.func.id == "isinstance" and len(sub.args) == 2:
                flat = _flatten(sub.args[1]) or ""
                arg0 = _flatten(sub.args[0]) or ""
                if "ShmChunk" in flat and arg0.split(".")[0] == name:
                    return True
        # Annotated parameter?
        if name in node.params and node.qual in self.ms.functions:
            pass  # annotations handled via var_types at AnnAssign; params:
        return False

    def _shm_blocks(self, node: FuncNode, body: list[ast.stmt]):
        blocks: list[ShmBlock] = []
        stmts = list(body)
        for i, stmt in enumerate(stmts):
            for sub in _own_nodes([stmt]):
                if not isinstance(sub, (ast.With, ast.AsyncWith)):
                    continue
                for item in sub.items:
                    cexpr = item.context_expr
                    if not (
                        isinstance(cexpr, ast.Call)
                        and isinstance(cexpr.func, ast.Attribute)
                        and cexpr.func.attr == "open"
                        and self._shm_receiver_ok(node, cexpr.func.value, body)
                    ):
                        continue
                    if not isinstance(item.optional_vars, ast.Name):
                        continue
                    alias = item.optional_vars.id
                    ops = self._block_ops(node, sub.body, alias)
                    assigned = {
                        op.target for op in ops
                        if op.kind == "assign" and op.target
                    } | {alias}
                    # Loads after the *statement containing* the with.
                    for later in stmts[i + 1:]:
                        for n in _own_nodes([later]):
                            if isinstance(n, ast.Name) and isinstance(
                                n.ctx, ast.Load
                            ) and n.id in assigned:
                                ops.append(ShmOp(
                                    "load_after", target=n.id,
                                    line=n.lineno, col=n.col_offset,
                                ))
                    blocks.append(ShmBlock(
                        alias=alias,
                        receiver=_flatten(cexpr.func.value) or "",
                        line=sub.lineno, ops=tuple(ops),
                    ))
        return blocks

    def _block_ops(
        self, node: FuncNode, body: list[ast.stmt], alias: str
    ) -> list[ShmOp]:
        ops: list[ShmOp] = []
        captured_roots = {"self"} | {
            n for n in () }  # self plus non-local roots resolved below

        def classify_value(value: ast.AST) -> tuple[str, str, str, tuple]:
            """(func_kind, func_name, attr, arg_sources) of a value expr."""
            if isinstance(value, ast.Call):
                target = _flatten(value.func)
                if target is not None:
                    tail = target.split(".")[-1]
                    if target in SANITIZER_CALLS or tail in (
                        "dumps", "deepcopy",
                    ):
                        return "sanitizer", target, "", ()
                    if isinstance(value.func, ast.Attribute):
                        root = target.split(".")[0]
                        if value.func.attr in SANITIZER_METHODS:
                            return "sanitizer", target, "", ()
                        return ("method_on", root, value.func.attr, ())
                    args = tuple(
                        a.id for a in value.args if isinstance(a, ast.Name)
                    )
                    return "name", target, "", args
                return "unknown_call", "", "", ()
            return "none", "", "", ()

        for sub in _own_nodes(body):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                tgt = sub.targets[0]
                fk, fname, attr, argsrc = classify_value(sub.value)
                sources = tuple(_loaded_names(sub.value, skip_sanitized=True))
                if isinstance(tgt, ast.Name):
                    ops.append(ShmOp(
                        "assign", tgt.id, sources, fk, fname, attr, argsrc,
                        sub.lineno, sub.col_offset,
                    ))
                elif isinstance(tgt, (ast.Attribute, ast.Subscript)):
                    root = _flatten(
                        tgt.value if isinstance(tgt, ast.Attribute)
                        else tgt.value
                    )
                    root = (root or "").split(".")[0]
                    if root == "self" or (
                        root and root not in node.local_bindings
                    ):
                        ops.append(ShmOp(
                            "store", root, sources, fk, fname, attr, argsrc,
                            sub.lineno, sub.col_offset,
                        ))
                    elif root:
                        # Store into a block-local container keeps taint.
                        ops.append(ShmOp(
                            "assign", root, sources + (root,), fk, fname,
                            attr, argsrc, sub.lineno, sub.col_offset,
                        ))
            elif isinstance(sub, ast.AugAssign) and isinstance(
                sub.target, ast.Name
            ):
                sources = tuple(
                    _loaded_names(sub.value, skip_sanitized=True)
                ) + (sub.target.id,)
                ops.append(ShmOp(
                    "assign", sub.target.id, sources, "none", "", "", (),
                    sub.lineno, sub.col_offset,
                ))
            elif isinstance(sub, ast.Return) and sub.value is not None:
                fk, fname, attr, _ = classify_value(sub.value)
                sources = tuple(_loaded_names(sub.value, skip_sanitized=True))
                ops.append(ShmOp(
                    "return", "", sources, fk, fname, attr, (),
                    sub.lineno, sub.col_offset,
                ))
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                val = sub.value
                sources = tuple(
                    _loaded_names(val, skip_sanitized=True)
                ) if val is not None else ()
                ops.append(ShmOp(
                    "yield", "", sources, "none", "", "", (),
                    sub.lineno, sub.col_offset,
                ))
            elif isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Attribute
            ) and sub.func.attr in MUTATING_METHODS:
                root = (_flatten(sub.func.value) or "").split(".")[0]
                if root == "self" or (
                    root and root not in node.local_bindings
                ):
                    sources = tuple(
                        n for a in sub.args
                        for n in _loaded_names(a, skip_sanitized=True)
                    )
                    ops.append(ShmOp(
                        "store", root, sources, "none", "", sub.func.attr,
                        (), sub.lineno, sub.col_offset,
                    ))
        ops.sort(key=lambda o: (o.line, o.col))
        _ = captured_roots
        return ops

    # -------------------------------------------------- param flows / rets

    def _param_flows(
        self, node: FuncNode, body: list[ast.stmt]
    ) -> list[ParamFlow]:
        out: list[ParamFlow] = []
        if not node.params:
            return out
        index = {p: i for i, p in enumerate(node.params)}
        for sub in _own_nodes(body):
            if not isinstance(sub, ast.Call):
                continue
            ref = None
            if isinstance(sub.func, ast.Name):
                ref = CallRef("name", sub.func.id,
                              line=sub.lineno, col=sub.col_offset)
            elif isinstance(sub.func, ast.Attribute):
                base = _flatten(sub.func.value)
                if base is None:
                    continue
                if "." in base:
                    ref = CallRef("name", f"{base}.{sub.func.attr}",
                                  line=sub.lineno, col=sub.col_offset)
                else:
                    ref = CallRef("attr", base, sub.func.attr,
                                  line=sub.lineno, col=sub.col_offset)
            if ref is None:
                continue
            for pos, arg in enumerate(sub.args):
                if isinstance(arg, ast.Name) and arg.id in index:
                    out.append(ParamFlow(
                        ref, index[arg.id], callee_pos=pos,
                        line=sub.lineno, col=sub.col_offset,
                    ))
            for kw in sub.keywords:
                if kw.arg and isinstance(kw.value, ast.Name) and (
                    kw.value.id in index
                ):
                    out.append(ParamFlow(
                        ref, index[kw.value.id], callee_kw=kw.arg,
                        line=sub.lineno, col=sub.col_offset,
                    ))
        return out

    def _ret_views(
        self, node: FuncNode, body: list[ast.stmt]
    ) -> list[RetView]:
        out: list[RetView] = []
        if not node.params:
            return out
        index = {p: i for i, p in enumerate(node.params)}

        def scan(expr: ast.AST, line: int, col: int) -> None:
            if isinstance(expr, (ast.Tuple, ast.List)):
                for e in expr.elts:
                    scan(e, line, col)
                return
            if isinstance(expr, ast.Name) and expr.id in index:
                out.append(RetView(index[expr.id], line=line, col=col))
                return
            if isinstance(expr, (ast.Attribute, ast.Subscript)):
                root = expr
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if isinstance(root, ast.Name) and root.id in index:
                    out.append(RetView(index[root.id], line=line, col=col))
                return
            if isinstance(expr, ast.Call):
                target = _flatten(expr.func)
                if target is None:
                    return
                tail = target.split(".")[-1]
                if target in SANITIZER_CALLS or tail in ("dumps", "deepcopy"):
                    return
                if isinstance(expr.func, ast.Attribute):
                    if expr.func.attr in SANITIZER_METHODS:
                        return
                    root = expr.func
                    while isinstance(root, (ast.Attribute, ast.Subscript)):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id in index:
                        out.append(RetView(index[root.id], line=line, col=col))
                    return
                if "." not in target:
                    arg_map = tuple(
                        (index[a.id], pos)
                        for pos, a in enumerate(expr.args)
                        if isinstance(a, ast.Name) and a.id in index
                    )
                    if arg_map:
                        out.append(RetView(
                            -1, callee=target, arg_map=arg_map,
                            line=line, col=col,
                        ))

        for sub in _own_nodes(body):
            if isinstance(sub, ast.Return) and sub.value is not None:
                scan(sub.value, sub.lineno, sub.col_offset)
        return out


def extract_module(ctx: ModuleContext) -> ModuleSummary:
    """Stage 1: one module's symbols, call refs and seed effects."""
    ms = ModuleSummary(
        module=_module_name(ctx), path=ctx.path,
        path_parts=ctx.path_parts, imports={},
    )
    _collect_imports(ctx.tree, ms.imports)
    _Extractor(ctx, ms).run()
    return ms


# --------------------------------------------------------------------------
# Fixpoint
# --------------------------------------------------------------------------


@dataclass
class EffectSummary:
    """Solved (seed + transitive) effects of one function."""

    mut_captured: dict[str, Witness] = field(default_factory=dict)
    wall_clock: Witness | None = None
    unseeded_random: Witness | None = None
    fault_site: bool = False
    returns_view: dict[int, Witness] = field(default_factory=dict)
    mutates_params: dict[int, Witness] = field(default_factory=dict)


EffectMap = dict  # qual -> EffectSummary


def _self_offset(callee: FuncNode) -> int:
    """1 when calls bind the first parameter implicitly (methods)."""
    if callee.cls is not None and callee.params and (
        callee.params[0] in ("self", "cls")
    ):
        return 1
    return 0


def solve_effects(graph) -> EffectMap:
    """Stage 3: bottom-up effect propagation over the SCC condensation."""
    effects: EffectMap = {}
    for qual, fn in graph.functions.items():
        s = fn.summary or FuncSummary()
        summary = EffectSummary(
            mut_captured=dict(s.mut_captured),
            wall_clock=s.wall_clock,
            unseeded_random=s.unseeded_random,
            fault_site=s.fault_site,
            mutates_params=dict(s.mutates_params),
        )
        effects[qual] = summary

    def merge_from(fn: FuncNode, callee_qual: str) -> bool:
        changed = False
        eff = effects[fn.qual]
        sub = effects[callee_qual]
        callee = graph.functions[callee_qual]
        nested_in_fn = callee_qual.startswith(f"{fn.qual}.{LOCALS}.")
        for name, w in sub.mut_captured.items():
            if nested_in_fn and name in fn.local_bindings:
                continue
            if name in fn.local_bindings and not (
                name in (fn.summary.mut_captured if fn.summary else {})
            ):
                # The callee mutates a name that is local to this caller
                # (its own accumulator): not shared state from here up —
                # unless the callee is defined elsewhere and reaches a
                # genuinely global name that happens to collide.
                if nested_in_fn:
                    continue
            if name not in eff.mut_captured:
                eff.mut_captured[name] = w.with_hop(callee_qual)
                changed = True
        if eff.wall_clock is None and sub.wall_clock is not None:
            eff.wall_clock = sub.wall_clock.with_hop(callee_qual)
            changed = True
        if eff.unseeded_random is None and sub.unseeded_random is not None:
            eff.unseeded_random = sub.unseeded_random.with_hop(callee_qual)
            changed = True
        if sub.fault_site and not eff.fault_site:
            eff.fault_site = True
            changed = True
        _ = callee
        return changed

    def flow_params(fn: FuncNode) -> bool:
        changed = False
        eff = effects[fn.qual]
        for flow in (fn.summary.param_flows if fn.summary else ()):
            callee_qual = graph.resolve(fn, flow.ref)
            if callee_qual is None or callee_qual not in graph.functions:
                continue
            callee = graph.functions[callee_qual]
            sub = effects[callee_qual]
            if flow.callee_kw:
                try:
                    pos = callee.params.index(flow.callee_kw)
                except ValueError:
                    continue
            else:
                pos = flow.callee_pos + _self_offset(callee)
            if pos in sub.mutates_params and (
                flow.param_index not in eff.mutates_params
            ):
                eff.mutates_params[flow.param_index] = (
                    sub.mutates_params[pos].with_hop(callee_qual)
                )
                changed = True
        for ret in (fn.summary.ret_views if fn.summary else ()):
            if ret.param_index >= 0:
                if ret.param_index not in eff.returns_view:
                    eff.returns_view[ret.param_index] = Witness(
                        fn.path, ret.line, ret.col,
                        f"returns a view derived from parameter "
                        f"{fn.params[ret.param_index]!r}"
                        if ret.param_index < len(fn.params)
                        else "returns a view of its input",
                    )
                    changed = True
                continue
            callee_qual = graph._resolve_name(fn, ret.callee)
            if callee_qual is None or callee_qual not in graph.functions:
                continue
            callee = graph.functions[callee_qual]
            sub = effects[callee_qual]
            off = _self_offset(callee)
            for own_idx, pos in ret.arg_map:
                if (pos + off) in sub.returns_view and (
                    own_idx not in eff.returns_view
                ):
                    eff.returns_view[own_idx] = (
                        sub.returns_view[pos + off].with_hop(callee_qual)
                    )
                    changed = True
        return changed

    for component in graph.sccs():
        stable = False
        rounds = 0
        while not stable and rounds < 50:
            stable = True
            rounds += 1
            for qual in component:
                fn = graph.functions[qual]
                for callee_qual, _ref in graph.edges.get(qual, ()):
                    if callee_qual not in effects:
                        continue
                    if merge_from(fn, callee_qual):
                        stable = False
                if flow_params(fn):
                    stable = False
    return effects
