"""Parallel-safety analysis for the simtime substrate.

Three layers (see ``docs/static_analysis.md``):

* a **static lint framework** — :class:`Rule` protocol, AST driver,
  :class:`Finding`/:class:`Severity` model, per-line suppression, and the
  repo-specific module-local catalogue PT001–PT005
  (``python -m repro lint``);
* a **whole-program dataflow layer** (:mod:`repro.analysis.flow`) —
  project call graph, bottom-up effect summaries, and the
  interprocedural rule family PT006–PT010 (unpicklable task capture,
  shm-view escape, nondeterminism sources, fault-blind phases,
  transitive impure aggregates), with SARIF output and baseline
  ratcheting;
* a **runtime sanitizer** — :class:`SanitizingExecutor`, ThreadSanitizer
  for simulated parallelism: wraps any executor and reports
  :class:`RaceReport`\\ s when two tasks of one phase write overlapping
  keys of shared state.

All exist to machine-check the DESIGN.md substitution's two claims: that
Step 1 is embarrassingly parallel and that every measured cost flows
through :class:`~repro.simtime.clock.SimClock`.
"""

from repro.analysis.model import (
    Finding,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Severity,
    Suppression,
    extract_suppressions,
    parse_suppression,
    suppressed_codes,
)
from repro.analysis.rules import (
    ALL_RULES,
    DEFAULT_RULES,
    RULES_BY_ID,
    GilBlindLoopRule,
    ImpureAggregateRule,
    SharedMutableCaptureRule,
    UnaccountedWallClockRule,
    UnlabeledPhaseRule,
)
from repro.analysis.driver import (
    explain_rules,
    format_findings,
    iter_python_files,
    lint_paths,
    lint_source,
    normalize_path,
)
from repro.analysis.sanitizer import (
    ChunkProxy,
    DeltaMapProxy,
    RaceError,
    RaceReport,
    SanitizingExecutor,
    TaskLog,
)

__all__ = [
    # model
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "Suppression",
    "extract_suppressions",
    "parse_suppression",
    "suppressed_codes",
    # rules
    "ALL_RULES",
    "DEFAULT_RULES",
    "RULES_BY_ID",
    "SharedMutableCaptureRule",
    "UnaccountedWallClockRule",
    "UnlabeledPhaseRule",
    "ImpureAggregateRule",
    "GilBlindLoopRule",
    # driver
    "lint_paths",
    "lint_source",
    "iter_python_files",
    "format_findings",
    "explain_rules",
    "normalize_path",
    # sanitizer
    "SanitizingExecutor",
    "RaceReport",
    "RaceError",
    "TaskLog",
    "ChunkProxy",
    "DeltaMapProxy",
]
