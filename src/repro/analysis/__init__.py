"""Parallel-safety analysis for the simtime substrate.

Two halves (see ``docs/static_analysis.md``):

* a **static lint framework** — :class:`Rule` protocol, AST driver,
  :class:`Finding`/:class:`Severity` model, per-line suppression, and the
  repo-specific rule catalogue PT001–PT005 (``python -m repro lint``);
* a **runtime sanitizer** — :class:`SanitizingExecutor`, ThreadSanitizer
  for simulated parallelism: wraps any executor and reports
  :class:`RaceReport`\\ s when two tasks of one phase write overlapping
  keys of shared state.

Both exist to machine-check the DESIGN.md substitution's two claims: that
Step 1 is embarrassingly parallel and that every measured cost flows
through :class:`~repro.simtime.clock.SimClock`.
"""

from repro.analysis.model import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    suppressed_codes,
)
from repro.analysis.rules import (
    DEFAULT_RULES,
    RULES_BY_ID,
    GilBlindLoopRule,
    ImpureAggregateRule,
    SharedMutableCaptureRule,
    UnaccountedWallClockRule,
    UnlabeledPhaseRule,
)
from repro.analysis.driver import (
    explain_rules,
    format_findings,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.sanitizer import (
    ChunkProxy,
    DeltaMapProxy,
    RaceError,
    RaceReport,
    SanitizingExecutor,
    TaskLog,
)

__all__ = [
    # model
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "suppressed_codes",
    # rules
    "DEFAULT_RULES",
    "RULES_BY_ID",
    "SharedMutableCaptureRule",
    "UnaccountedWallClockRule",
    "UnlabeledPhaseRule",
    "ImpureAggregateRule",
    "GilBlindLoopRule",
    # driver
    "lint_paths",
    "lint_source",
    "iter_python_files",
    "format_findings",
    "explain_rules",
    # sanitizer
    "SanitizingExecutor",
    "RaceReport",
    "RaceError",
    "TaskLog",
    "ChunkProxy",
    "DeltaMapProxy",
]
