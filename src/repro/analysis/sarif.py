"""SARIF 2.1.0 emitter for lint findings (GitHub code scanning).

One run, one driver (``partime-lint``), the full PT rule catalogue as
``tool.driver.rules`` so code-scanning shows rationales, and one result
per finding with a stable ``partialFingerprints`` entry (the same
fingerprint the baseline ratchet uses, so alert identity survives line
shifts).  The output is deterministic: rules sorted by id, results in
the driver's (path, line, col, rule) order.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.baseline import finding_fingerprints
from repro.analysis.model import Finding, Rule, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "partime-lint"
_TOOL_URI = "https://example.invalid/partime"  # repo-relative docs stand in


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_entry(rule: Rule) -> dict:
    text = rule.rationale or rule.name
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": text},
        "help": {
            "text": f"{text}\nSuppress with: # partime: ignore[{rule.id}]"
        },
        "defaultConfiguration": {"level": _level(rule.severity)},
    }


def _synthetic_rule(rule_id: str) -> dict:
    """Catalogue entry for ids with no Rule object (PT000, PT099)."""
    known = {
        "PT000": "unparseable or unreadable module",
        "PT099": "dead or malformed suppression comment",
    }
    text = known.get(rule_id, "finding")
    return {
        "id": rule_id,
        "name": text,
        "shortDescription": {"text": text},
        "fullDescription": {"text": text},
        "defaultConfiguration": {"level": "error"},
    }


def to_sarif(
    findings: Sequence[Finding],
    rules: "Sequence[Rule] | None" = None,
    version: str = "0",
) -> dict:
    """Findings as a SARIF 2.1.0 ``dict`` (serialize with ``json.dumps``)."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    catalogue: dict[str, dict] = {}
    for rule in rules:
        catalogue.setdefault(rule.id, _rule_entry(rule))
    for f in findings:
        catalogue.setdefault(f.rule_id, _synthetic_rule(f.rule_id))
    rule_ids = sorted(catalogue)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}

    fingerprints = finding_fingerprints(findings)
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule_id,
            "ruleIndex": rule_index[f.rule_id],
            "level": _level(f.severity),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": max(f.col, 1),
                    },
                },
            }],
            "partialFingerprints": {
                "partimeFingerprint/v1": fingerprints[f],
            },
        })

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri": _TOOL_URI,
                    "version": version,
                    "rules": [catalogue[rid] for rid in rule_ids],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {"text": "repository root"}},
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def format_sarif(
    findings: Sequence[Finding],
    rules: "Sequence[Rule] | None" = None,
    version: str = "0",
) -> str:
    return json.dumps(
        to_sarif(findings, rules=rules, version=version),
        indent=2, sort_keys=True,
    )


#: The structural subset of the SARIF 2.1.0 schema the emitter promises
#: (and tests assert) — enough for GitHub code scanning ingestion.
REQUIRED_RUN_KEYS = ("tool", "results")
REQUIRED_RESULT_KEYS = ("ruleId", "level", "message", "locations")


def validate_minimal(doc: dict) -> list[str]:
    """Structural validation against the SARIF 2.1.0 shape.

    Returns a list of problems (empty when valid).  This is not a full
    JSON-Schema validation — the container has no jsonschema package —
    but checks every property GitHub's ingestion requires.
    """
    problems: list[str] = []
    if doc.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for i, run in enumerate(runs):
        for key in REQUIRED_RUN_KEYS:
            if key not in run:
                problems.append(f"runs[{i}] missing {key!r}")
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            problems.append(f"runs[{i}].tool.driver.name missing")
        declared = {r.get("id") for r in driver.get("rules", [])}
        for j, res in enumerate(run.get("results", [])):
            for key in REQUIRED_RESULT_KEYS:
                if key not in res:
                    problems.append(f"runs[{i}].results[{j}] missing {key!r}")
            if res.get("ruleId") not in declared:
                problems.append(
                    f"runs[{i}].results[{j}].ruleId "
                    f"{res.get('ruleId')!r} not in tool.driver.rules"
                )
            for loc in res.get("locations", []):
                phys = loc.get("physicalLocation", {})
                if "uri" not in phys.get("artifactLocation", {}):
                    problems.append(
                        f"runs[{i}].results[{j}] location missing uri"
                    )
                region = phys.get("region", {})
                if region.get("startLine", 0) < 1:
                    problems.append(
                        f"runs[{i}].results[{j}] startLine must be >= 1"
                    )
    return problems
