"""Lint driver: file walking, rule execution, suppression, formatting.

The public entry points are :func:`lint_paths` (what the CLI and the CI
gate call) and :func:`lint_source` (what the rule tests call with inline
fixtures).  Unparseable files are reported as ``PT000`` findings rather
than crashing the run, so the lint gate also catches syntax rot.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Iterable, Sequence

from repro.analysis.model import Finding, ModuleContext, Rule, Severity
from repro.analysis.rules import DEFAULT_RULES, RULES_BY_ID


def _select_rules(
    rules: "Sequence[Rule] | None", select: "Iterable[str] | None"
) -> Sequence[Rule]:
    chosen = tuple(rules) if rules is not None else DEFAULT_RULES
    if select:
        wanted = {s.strip().upper() for s in select if s.strip()}
        unknown = wanted - {r.id for r in chosen} - set(RULES_BY_ID)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(RULES_BY_ID))}"
            )
        chosen = tuple(r for r in chosen if r.id in wanted)
    return chosen


def lint_source(
    source: str,
    path: str = "<string>",
    rules: "Sequence[Rule] | None" = None,
    select: "Iterable[str] | None" = None,
) -> list[Finding]:
    """Lint one module given as a string; returns sorted findings."""
    chosen = _select_rules(rules, select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule_id="PT000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, source=source, tree=tree)
    findings: list[Finding] = []
    for rule in chosen:
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    findings.sort()
    return findings


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in {"__pycache__", ".git", ".hypothesis"}
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.append(path)
        elif not os.path.exists(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return out


def lint_paths(
    paths: Iterable[str],
    rules: "Sequence[Rule] | None" = None,
    select: "Iterable[str] | None" = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    chosen = _select_rules(rules, select)
    findings: list[Finding] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            findings.append(
                Finding(
                    path=filename,
                    line=1,
                    col=1,
                    rule_id="PT000",
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, path=filename, rules=chosen))
    findings.sort()
    return findings


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings as ``text`` (one per line + summary) or ``json``."""
    if fmt == "json":
        return json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "count": len(findings),
            },
            indent=2,
        )
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r}; use 'text' or 'json'")
    lines = [f.format() for f in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({summary})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def explain_rules(rules: "Sequence[Rule] | None" = None) -> str:
    """Human-readable rule catalogue (``repro lint --explain``)."""
    chosen = tuple(rules) if rules is not None else DEFAULT_RULES
    blocks = []
    for rule in chosen:
        blocks.append(
            f"{rule.id} {rule.name} [{rule.severity.value}]\n"
            f"    {rule.rationale}\n"
            f"    suppress with: # partime: ignore[{rule.id}]"
        )
    return "\n".join(blocks)
