"""Lint driver: file walking, rule execution, suppression, formatting.

The public entry points are :func:`lint_paths` (what the CLI and the CI
gate call) and :func:`lint_source` (what the rule tests call with inline
fixtures).  Unparseable files are reported as ``PT000`` findings rather
than crashing the run, so the lint gate also catches syntax rot.

Pipeline of one :func:`lint_paths` run:

1. walk + parse every file (paths normalized to posix-relative form so
   output, baselines and SARIF are platform-stable);
2. module rules (PT001–PT005) per file;
3. project rules (PT001 extension, PT006–PT010) over the whole program —
   stage-1 extraction optionally served from the mtime+hash
   :class:`~repro.analysis.cache.SummaryCache`;
4. suppression-hygiene pass (PT099): malformed directives and directives
   that matched no finding;
5. deterministic sort by (path, line, col, rule id).
"""

from __future__ import annotations

import ast
import json
import os
import posixpath
from typing import Iterable, Sequence

from repro.analysis.model import (
    Finding,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Severity,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID


def normalize_path(path: str) -> str:
    """Posix-relative form of ``path`` (stable across platforms/CWDs)."""
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive on Windows
        rel = path
    norm = rel.replace(os.sep, "/")
    if os.altsep:
        norm = norm.replace(os.altsep, "/")
    return posixpath.normpath(norm)


def _select_rules(
    rules: "Sequence[Rule] | None", select: "Iterable[str] | None"
) -> Sequence[Rule]:
    chosen = tuple(rules) if rules is not None else ALL_RULES
    if select:
        wanted = {s.strip().upper() for s in select if s.strip()}
        unknown = wanted - {r.id for r in chosen} - set(RULES_BY_ID)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(RULES_BY_ID))}"
            )
        chosen = tuple(r for r in chosen if r.id in wanted)
    return chosen


def _dead_suppression_findings(ctx: ModuleContext) -> "list[Finding]":
    """PT099: malformed directives and directives matching no finding.

    Must run after every rule (module and project) so ``used_suppressions``
    is complete.  PT099 findings are themselves unsuppressible — see
    :meth:`ModuleContext.is_suppressed`.
    """
    out: list[Finding] = []
    for line in sorted(ctx.suppressions):
        sup = ctx.suppressions[line]
        for problem in sup.problems:
            out.append(Finding(
                path=ctx.path, line=line, col=1, rule_id="PT099",
                severity=Severity.ERROR,
                message=f"malformed suppression: {problem}",
            ))
        if line not in ctx.used_suppressions and not sup.problems:
            what = (
                f"ignore[{', '.join(sorted(sup.codes))}]" if sup.codes
                else "ignore"
            )
            out.append(Finding(
                path=ctx.path, line=line, col=1, rule_id="PT099",
                severity=Severity.ERROR,
                message=(
                    f"dead suppression: # partime: {what} matches no "
                    "finding on this line — remove it"
                ),
            ))
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    rules: "Sequence[Rule] | None" = None,
    select: "Iterable[str] | None" = None,
    project: bool = True,
    dead_suppressions: bool = False,
) -> list[Finding]:
    """Lint one module given as a string; returns sorted findings.

    With ``project=True`` (default) the interprocedural rules run too,
    treating the single module as the whole program — this is what the
    rule tests and the linter-fuzzer drive.
    """
    chosen = _select_rules(rules, select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule_id="PT000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, source=source, tree=tree)
    findings: list[Finding] = []
    for rule in chosen:
        if isinstance(rule, ProjectRule):
            continue
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    if project and project_rules:
        proj = ProjectContext([ctx])
        for rule in project_rules:
            for finding in rule.check_project(proj):
                if not ctx.is_suppressed(finding):
                    findings.append(finding)
    if dead_suppressions:
        findings.extend(_dead_suppression_findings(ctx))
    findings.sort()
    return findings


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in {"__pycache__", ".git", ".hypothesis"}
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.append(path)
        elif not os.path.exists(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return out


def lint_paths(
    paths: Iterable[str],
    rules: "Sequence[Rule] | None" = None,
    select: "Iterable[str] | None" = None,
    cache: "object | None" = None,
    dead_suppressions: "bool | None" = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings.

    ``cache`` is an optional :class:`~repro.analysis.cache.SummaryCache`;
    ``dead_suppressions`` defaults to on exactly when the full rule set
    runs (a partial ``--select`` run would misreport live suppressions
    of unselected rules as dead).
    """
    chosen = _select_rules(rules, select)
    if dead_suppressions is None:
        dead_suppressions = rules is None and not select
    module_rules = [r for r in chosen if not isinstance(r, ProjectRule)]
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]

    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    summaries: list = []
    use_cache = cache is not None and project_rules

    for filename in iter_python_files(paths):
        norm = normalize_path(filename)
        try:
            with open(filename, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            findings.append(Finding(
                path=norm, line=1, col=1, rule_id="PT000",
                severity=Severity.ERROR,
                message=f"cannot read file: {exc}",
            ))
            continue
        try:
            tree = ast.parse(source, filename=norm)
        except SyntaxError as exc:
            findings.append(Finding(
                path=norm,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule_id="PT000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            ))
            continue
        ctx = ModuleContext(path=norm, source=source, tree=tree)
        contexts.append(ctx)
        for rule in module_rules:
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding):
                    findings.append(finding)
        if use_cache:
            summary = cache.get(norm, source)
            if summary is None:
                from repro.analysis.flow.effects import extract_module

                summary = extract_module(ctx)
                cache.put(norm, source, summary)
            summaries.append(summary)

    if project_rules and contexts:
        proj = ProjectContext(
            contexts, summaries=summaries if use_cache else None
        )
        by_path = {ctx.path: ctx for ctx in contexts}
        for rule in project_rules:
            for finding in rule.check_project(proj):
                ctx = by_path.get(finding.path)
                if ctx is None or not ctx.is_suppressed(finding):
                    findings.append(finding)

    if dead_suppressions:
        for ctx in contexts:
            findings.extend(_dead_suppression_findings(ctx))
    if use_cache:
        cache.save()
    findings.sort()
    return findings


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings as ``text``/``json``/``sarif``."""
    if fmt == "json":
        return json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "count": len(findings),
            },
            indent=2,
        )
    if fmt == "sarif":
        from repro.analysis.sarif import format_sarif

        return format_sarif(findings)
    if fmt != "text":
        raise ValueError(
            f"unknown format {fmt!r}; use 'text', 'json' or 'sarif'"
        )
    lines = [f.format() for f in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({summary})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def explain_rules(rules: "Sequence[Rule] | None" = None) -> str:
    """Human-readable rule catalogue (``repro lint --explain``)."""
    chosen = tuple(rules) if rules is not None else ALL_RULES
    blocks = []
    seen: set[tuple[str, str]] = set()
    for rule in chosen:
        key = (rule.id, rule.name)
        if key in seen:
            continue
        seen.add(key)
        scope = " (whole-program)" if isinstance(rule, ProjectRule) else ""
        blocks.append(
            f"{rule.id} {rule.name} [{rule.severity.value}]{scope}\n"
            f"    {rule.rationale}\n"
            f"    suppress with: # partime: ignore[{rule.id}]"
        )
    return "\n".join(blocks)
