"""Core model of the parallel-safety lint framework.

The framework is deliberately small: a :class:`Rule` inspects one parsed
module (:class:`ModuleContext`) and yields :class:`Finding` objects; the
driver (:mod:`repro.analysis.driver`) walks files, applies every rule and
filters findings through per-line suppression comments of the form::

    results.append(x)  # partime: ignore[PT001]
    t0 = time.time()   # partime: ignore          (suppresses every rule)

Rules are repo-specific by design — they machine-check the invariants that
the DESIGN.md hardware substitution rests on (Step 1 is embarrassingly
parallel; every cost flows through ``SimClock``) rather than generic style.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterator


class Severity(str, Enum):
    """How bad a finding is; both fail the lint gate, WARNING documents
    rules whose heuristics may legitimately need suppressions."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint result, pointing at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }


_SUPPRESS_RE = re.compile(
    r"#\s*partime:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)


def suppressed_codes(line: str) -> "set[str] | None":
    """Rule ids suppressed by the comment on ``line``.

    Returns ``None`` when the line carries no suppression comment, the
    empty set for a bare ``# partime: ignore`` (suppress everything), and
    the set of named codes for ``# partime: ignore[PT001, PT002]``.
    """
    m = _SUPPRESS_RE.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if codes is None:
        return set()
    return {c.strip().upper() for c in codes.split(",") if c.strip()}


class ModuleContext:
    """One parsed module plus the derived structures rules share."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    @property
    def path_parts(self) -> tuple[str, ...]:
        return tuple(p for p in re.split(r"[\\/]", self.path) if p)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        codes = suppressed_codes(self.line_text(finding.line))
        if codes is None:
            return False
        return not codes or finding.rule_id.upper() in codes


class Rule:
    """Base class of a lint rule; subclasses set the metadata and
    implement :meth:`check`."""

    id: str = "PT000"
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    #: One-paragraph rationale shown by ``repro lint --explain``.
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            severity=self.severity,
            message=message,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<rule {self.id} {self.name}>"
