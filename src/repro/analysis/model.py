"""Core model of the parallel-safety lint framework.

The framework is deliberately small: a :class:`Rule` inspects one parsed
module (:class:`ModuleContext`) and yields :class:`Finding` objects; the
driver (:mod:`repro.analysis.driver`) walks files, applies every rule and
filters findings through per-line suppression comments of the form::

    results.append(x)  # partime: ignore[PT001]
    t0 = time.time()   # partime: ignore          (suppresses every rule)

Rules are repo-specific by design — they machine-check the invariants that
the DESIGN.md hardware substitution rests on (Step 1 is embarrassingly
parallel; every cost flows through ``SimClock``) rather than generic style.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flow → model)
    from repro.analysis.flow.callgraph import CallGraph
    from repro.analysis.flow.effects import EffectMap


class Severity(str, Enum):
    """How bad a finding is; both fail the lint gate, WARNING documents
    rules whose heuristics may legitimately need suppressions."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint result, pointing at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }


_SUPPRESS_RE = re.compile(
    r"#\s*partime:\s*ignore(?:\[(?P<codes>[^\]]*)\])?"
)

#: Rule-id shape accepted inside ``ignore[...]`` brackets.
_CODE_RE = re.compile(r"^PT\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# partime: ignore[...]`` directive.

    ``codes`` is the empty set for a bare ``# partime: ignore`` (suppress
    every rule); ``problems`` records malformed pieces (empty brackets,
    tokens that are not rule ids) that the dead-suppression check turns
    into PT099 findings.
    """

    line: int
    codes: frozenset[str]
    problems: tuple[str, ...] = ()


def parse_suppression(text: str, line: int = 0) -> "Suppression | None":
    """Parse one comment (or source line) for a suppression directive.

    Multi-rule comments are hardened: codes are comma-separated, case-
    insensitive, tolerate stray whitespace and duplicate commas; any
    token that is not a ``PTnnn`` rule id — and an explicit empty
    ``ignore[]`` — is reported as a problem instead of silently
    suppressing nothing (or everything).
    """
    m = _SUPPRESS_RE.search(text)
    if m is None:
        return None
    raw = m.group("codes")
    if raw is None:  # bare directive without brackets: suppress all
        return Suppression(line=line, codes=frozenset())
    tokens = [t.strip().upper() for t in raw.split(",") if t.strip()]
    problems: list[str] = []
    codes: set[str] = set()
    if not tokens:
        problems.append("empty ignore[] — name rule ids or drop the brackets")
    for token in tokens:
        if _CODE_RE.match(token):
            codes.add(token)
        else:
            problems.append(f"{token!r} is not a rule id (expected PTnnn)")
    return Suppression(line=line, codes=frozenset(codes), problems=tuple(problems))


def suppressed_codes(line: str) -> "set[str] | None":
    """Rule ids suppressed by the comment on ``line``.

    Returns ``None`` when the line carries no suppression comment, the
    empty set for a bare ``# partime: ignore`` (suppress everything), and
    the set of named codes for ``# partime: ignore[PT001, PT002]``.
    """
    sup = parse_suppression(line)
    if sup is None:
        return None
    return set(sup.codes)


def extract_suppressions(source: str) -> dict[int, Suppression]:
    """All suppression directives in ``source``, keyed by line.

    Uses :mod:`tokenize` so only *real* comments count — a
    ``# partime: ignore`` inside a string literal (docstring, test
    fixture) is not a suppression.  Falls back to a line-based regex scan
    when the source cannot be tokenized (the syntax-error path already
    reports PT000).
    """
    out: dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for i, text in enumerate(source.splitlines(), start=1):
            sup = parse_suppression(text, line=i)
            if sup is not None:
                out[i] = sup
        return out
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            sup = parse_suppression(tok.string, line=tok.start[0])
            if sup is not None:
                out[tok.start[0]] = sup
    return out


class ModuleContext:
    """One parsed module plus the derived structures rules share."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: Real-comment suppression directives, by line (tokenize-based:
        #: a directive inside a string literal is not a suppression).
        self.suppressions: dict[int, Suppression] = extract_suppressions(source)
        #: Lines whose directive matched at least one finding — the
        #: complement feeds the dead-suppression check (PT099).
        self.used_suppressions: set[int] = set()

    @property
    def path_parts(self) -> tuple[str, ...]:
        return tuple(p for p in re.split(r"[\\/]", self.path) if p)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        sup = self.suppressions.get(finding.line)
        if sup is None:
            return False
        if finding.rule_id.upper() == "PT099":
            # Suppression-hygiene findings cannot themselves be
            # suppressed — a dead suppression must not self-justify.
            return False
        if not sup.codes:
            if sup.problems:
                # A malformed directive (ignore[] / bad tokens with no
                # valid id) must not degrade into suppress-everything.
                return False
            self.used_suppressions.add(finding.line)
            return True
        if finding.rule_id.upper() in sup.codes:
            self.used_suppressions.add(finding.line)
            return True
        return False


class Rule:
    """Base class of a lint rule; subclasses set the metadata and
    implement :meth:`check`."""

    id: str = "PT000"
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    #: One-paragraph rationale shown by ``repro lint --explain``.
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            severity=self.severity,
            message=message,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<rule {self.id} {self.name}>"


class ProjectContext:
    """Whole-program view: every parsed module plus the derived call
    graph and effect summaries (built lazily by the driver, shared by all
    :class:`ProjectRule` subclasses)."""

    def __init__(
        self,
        modules: "list[ModuleContext]",
        summaries: "list | None" = None,
    ) -> None:
        self.modules = list(modules)
        #: Pre-extracted ModuleSummary list (e.g. from the summary
        #: cache); when set, stage 1 is skipped entirely.
        self.summaries = summaries
        self._graph: "CallGraph | None" = None
        self._effects: "EffectMap | None" = None

    def by_path(self, path: str) -> "ModuleContext | None":
        for ctx in self.modules:
            if ctx.path == path:
                return ctx
        return None

    @property
    def graph(self) -> "CallGraph":
        if self._graph is None:
            from repro.analysis.flow.callgraph import CallGraph
            from repro.analysis.flow.effects import extract_module

            self._graph = CallGraph.build(
                self.summaries
                if self.summaries is not None
                else [extract_module(ctx) for ctx in self.modules]
            )
        return self._graph

    @property
    def effects(self) -> "EffectMap":
        if self._effects is None:
            from repro.analysis.flow.effects import solve_effects

            self._effects = solve_effects(self.graph)
        return self._effects


class ProjectRule(Rule):
    """A rule that needs the whole program, not one module.

    Subclasses implement :meth:`check_project`; the per-module
    :meth:`Rule.check` is a no-op so a project rule accidentally run by a
    module-only driver stays silent instead of crashing.
    """

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=col + 1,
            rule_id=self.id,
            severity=self.severity,
            message=message,
        )
