"""Baseline ratchet: land new rules warn-first, then ratchet to zero.

A baseline file records the *fingerprints* of currently-accepted
findings; a later lint run fails only on findings whose fingerprint is
not in the baseline.  Fingerprints deliberately exclude line/column
numbers (pure edits above a finding must not churn the baseline) and
disambiguate repeats of the same (path, rule, message) with an occurrence
counter, so the file is byte-stable across platforms given the driver's
posix-relative path normalization and deterministic ordering.
"""

from __future__ import annotations

import hashlib
import json
from typing import Sequence

from repro.analysis.model import Finding

BASELINE_VERSION = 1


def _base_key(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule_id}::{finding.message}"


def finding_fingerprints(findings: Sequence[Finding]) -> dict:
    """Stable fingerprint per finding (occurrence-counted, line-free)."""
    counters: dict[str, int] = {}
    out: dict[Finding, str] = {}
    # Occurrence numbering follows (line, col) order within each key so
    # the Nth repeat keeps its identity as unrelated lines move.
    for f in sorted(findings):
        key = _base_key(f)
        n = counters.get(key, 0)
        counters[key] = n + 1
        digest = hashlib.sha256(f"{key}::{n}".encode("utf-8")).hexdigest()
        out[f] = digest[:20]
    return out


def write_baseline(findings: Sequence[Finding], path: str) -> int:
    """Write the baseline for ``findings``; returns the entry count."""
    fingerprints = sorted(finding_fingerprints(findings).values())
    doc = {
        "version": BASELINE_VERSION,
        "note": (
            "accepted lint findings; regenerate with "
            "`python -m repro lint --write-baseline <path>` and ratchet "
            "toward an empty list"
        ),
        "fingerprints": fingerprints,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return len(fingerprints)


def load_baseline(path: str) -> set:
    """The fingerprint set of a baseline file (``ValueError`` on shape)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a lint baseline (expected version "
            f"{BASELINE_VERSION})"
        )
    fingerprints = doc.get("fingerprints", [])
    if not isinstance(fingerprints, list):
        raise ValueError(f"{path}: 'fingerprints' must be a list")
    return set(fingerprints)


def apply_baseline(
    findings: Sequence[Finding], baseline: set
) -> "tuple[list[Finding], int]":
    """Split findings into (new, number-suppressed-by-baseline)."""
    fingerprints = finding_fingerprints(findings)
    fresh = [f for f in findings if fingerprints[f] not in baseline]
    return fresh, len(findings) - len(fresh)
