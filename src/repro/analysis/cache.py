"""mtime+hash summary cache backing the lint-runtime budget.

Stage 1 of the whole-program analysis (:func:`extract_module`) is a pure
function of one file's source, so its :class:`ModuleSummary` output can
be reused across runs: the cache keys each path by ``(mtime, size)`` for
the fast path and by a content hash for correctness (a touch without an
edit still hits).  The CI budget check (``--budget``) relies on warm
runs skipping extraction entirely.

The cache is a single JSON file; a format bump (or any read error)
silently invalidates it — the cache is an optimization, never a source
of truth.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.analysis.flow.callgraph import ModuleSummary

#: Bump when extraction semantics change — stale summaries must not
#: survive a rule upgrade.
CACHE_FORMAT = 1


def _sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Per-file :class:`ModuleSummary` cache with mtime+hash validation."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._entries: dict[str, dict] = {}
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            if (
                isinstance(doc, dict)
                and doc.get("format") == CACHE_FORMAT
                and isinstance(doc.get("entries"), dict)
            ):
                self._entries = doc["entries"]
        except (OSError, ValueError):
            self._entries = {}

    def get(self, path: str, source: str) -> "ModuleSummary | None":
        entry = self._entries.get(path)
        if entry is None:
            self.misses += 1
            return None
        try:
            stat = os.stat(path)
            mtime_ok = (
                entry.get("mtime") == stat.st_mtime_ns
                and entry.get("size") == stat.st_size
            )
        except OSError:
            mtime_ok = False
        if not mtime_ok and entry.get("sha") != _sha(source):
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        if not mtime_ok:
            # Content matched but stat moved (e.g. a touch): refresh the
            # fast-path key so the next run hits without hashing.
            self._stamp(path, entry)
        self.hits += 1
        return summary

    def put(self, path: str, source: str, summary: ModuleSummary) -> None:
        entry = {"sha": _sha(source), "summary": summary.to_dict()}
        self._stamp(path, entry)
        self._entries[path] = entry

    def _stamp(self, path: str, entry: dict) -> None:
        try:
            stat = os.stat(path)
            entry["mtime"] = stat.st_mtime_ns
            entry["size"] = stat.st_size
        except OSError:
            entry["mtime"] = entry["size"] = -1
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        doc = {"format": CACHE_FORMAT, "entries": self._entries}
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
