"""Benchmark harness: runners and reporters for the paper's experiments.

Every file in ``benchmarks/`` regenerates one table or figure of
Section 5; this package holds the shared machinery — engine construction,
response-time and throughput runners with timeout handling, plain-text
table/series reporters that print the same rows the paper plots, the
shared dataset catalogue (:mod:`repro.bench.datasets`), and the unified
runner behind ``python -m repro bench`` (:mod:`repro.bench.runner`),
which emits schema-versioned ``BENCH_*.json`` telemetry and drives the
``--check`` regression gate.
"""

from repro.bench.datasets import (
    AMADEUS_LARGE,
    AMADEUS_LARGE_SMOKE,
    AMADEUS_SMALL,
    AMADEUS_SMALL_SMOKE,
    TPCBIH_LARGE,
    TPCBIH_LARGE_SMOKE,
    TPCBIH_SMALL,
    TPCBIH_SMALL_SMOKE,
)
from repro.bench.harness import (
    ExperimentResult,
    measure_response_time,
    throughput_commercial,
    throughput_crescando,
)
from repro.bench.reporting import (
    SCHEMA_VERSION,
    format_series,
    format_table,
    write_result,
    write_result_json,
)
from repro.bench.runner import (
    DEFAULT_TOLERANCES,
    BenchContext,
    BenchResult,
    check_results,
    compare_payloads,
    discover,
    run_benchmark,
    run_many,
)

__all__ = [
    "ExperimentResult",
    "measure_response_time",
    "throughput_crescando",
    "throughput_commercial",
    "format_table",
    "format_series",
    "write_result",
    "write_result_json",
    "SCHEMA_VERSION",
    "DEFAULT_TOLERANCES",
    "BenchContext",
    "BenchResult",
    "check_results",
    "compare_payloads",
    "discover",
    "run_benchmark",
    "run_many",
    "AMADEUS_SMALL",
    "AMADEUS_LARGE",
    "TPCBIH_SMALL",
    "TPCBIH_LARGE",
    "AMADEUS_SMALL_SMOKE",
    "AMADEUS_LARGE_SMOKE",
    "TPCBIH_SMALL_SMOKE",
    "TPCBIH_LARGE_SMOKE",
]
