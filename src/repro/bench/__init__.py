"""Benchmark harness: runners and reporters for the paper's experiments.

Every file in ``benchmarks/`` regenerates one table or figure of
Section 5; this package holds the shared machinery — engine construction,
response-time and throughput runners with timeout handling, and plain-text
table/series reporters that print the same rows the paper plots.
"""

from repro.bench.harness import (
    ExperimentResult,
    measure_response_time,
    throughput_commercial,
    throughput_crescando,
)
from repro.bench.reporting import (
    format_series,
    format_table,
    write_result,
    write_result_json,
)

__all__ = [
    "ExperimentResult",
    "measure_response_time",
    "throughput_crescando",
    "throughput_commercial",
    "format_table",
    "format_series",
    "write_result",
    "write_result_json",
]
