"""The unified benchmark runner — ``python -m repro bench``.

Every script in ``benchmarks/`` exposes a ``run_bench(ctx)`` function
(the pytest driver in the same file wraps it and asserts on the returned
data).  This module discovers those scripts, runs them under the
observability layer, reconstructs the per-core schedule of everything
their engines booked on a :class:`~repro.simtime.clock.SimClock`, and
emits one schema-versioned ``BENCH_<name>.json`` telemetry file per
benchmark — simulated elapsed, total work, per-phase utilization and
imbalance, real wall-clock, backend and machine spec.  Those files are
the repo's machine-readable perf trajectory; ``--check`` diffs them
against a committed baseline (``benchmarks/baselines/``) with per-metric
relative tolerances and exits non-zero on regression.

Modes:

* ``python -m repro bench all --smoke`` — every benchmark on tiny smoke
  datasets (CI's ``bench-smoke`` job);
* ``python -m repro bench fig19_parallelization --backend process`` — one
  benchmark, full scale, on a chosen physical backend;
* ``python -m repro bench --check benchmarks/baselines`` — regression
  gate over previously produced ``BENCH_*.json`` files;
* ``--trace-chrome`` — additionally export each benchmark's reconstructed
  schedule as a ``chrome://tracing`` / Perfetto-loadable event array.
"""

from __future__ import annotations

import importlib.util
import json
import math
import os
import platform
import resource
import sys
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.datasets import (
    AMADEUS_LARGE,
    AMADEUS_LARGE_SMOKE,
    AMADEUS_SMALL,
    AMADEUS_SMALL_SMOKE,
    TPCBIH_LARGE,
    TPCBIH_LARGE_SMOKE,
    TPCBIH_SMALL,
    TPCBIH_SMALL_SMOKE,
)
from repro.bench.reporting import SCHEMA_VERSION, write_result_json
from repro.faults import fault_injection
from repro.obs import metrics, schedule_from_span, tracing, write_chrome_trace
from repro.simtime.machine import PAPER_MACHINE
from repro.simtime.measure import measured

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_TOLERANCES",
    "BenchContext",
    "BenchResult",
    "discover",
    "load_benchmark",
    "run_benchmark",
    "run_many",
    "compare_payloads",
    "check_results",
    "machine_spec",
    "peak_rss_bytes",
    "repo_root",
    "benchmarks_dir",
]

#: Per-metric relative tolerances of the regression gate: a metric
#: regresses when ``current > baseline * (1 + tol)``.  All three are
#: lower-is-better.  Simulated metrics derive from measured micro-costs,
#: so they are machine-dependent but stable within ~tens of percent on
#: one host; the gate's 60% headroom absorbs that noise while still
#: catching a 2x slowdown.  Real wall-clock is far noisier (CI machines
#: vary wildly) and gets 400% headroom.  A baseline payload may override
#: these per benchmark via ``{"check": {"tolerances": {...}}}``.
DEFAULT_TOLERANCES: dict[str, float] = {
    "sim_elapsed": 0.6,
    "total_work": 0.6,
    "wall_seconds": 4.0,
}


# ---------------------------------------------------------------------------
# The contract between benchmark scripts and the runner
# ---------------------------------------------------------------------------


@dataclass
class BenchResult:
    """What every ``run_bench(ctx)`` returns.

    ``data`` holds the headline numbers: the pytest driver asserts the
    paper's shape claims on it, and the runner embeds it in the
    ``BENCH_*.json`` payload.  ``rerun`` optionally re-executes a
    representative operation (the pytest driver feeds it to
    ``benchmark.pedantic``); ``cleanup`` releases engines/executors and
    is called after ``rerun`` is no longer needed.
    """

    name: str
    text: str = ""
    data: dict = field(default_factory=dict)
    rerun: Callable | None = None
    cleanup: Callable | None = None

    def close(self) -> None:
        if self.cleanup is not None:
            self.cleanup()
            self.cleanup = None


class BenchContext:
    """Execution context handed to ``run_bench``.

    Carries the run mode (``smoke``, physical ``backend``, trace flags)
    and caches the shared datasets exactly like the pytest session
    fixtures do, so ``bench all`` builds each table once.
    """

    def __init__(
        self,
        smoke: bool = False,
        backend: str = "serial",
        trace_json: bool = False,
        trace_chrome: bool = False,
        faults: str | int | None = None,
        deltamap: str = "columnar",
        adaptive: bool = False,
    ) -> None:
        self.smoke = bool(smoke)
        self.backend = backend
        self.trace_json = bool(trace_json)
        self.trace_chrome = bool(trace_chrome)
        #: Adaptive-indexing mode: benchmarks that honour it crack their
        #: Timeline indexes under the query sequence instead of
        #: bulk-loading (docs/adaptive_indexing.md); recorded in the
        #: payload so history rows key on it.
        self.adaptive = bool(adaptive)
        #: Step-1 delta-map representation the benches run with:
        #: ``"columnar"`` (the NumPy kernels, default) or a scalar oracle
        #: (``"btree"`` / ``"hash"``) — the ``kernel-parity`` CI step runs
        #: the target benches on both and diffs the answers.
        self.deltamap = deltamap
        #: ``SEED[:RATE]`` fault spec (or ``None``).  The runner activates
        #: one :class:`~repro.faults.FaultInjector` per benchmark from it;
        #: executors and WALs built inside ``run_bench`` pick it up
        #: ambiently (see docs/fault_injection.md).
        self.faults = faults
        self._cache: dict = {}

    def scaled(self, full, smoke):
        """``full`` normally, ``smoke`` under ``--smoke`` — the one knob
        benchmark scripts use to shrink private datasets and repeats."""
        return smoke if self.smoke else full

    # ------------------------------------------------------ shared datasets

    def _cached(self, key, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    def amadeus(self, config):
        """A cached :class:`~repro.workloads.AmadeusWorkload` for an
        explicit config (benchmarks with private scales)."""
        from repro.workloads import AmadeusWorkload

        return self._cached(("amadeus", config), lambda: AmadeusWorkload(config))

    def tpcbih(self, config):
        """A cached :class:`~repro.workloads.TPCBiHDataset` for an
        explicit config."""
        from repro.workloads import TPCBiHDataset

        return self._cached(("tpcbih", config), lambda: TPCBiHDataset(config))

    @property
    def amadeus_small(self):
        return self.amadeus(self.scaled(AMADEUS_SMALL, AMADEUS_SMALL_SMOKE))

    @property
    def amadeus_large(self):
        return self.amadeus(self.scaled(AMADEUS_LARGE, AMADEUS_LARGE_SMOKE))

    @property
    def tpcbih_small(self):
        return self.tpcbih(self.scaled(TPCBIH_SMALL, TPCBIH_SMALL_SMOKE))

    @property
    def tpcbih_large(self):
        return self.tpcbih(self.scaled(TPCBIH_LARGE, TPCBIH_LARGE_SMOKE))


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------


def repo_root() -> str:
    """The checkout root (three levels above this package)."""
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )


def benchmarks_dir() -> str:
    return os.path.join(repo_root(), "benchmarks")


def discover(directory: str | None = None) -> dict[str, str]:
    """Benchmark name -> script path, for every ``bench_*.py`` present.

    The name is the script stem without the ``bench_`` prefix — the same
    name the script passes to ``write_result`` for its legacy ``.txt``.
    """
    directory = directory or benchmarks_dir()
    if not os.path.isdir(directory):
        raise FileNotFoundError(
            f"no benchmarks directory at {directory} — the unified runner "
            "needs a repo checkout (benchmarks/ is not installed)"
        )
    registry: dict[str, str] = {}
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("bench_") and entry.endswith(".py"):
            registry[entry[len("bench_"):-len(".py")]] = os.path.join(
                directory, entry
            )
    return registry


def load_benchmark(name: str, path: str):
    """Import one benchmark script as a standalone module."""
    module_name = f"repro_benchmarks.{name}"
    if module_name in sys.modules:
        return sys.modules[module_name]
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:  # pragma: no cover — importlib
        raise ImportError(f"cannot load benchmark {name} from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(module_name, None)
        raise
    if not hasattr(module, "run_bench"):
        raise AttributeError(
            f"benchmark script {path} defines no run_bench(ctx) entry point"
        )
    return module


# ---------------------------------------------------------------------------
# Running + telemetry
# ---------------------------------------------------------------------------


def _json_safe(value):
    """Recursively convert a payload to strict-JSON-serialisable form
    (numpy scalars to Python numbers, non-finite floats to strings)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, str)) or value is None:
        return value
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        return _json_safe(item())
    return str(value)


def peak_rss_bytes() -> int:
    """The process's peak resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes so the telemetry (and the history ledger's drift gate) is
    platform-independent.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024


def machine_spec() -> dict:
    """The simulated machine plus the real host executing the run."""
    return {
        "simulated": {
            "sockets": PAPER_MACHINE.sockets,
            "cores_per_socket": PAPER_MACHINE.cores_per_socket,
            "cores": PAPER_MACHINE.cores,
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
    }


def run_benchmark(
    name: str,
    ctx: BenchContext,
    *,
    path: str | None = None,
    results_dir: str | None = None,
    chrome_dir: str | None = None,
) -> dict:
    """Run one benchmark under tracing; write and return its telemetry.

    The ``BENCH_<name>.json`` payload lands in ``results_dir`` (default:
    the repo root, where the perf trajectory lives); with
    ``ctx.trace_chrome`` the reconstructed schedule is additionally
    exported as ``<name>_chrome_trace.json`` into ``chrome_dir``
    (default: ``benchmarks/results``).
    """
    if path is None:
        registry = discover()
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise KeyError(f"unknown benchmark {name!r}; known: {known}")
        path = registry[name]
    module = load_benchmark(name, path)

    metrics().reset()
    injector = None
    with ExitStack() as stack:
        if ctx.faults is not None:
            injector = stack.enter_context(fault_injection(ctx.faults))
        with measured() as wall:
            with tracing(f"bench:{name}") as tracer:
                result: BenchResult = module.run_bench(ctx)
    result.close()

    report = schedule_from_span(tracer.root)
    payload = {
        "benchmark": name,
        "smoke": ctx.smoke,
        "backend": ctx.backend,
        "deltamap": ctx.deltamap,
        "adaptive": ctx.adaptive,
        "machine": machine_spec(),
        "wall_seconds": wall.elapsed,
        "peak_rss_bytes": peak_rss_bytes(),
        "sim_elapsed": report.elapsed,
        "total_work": report.work,
        "utilization": report.utilization(),
        "imbalance": report.imbalance(),
        "amdahl": report.amdahl(),
        "cores": report.cores,
        "n_phases": len(report.phases),
        "n_tasks": len(report.tasks),
        "phases": report.phase_summary(),
        "metrics": metrics().snapshot(),
        "data": result.data,
    }
    if injector is not None:
        payload["faults"] = injector.summary()
    payload = _json_safe(payload)
    write_result_json(
        f"BENCH_{name}", payload, results_dir=results_dir or repo_root()
    )
    if ctx.trace_chrome:
        chrome_dir = chrome_dir or os.path.join(benchmarks_dir(), "results")
        os.makedirs(chrome_dir, exist_ok=True)
        out = write_chrome_trace(
            os.path.join(chrome_dir, f"{name}_chrome_trace.json"),
            report,
            label=f"bench:{name}",
            span_root=tracer.root,
        )
        print(f"chrome trace written to {out}")
    return payload


def run_many(
    names: list[str],
    ctx: BenchContext,
    *,
    results_dir: str | None = None,
    chrome_dir: str | None = None,
    out=None,
) -> tuple[list[dict], list[str]]:
    """Run several benchmarks; returns (payloads, failure descriptions).

    A failing benchmark does not abort the sweep — its error is recorded
    and the remaining benchmarks still produce telemetry.
    """
    out = out or sys.stdout
    registry = discover()
    payloads: list[dict] = []
    failures: list[str] = []
    for name in names:
        print(f"== bench {name} ==", file=out)
        try:
            payloads.append(
                run_benchmark(
                    name,
                    ctx,
                    path=registry.get(name),
                    results_dir=results_dir,
                    chrome_dir=chrome_dir,
                )
            )
        except Exception as exc:  # noqa: BLE001 — sweep must survive
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
            print(f"FAILED {name}: {exc}", file=out)
    return payloads, failures


# ---------------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------------


def load_payload(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "benchmark" not in payload:
        raise ValueError(f"{path} is not a BENCH_*.json payload")
    return payload


def _baseline_payloads(baseline: str) -> dict[str, dict]:
    """Load a baseline file or a directory of ``BENCH_*.json`` files."""
    if os.path.isdir(baseline):
        payloads = {}
        for entry in sorted(os.listdir(baseline)):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                payload = load_payload(os.path.join(baseline, entry))
                payloads[payload["benchmark"]] = payload
        if not payloads:
            raise FileNotFoundError(f"no BENCH_*.json baselines in {baseline}")
        return payloads
    payload = load_payload(baseline)
    return {payload["benchmark"]: payload}


def compare_payloads(
    baseline: dict, current: dict, tolerance_scale: float = 1.0
) -> list[str]:
    """Violation descriptions for one benchmark's baseline vs current."""
    name = baseline.get("benchmark", "?")
    violations: list[str] = []
    tolerances = dict(DEFAULT_TOLERANCES)
    overrides = baseline.get("check", {})
    if isinstance(overrides, dict):
        tolerances.update(overrides.get("tolerances", {}))
    for metric, tol in sorted(tolerances.items()):
        if tol is None:
            continue
        base = baseline.get(metric)
        cur = current.get(metric)
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            continue  # metric absent (or non-finite) in the baseline
        if base <= 0:
            continue  # nothing measurable to regress against
        if not isinstance(cur, (int, float)) or isinstance(cur, bool):
            violations.append(
                f"{name}: metric {metric!r} missing from current results"
            )
            continue
        allowed = 1.0 + tol * tolerance_scale
        ratio = cur / base
        if ratio > allowed:
            violations.append(
                f"{name}: {metric} regressed {ratio:.2f}x "
                f"({base:.6g} -> {cur:.6g}; allowed {allowed:.2f}x)"
            )
    return violations


def check_results(
    baseline: str,
    results_dir: str | None = None,
    tolerance_scale: float = 1.0,
    out=None,
) -> int:
    """Diff current ``BENCH_*.json`` files against a committed baseline.

    ``baseline`` is a single payload file or a directory of them;
    ``results_dir`` holds the current run's payloads (default: the repo
    root).  Returns the number of violations (0 = gate passes), after
    printing a per-benchmark verdict.
    """
    out = out or sys.stdout
    results_dir = results_dir or repo_root()
    baselines = _baseline_payloads(baseline)
    violations: list[str] = []
    for name, base in sorted(baselines.items()):
        current_path = os.path.join(results_dir, f"BENCH_{name}.json")
        if not os.path.isfile(current_path):
            violations.append(
                f"{name}: no current results at {current_path} "
                "(run `python -m repro bench` first)"
            )
            continue
        current = load_payload(current_path)
        if current.get("schema") != base.get("schema"):
            print(
                f"note: {name}: schema {base.get('schema')} (baseline) vs "
                f"{current.get('schema')} (current) — comparing anyway",
                file=out,
            )
        found = compare_payloads(base, current, tolerance_scale)
        violations.extend(found)
        verdict = "OK" if not found else f"REGRESSED ({len(found)})"
        print(f"check {name}: {verdict}", file=out)
    for violation in violations:
        print(f"regression: {violation}", file=out)
    if not violations:
        print(f"regression gate: {len(baselines)} benchmark(s) OK", file=out)
    return len(violations)
