"""The persistent bench-history ledger: ``benchmarks/history.jsonl``.

``BENCH_*.json`` files are the *latest* run's telemetry; this module
keeps the trajectory.  ``python -m repro bench ... --append-history``
appends one schema-versioned row per produced payload — keyed by git
SHA and run mode — to an append-only JSONL ledger that is committed
alongside the code, and ``python -m repro bench --trend`` reads the
ledger back and flags drift between the latest and the previous run of
each (benchmark, mode) series.

Rows are deliberately small (headline metrics only, no per-phase
detail): the ledger is meant to be committed for years, grep-able, and
loadable into anything that reads JSON lines — including the serving
stack's own SQL layer one day (ROADMAP).

The trend gate is informational by design — it prints findings and
returns them; CI treats drift as a signal to look at, not a failure,
because history rows mix machines (laptop rows next to CI rows).  The
hard regression gate stays ``bench --check`` against per-machine
baselines.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

__all__ = [
    "HISTORY_SCHEMA",
    "default_history_path",
    "git_sha",
    "mode_string",
    "history_row",
    "append_history",
    "read_history",
    "trend_report",
]

#: Bump on any row-shape change; readers skip rows with a newer schema.
HISTORY_SCHEMA = 1

#: Headline metrics a history row carries, and the relative drift (vs
#: the previous row of the same series) past which ``--trend`` flags
#: them.  All lower-is-better; ``wall_seconds`` is excluded on purpose
#: (cross-machine noise would drown the signal).
TREND_TOLERANCES: dict[str, float] = {
    "sim_elapsed": 0.25,
    "total_work": 0.25,
    "peak_rss_bytes": 0.50,
}


def default_history_path(results_dir: str | None = None) -> str:
    """``benchmarks/history.jsonl`` under the repo checkout."""
    from repro.bench.runner import benchmarks_dir

    return os.path.join(results_dir or benchmarks_dir(), "history.jsonl")


def git_sha(cwd: str | None = None) -> str:
    """The checkout's HEAD SHA, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def mode_string(payload: dict) -> str:
    """The run-mode key of one payload:
    scale/backend/deltamap[+adaptive][+faults].

    Two rows compare only within the same mode — a smoke row drifting
    against a full-scale row would be noise, not signal.
    """
    scale = "smoke" if payload.get("smoke") else "full"
    mode = (
        f"{scale}/{payload.get('backend', 'serial')}"
        f"/{payload.get('deltamap', 'columnar')}"
    )
    if payload.get("adaptive"):
        mode += "+adaptive"
    if payload.get("faults"):
        mode += "+faults"
    return mode


def history_row(
    payload: dict, *, sha: str | None = None, timestamp: float | None = None
) -> dict:
    """One ledger row for one ``BENCH_*.json`` payload."""
    row = {
        "schema": HISTORY_SCHEMA,
        "sha": sha if sha is not None else git_sha(),
        "ts": time.time() if timestamp is None else float(timestamp),
        "benchmark": payload.get("benchmark", "?"),
        "mode": mode_string(payload),
    }
    for metric in ("sim_elapsed", "total_work", "wall_seconds",
                   "peak_rss_bytes", "n_phases", "n_tasks"):
        value = payload.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            row[metric] = value
    return row


def append_history(
    payloads: list[dict], path: str, *, sha: str | None = None
) -> list[dict]:
    """Append one row per payload to the ledger; returns the rows.

    The SHA is resolved once per call so every row of one sweep carries
    the same key even if a commit lands mid-run.
    """
    if sha is None:
        sha = git_sha()
    rows = [history_row(p, sha=sha) for p in payloads]
    if rows:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "a") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
    return rows


def read_history(path: str) -> list[dict]:
    """All readable ledger rows, oldest first.

    Unparseable lines and rows from a *newer* schema are skipped (an old
    checkout reading a ledger the future appended to), so the ledger can
    only ever grow.
    """
    rows: list[dict] = []
    if not os.path.isfile(path):
        return rows
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if not isinstance(row, dict):
                continue
            if row.get("schema", 0) > HISTORY_SCHEMA:
                continue
            rows.append(row)
    return rows


def trend_report(rows: list[dict], out=None, path: str | None = None) -> list[str]:
    """Latest-vs-previous drift per (benchmark, mode) series.

    Prints one verdict line per series and returns the drift findings
    (empty = no metric moved past its tolerance).  Cold-start cases are
    first-class, not crashes: an empty (or missing) ledger says so and
    points at the path and ``--append-history``; single-row series report
    that they need one more run before trends exist; and a pair of rows
    sharing no comparable metric says "no comparable metrics" instead of
    claiming the series is steady.
    """
    out = out or sys.stdout
    if not rows:
        where = f" at {path}" if path else ""
        print(
            f"trend: history ledger{where} is empty — run "
            "'bench <names> --append-history' to start one",
            file=out,
        )
        return []
    series: dict[tuple[str, str], list[dict]] = {}
    for row in rows:
        key = (str(row.get("benchmark", "?")), str(row.get("mode", "?")))
        series.setdefault(key, []).append(row)
    findings: list[str] = []
    for (benchmark, mode), history in sorted(series.items()):
        if len(history) < 2:
            print(
                f"trend {benchmark} [{mode}]: {len(history)} run(s), "
                "no previous run to compare",
                file=out,
            )
            continue
        previous, latest = history[-2], history[-1]
        drifted: list[str] = []
        compared = 0
        for metric, tol in sorted(TREND_TOLERANCES.items()):
            base, cur = previous.get(metric), latest.get(metric)
            if not isinstance(base, (int, float)) or isinstance(base, bool):
                continue
            if not isinstance(cur, (int, float)) or isinstance(cur, bool):
                continue
            if base <= 0:
                continue
            compared += 1
            ratio = cur / base
            if ratio > 1.0 + tol or ratio < 1.0 / (1.0 + tol):
                drifted.append(
                    f"{metric} {ratio:.2f}x ({base:.6g} -> {cur:.6g})"
                )
        sha = str(latest.get("sha", "?"))[:12]
        if drifted:
            finding = (
                f"{benchmark} [{mode}] @ {sha}: " + "; ".join(drifted)
            )
            findings.append(finding)
            print(f"trend {benchmark} [{mode}]: DRIFT — {finding}", file=out)
        elif compared == 0:
            print(
                f"trend {benchmark} [{mode}]: no comparable metrics "
                f"between the latest two runs (latest @ {sha})",
                file=out,
            )
        else:
            print(
                f"trend {benchmark} [{mode}]: steady over "
                f"{len(history)} runs (latest @ {sha})",
                file=out,
            )
    return findings
