"""Plain-text and JSON reporting: the artifacts the benchmarks persist.

Every benchmark writes its output both to stdout and to
``benchmarks/results/<experiment>.txt`` so the regenerated artifacts
survive pytest's output capturing and can be diffed across runs.  With
``--trace-json`` (see ``benchmarks/conftest.py``) drivers additionally
write ``<experiment>_trace.json`` files embedding the span trees of
representative runs (:func:`write_result_json`).
"""

from __future__ import annotations

import json
import math
import os
from typing import Mapping, Sequence

#: Version stamp written into every JSON artifact (``BENCH_*.json``
#: telemetry and ``*_trace.json`` span dumps).  Bump when a field is
#: renamed or its meaning changes so downstream consumers (the
#: ``--check`` regression gate, external dashboards) can tell layouts
#: apart.
SCHEMA_VERSION = 1


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "TIMEOUT"
        if math.isnan(value):
            return "n/a"
        if value != 0 and (abs(value) < 0.01 or abs(value) >= 100_000):
            return f"{value:.3e}"
        return f"{value:,.4f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence], notes=()
) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)).rstrip())
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    series: Mapping[str, Sequence[tuple]],
    y_label: str = "value",
    notes=(),
) -> str:
    """Render several (x, y) series as one aligned table, x as rows."""
    xs = sorted({x for points in series.values() for x, _y in points})
    headers = [x_label] + list(series)
    rows = []
    lookup = {name: dict(points) for name, points in series.items()}
    for x in xs:
        rows.append([x] + [lookup[name].get(x, float("nan")) for name in series])
    return format_table(title, headers, rows, notes=notes)


def _default_results_dir() -> str:
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__)))),
        "benchmarks",
        "results",
    )


def write_result(name: str, text: str, results_dir: str | None = None) -> str:
    """Print and persist one experiment's output; returns the file path."""
    if results_dir is None:
        results_dir = _default_results_dir()
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    return path


def write_result_json(
    name: str, payload: dict, results_dir: str | None = None
) -> str:
    """Persist a JSON artifact next to the text results; returns the path.

    Used by the ``--trace-json`` benchmark mode to embed the span trees of
    representative runs (``Span.to_dict()`` output plus whatever metadata
    the driver adds) in ``benchmarks/results/<name>.json``, and by the
    unified runner for its ``BENCH_<name>.json`` telemetry.  Every payload
    is stamped with the current :data:`SCHEMA_VERSION` (an explicit
    ``"schema"`` key in ``payload`` wins, so re-writing an old artifact
    preserves its version).
    """
    if results_dir is None:
        results_dir = _default_results_dir()
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.json")
    stamped = dict(payload)
    stamped.setdefault("schema", SCHEMA_VERSION)
    with open(path, "w") as f:
        json.dump(stamped, f, indent=2, sort_keys=True)
    print(f"\ntrace JSON written to {path}")
    return path
