"""Shared runner for the TPC-BiH response-time experiments (Figs 17, 18).

Builds every engine over both benchmark tables and measures each Table 2
query on each engine.  Engines that cannot run a query (timeout, or a
missing capability) report ``inf`` / ``nan``, rendered as TIMEOUT / n/a.
"""

from __future__ import annotations

import math

from repro.bench.harness import measure_response_time
from repro.simtime.cost import CostModel
from repro.storage import CrescandoEngine
from repro.systems import SystemD, SystemM
from repro.timeline import TimelineEngine
from repro.workloads import TPCBIH_QUERIES, TPCBiHDataset

#: value columns the Timeline Index pre-aggregates per table.
VALUE_COLUMNS = {
    "customer": (),
    "orders": ("totalprice", "lead_days"),
}


def build_engines(
    dataset: TPCBiHDataset,
    partime_cores: tuple[int, ...] = (2, 31),
    include_commercial: bool = True,
    costs: CostModel | None = None,
) -> dict[str, dict[str, object]]:
    """engine name -> {table name -> loaded engine}."""
    tables = {"customer": dataset.customer, "orders": dataset.orders}
    engines: dict[str, dict[str, object]] = {}

    def add(name: str, factory) -> None:
        engines[name] = {}
        for tname, table in tables.items():
            engine = factory(tname)
            engine.bulkload(table)
            engines[name][tname] = engine

    add("Timeline (1 core)", lambda t: TimelineEngine(VALUE_COLUMNS[t]))
    for cores in partime_cores:
        add(
            f"ParTime ({cores} cores)",
            lambda _t, c=cores: CrescandoEngine.response_time_config(c),
        )
    if include_commercial:
        kwargs = {} if costs is None else {"costs": costs}
        add("System D (32 cores)", lambda _t: SystemD(**kwargs))
        add("System M (32 cores)", lambda _t: SystemM(**kwargs))
    return engines


def run_all_queries(
    dataset: TPCBiHDataset,
    engines: dict[str, dict[str, object]],
    repeats: int = 3,
) -> dict[str, dict[str, float]]:
    """query name -> engine name -> simulated seconds (sum over a query's
    operations; best of ``repeats``)."""
    times: dict[str, dict[str, float]] = {}
    for qname, build in TPCBIH_QUERIES.items():
        table_name, ops = build(dataset)
        if not isinstance(ops, list):
            ops = [ops]
        times[qname] = {}
        for ename, per_table in engines.items():
            engine = per_table[table_name]
            best = math.inf
            for _ in range(repeats):
                total = 0.0
                for op in ops:
                    seconds = measure_response_time(engine, op)
                    if math.isinf(seconds) or math.isnan(seconds):
                        total = seconds
                        break
                    total += seconds
                if not math.isnan(total):
                    best = min(best, total)
                else:
                    best = total
                    break
            times[qname][ename] = best
    return times
