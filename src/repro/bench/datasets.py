"""The benchmark dataset catalogue — full-scale and smoke configs.

One place for the scales every benchmark shares, used both by the pytest
drivers (``benchmarks/conftest.py`` session fixtures) and the unified
runner (``python -m repro bench``).  The full configs reproduce the
paper's shapes (see EXPERIMENTS.md for the scale mapping); the smoke
configs are deliberately tiny — they exist so ``repro bench all --smoke``
finishes in CI minutes while still exercising every phase of every
benchmark, which is all the ``BENCH_*.json`` regression gate needs.
"""

from __future__ import annotations

from repro.workloads import AmadeusConfig, TPCBiHConfig

#: "small database" — the 1% Amadeus subset of Section 5.2.1, scaled.
AMADEUS_SMALL = AmadeusConfig(num_bookings=50_000, num_flights=2_000, seed=11)
#: "large database" — the full bookings table, scaled (~25x the small one,
#: ~800k physical rows: big enough that per-partition scan work dominates
#: fixed per-node costs up to 32 simulated cores).
AMADEUS_LARGE = AmadeusConfig(num_bookings=400_000, num_flights=2_000, seed=12)

#: TPC-BiH SF=1 (the "small" 2.3 GB database, scaled).
TPCBIH_SMALL = TPCBiHConfig(scale_factor=1.0, seed=21)
#: TPC-BiH SF=100 (the "large" 312 GB database, scaled 1:10 relative to
#: small rather than 1:100 — enough to move the Amdahl crossover).
TPCBIH_LARGE = TPCBiHConfig(scale_factor=10.0, seed=22)

#: Smoke variants: same seeds and shapes, drastically smaller scales.
AMADEUS_SMALL_SMOKE = AmadeusConfig(num_bookings=4_000, num_flights=400, seed=11)
AMADEUS_LARGE_SMOKE = AmadeusConfig(num_bookings=12_000, num_flights=400, seed=12)
TPCBIH_SMALL_SMOKE = TPCBiHConfig(scale_factor=0.1, seed=21)
TPCBIH_LARGE_SMOKE = TPCBiHConfig(scale_factor=0.4, seed=22)
