"""Experiment runners.

Response times are per-query simulated seconds as defined by each engine
(see DESIGN.md on the hardware substitution).  Throughput is modelled per
system:

* **Crescando** — a batch is executed for real; throughput is
  ``batch size / simulated batch seconds`` (shared scans amortise the base
  pass, Section 5.3.2: "a batch of up to 2000 queries").
* **Systems D / M** — no scan sharing; with ``c`` cores and per-query
  response times ``t_i``, throughput is ``n / (sum(t_i) / c)`` — perfect
  inter-query parallelism, which is *generous* to them (real systems
  contend).  Queries that time out contribute the timeout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.simtime.cost import DEFAULT_COSTS
from repro.storage.cluster import Cluster
from repro.storage.queries import SelectQuery, TemporalAggQuery
from repro.systems.base import Engine, QueryTimeout


@dataclass
class ExperimentResult:
    """A labelled collection of measurements for one experiment."""

    name: str
    rows: list[tuple] = field(default_factory=list)
    headers: tuple[str, ...] = ()
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        self.rows.append(tuple(row))

    def note(self, text: str) -> None:
        self.notes.append(text)


def measure_response_time(engine: Engine, op) -> float:
    """One operation's simulated response time; ``inf`` on timeout."""
    try:
        if isinstance(op, TemporalAggQuery):
            _result, seconds = engine.temporal_aggregation(op.query)
        elif isinstance(op, SelectQuery):
            _count, seconds = engine.select(op.predicate, indexed=op.indexed)
        else:
            raise TypeError(f"cannot run {op!r} on {engine.name}")
        return seconds
    except QueryTimeout:
        return math.inf
    except NotImplementedError:
        return math.nan


def throughput_crescando(cluster: Cluster, ops: list, repeats: int = 3) -> float:
    """Queries per simulated second for one batch on a cluster.

    Read-only batches are executed ``repeats`` times and the fastest run
    counts (standard noise suppression for measured micro-costs; a batch
    containing writes must use ``repeats=1``)."""
    best = math.inf
    for _ in range(max(1, repeats)):
        batch = cluster.execute_batch(list(ops))
        best = min(best, batch.simulated_seconds)
    if best <= 0:
        return math.inf
    return len(ops) / best


def throughput_commercial(
    engine: Engine, ops: list, cores: int = 32, sample: int | None = None
) -> float:
    """Queries per simulated second for a commercial stand-in.

    ``sample`` optionally measures only the first N operations and
    extrapolates by kind-preserving scaling (the full Amadeus batch would
    mostly repeat the same cheap lookups).
    """
    measured = ops if sample is None else ops[:sample]
    total = 0.0
    for op in measured:
        seconds = measure_response_time(engine, op)
        if math.isinf(seconds):
            seconds = DEFAULT_COSTS.timeout_s
        if math.isnan(seconds):
            seconds = DEFAULT_COSTS.timeout_s
        total += seconds
    if sample is not None and measured:
        total *= len(ops) / len(measured)
    if total <= 0:
        return math.inf
    return len(ops) / (total / cores)
