"""A classic in-memory B-tree.

The tree stores ``(key, value)`` pairs with totally-ordered keys (ints or
tuples of ints in this code base — delta maps key on timestamps or on
concatenated interval boundaries, Figure 10).  Besides the usual ``put`` /
``get`` / ``delete`` / ordered iteration, it offers the paper's special
:meth:`BTree.dm_put`, which *adjusts* an existing entry in place (combining
the old and new value, by default with ``+``) or inserts the key if absent —
the core primitive of delta-map generation (Figure 7).

The implementation is a textbook order-``t`` B-tree (Cormen et al.): every
node other than the root holds between ``t - 1`` and ``2t - 1`` keys;
insertion splits full children on the way down, deletion rebalances by
borrowing or merging on the way down, so both are single-pass.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterator


class _Node:
    """One B-tree node; ``children`` is empty exactly for leaves."""

    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list = []
        self.values: list = []
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def find(self, key) -> int:
        """Index of the first key >= ``key`` (binary search)."""
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo


class BTree:
    """An order-``t`` B-tree mapping comparable keys to values.

    >>> tree = BTree()
    >>> tree.dm_put(7, -10)
    >>> tree.dm_put(7, +15)
    >>> tree.get(7)
    5
    """

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("B-tree minimum degree must be >= 2")
        self._t = min_degree
        self._root = _Node()
        self._len = 0
        self._put_count = 0  # operation statistics for the cost model

    # ---------------------------------------------------------------- info

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __contains__(self, key) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    @property
    def put_count(self) -> int:
        """Number of put/dm_put operations performed (cost accounting)."""
        return self._put_count

    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        h, node = 1, self._root
        while not node.is_leaf:
            h += 1
            node = node.children[0]
        return h

    # --------------------------------------------------------------- reads

    def get(self, key, default=None):
        node = self._root
        while True:
            i = node.find(key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.is_leaf:
                return default
            node = node.children[i]

    def min_key(self):
        if not self._len:
            raise KeyError("empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self):
        if not self._len:
            raise KeyError("empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in ascending key order."""
        yield from self._iter(self._root)

    def keys(self) -> Iterator[Any]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[Any]:
        for _, v in self.items():
            yield v

    def _iter(self, node: _Node) -> Iterator[tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._iter(node.children[i])
            yield key, node.values[i]
        yield from self._iter(node.children[-1])

    def range(self, lo, hi) -> Iterator[tuple[Any, Any]]:
        """Entries with ``lo <= key < hi`` in ascending order."""
        yield from self._range(self._root, lo, hi)

    def _range(self, node: _Node, lo, hi) -> Iterator[tuple[Any, Any]]:
        i = node.find(lo)
        if node.is_leaf:
            for j in range(i, len(node.keys)):
                if node.keys[j] >= hi:
                    return
                yield node.keys[j], node.values[j]
            return
        for j in range(i, len(node.keys)):
            yield from self._range(node.children[j], lo, hi)
            if node.keys[j] >= hi:
                return
            yield node.keys[j], node.values[j]
        yield from self._range(node.children[-1], lo, hi)

    # -------------------------------------------------------------- writes

    def put(self, key, value) -> None:
        """Insert or overwrite ``key``."""
        self.dm_put(key, value, combine=lambda _old, new: new)

    def dm_put(self, key, value, combine: Callable = operator.add) -> None:
        """The paper's special put: merge into an existing entry or insert.

        ``combine(old, new)`` produces the stored value when ``key`` already
        exists; the default ``+`` implements delta consolidation
        (``<t7, -10k>`` followed by ``<t7, +15k>`` becomes ``<t7, +5k>``,
        Section 3.2.1).
        """
        self._put_count += 1
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value, combine)

    def _split_child(self, parent: _Node, i: int) -> None:
        t = self._t
        child = parent.children[i]
        sibling = _Node()
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(i, child.keys[t - 1])
        parent.values.insert(i, child.values[t - 1])
        parent.children.insert(i + 1, sibling)
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]

    def _insert_nonfull(self, node: _Node, key, value, combine: Callable) -> None:
        while True:
            i = node.find(key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = combine(node.values[i], value)
                return
            if node.is_leaf:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                self._len += 1
                return
            child = node.children[i]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, i)
                if node.keys[i] == key:
                    node.values[i] = combine(node.values[i], value)
                    return
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    # ------------------------------------------------------------ deletion

    def delete(self, key) -> None:
        """Remove ``key``; raises ``KeyError`` if absent."""
        if not self._delete(self._root, key):
            raise KeyError(key)
        if not self._root.keys and not self._root.is_leaf:
            self._root = self._root.children[0]
        self._len -= 1

    def _delete(self, node: _Node, key) -> bool:
        t = self._t
        i = node.find(key)
        if i < len(node.keys) and node.keys[i] == key:
            if node.is_leaf:
                node.keys.pop(i)
                node.values.pop(i)
                return True
            # Replace by predecessor or successor from a child with >= t
            # keys, or merge the two children around the key.
            left, right = node.children[i], node.children[i + 1]
            if len(left.keys) >= t:
                pk, pv = self._pop_max(left)
                node.keys[i], node.values[i] = pk, pv
                return True
            if len(right.keys) >= t:
                sk, sv = self._pop_min(right)
                node.keys[i], node.values[i] = sk, sv
                return True
            self._merge_children(node, i)
            return self._delete(left, key)
        if node.is_leaf:
            return False
        child = node.children[i]
        if len(child.keys) < t:
            child = self._fill_child(node, i)
        return self._delete(child, key)

    def _pop_max(self, node: _Node):
        while not node.is_leaf:
            if len(node.children[-1].keys) < self._t:
                node = self._fill_child(node, len(node.children) - 1)
            else:
                node = node.children[-1]
        return node.keys.pop(), node.values.pop()

    def _pop_min(self, node: _Node):
        while not node.is_leaf:
            if len(node.children[0].keys) < self._t:
                node = self._fill_child(node, 0)
            else:
                node = node.children[0]
        k = node.keys.pop(0)
        v = node.values.pop(0)
        return k, v

    def _fill_child(self, node: _Node, i: int) -> _Node:
        """Ensure ``node.children[i]`` has at least ``t`` keys by borrowing
        from a sibling or merging; returns the (possibly merged) child."""
        t = self._t
        child = node.children[i]
        if i > 0 and len(node.children[i - 1].keys) >= t:
            left = node.children[i - 1]
            child.keys.insert(0, node.keys[i - 1])
            child.values.insert(0, node.values[i - 1])
            node.keys[i - 1] = left.keys.pop()
            node.values[i - 1] = left.values.pop()
            if not left.is_leaf:
                child.children.insert(0, left.children.pop())
            return child
        if i < len(node.keys) and len(node.children[i + 1].keys) >= t:
            right = node.children[i + 1]
            child.keys.append(node.keys[i])
            child.values.append(node.values[i])
            node.keys[i] = right.keys.pop(0)
            node.values[i] = right.values.pop(0)
            if not right.is_leaf:
                child.children.append(right.children.pop(0))
            return child
        if i < len(node.keys):
            self._merge_children(node, i)
            return node.children[i]
        self._merge_children(node, i - 1)
        return node.children[i - 1]

    def _merge_children(self, node: _Node, i: int) -> None:
        """Merge children ``i`` and ``i+1`` around separator key ``i``."""
        left, right = node.children[i], node.children[i + 1]
        left.keys.append(node.keys.pop(i))
        left.values.append(node.values.pop(i))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(i + 1)

    # --------------------------------------------------------------- misc

    def check_invariants(self) -> None:
        """Assert structural invariants; used by property-based tests."""
        t = self._t

        def walk(node: _Node, depth: int, is_root: bool) -> int:
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= t - 1, "underfull node"
            assert len(node.keys) <= 2 * t - 1, "overfull node"
            assert all(
                node.keys[j] < node.keys[j + 1] for j in range(len(node.keys) - 1)
            ), "keys out of order"
            if node.is_leaf:
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = {walk(c, depth + 1, False) for c in node.children}
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        walk(self._root, 0, True)
        assert sum(1 for _ in self.items()) == self._len


_MISSING = object()
