"""An in-memory B-tree with the paper's merge-on-insert ``dm_put``.

Section 3.2.3: *"We extended our B tree implementation to support a special
put operation which adjusts an existing entry, if it exists, or creates a
new entry, if the search key cannot be found."*  :meth:`BTree.dm_put` is
that operation; it is what delta maps are built on.
"""

from repro.btree.btree import BTree

__all__ = ["BTree"]
