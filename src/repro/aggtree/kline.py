"""The Kline–Snodgrass Aggregation Tree [16].

An unbalanced binary search tree over interval boundary timestamps; each
node carries the consolidated delta of all records whose validity starts
or ends at its timestamp.  Pass 1 inserts every record's two boundaries in
input order; pass 2 traverses in order, accumulating the running aggregate
and emitting one result interval per span between consecutive boundaries.

No rebalancing is performed — by design, to preserve the algorithm's
defining weakness: inserting boundaries in ascending timestamp order (the
natural order of transaction time!) degenerates the tree into a linked
list and the whole algorithm into O(n²).  The balanced fix is in
:mod:`repro.aggtree.balanced`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.aggregates import AggregateFunction


class _TreeNode:
    __slots__ = ("key", "delta", "left", "right")

    def __init__(self, key: int, delta) -> None:
        self.key = key
        self.delta = delta
        self.left: "_TreeNode | None" = None
        self.right: "_TreeNode | None" = None


class AggregationTree:
    """Unbalanced boundary tree with consolidated deltas."""

    def __init__(self, aggregate: AggregateFunction) -> None:
        self.aggregate = aggregate
        self._root: _TreeNode | None = None
        self._len = 0
        self._max_depth_seen = 0

    def __len__(self) -> int:
        return self._len

    @property
    def max_depth_seen(self) -> int:
        """Deepest insertion path so far — the degeneration witness."""
        return self._max_depth_seen

    def put(self, key: int, delta) -> None:
        """Insert or consolidate a boundary delta (iteratively, so that a
        degenerated tree exhausts time rather than the Python stack)."""
        if self._root is None:
            self._root = _TreeNode(key, delta)
            self._len = 1
            self._max_depth_seen = 1
            return
        node = self._root
        depth = 1
        while True:
            if key == node.key:
                node.delta = self.aggregate.combine(node.delta, delta)
                break
            if key < node.key:
                if node.left is None:
                    node.left = _TreeNode(key, delta)
                    self._len += 1
                    depth += 1
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _TreeNode(key, delta)
                    self._len += 1
                    depth += 1
                    break
                node = node.right
            depth += 1
        if depth > self._max_depth_seen:
            self._max_depth_seen = depth

    def add_record(self, valid_from: int, valid_to: int, value, forever: int) -> None:
        """Pass-1 contribution of one record (same shape as delta maps)."""
        self.put(valid_from, self.aggregate.make_delta(value, +1))
        if valid_to < forever:
            self.put(valid_to, self.aggregate.make_delta(value, -1))

    def items(self) -> Iterator[tuple[int, Any]]:
        """In-order traversal (pass 2's input), iterative."""
        stack: list[_TreeNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.delta
            node = node.right

    def height(self) -> int:
        """Exact height (O(n) walk; used by tests and the degeneration
        bench)."""
        best = 0
        stack: list[tuple[_TreeNode | None, int]] = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            if node is None:
                continue
            best = max(best, depth)
            stack.append((node.left, depth + 1))
            stack.append((node.right, depth + 1))
        return best
