"""The balanced Aggregation Tree of Böhlen, Gamper & Jensen [3].

Identical contract to :class:`repro.aggtree.kline.AggregationTree`, but
the boundary tree is an AVL tree: "an algorithm which is based on AVL
trees for the upper and lower bounds of the time intervals ... guarantees
O(n · log n) complexity" (Section 2).  Rotations keep the height
logarithmic regardless of insertion order, fixing the quadratic blow-up of
the original on chronologically ordered input.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.aggregates import AggregateFunction


class _AvlNode:
    __slots__ = ("key", "delta", "left", "right", "height")

    def __init__(self, key: int, delta) -> None:
        self.key = key
        self.delta = delta
        self.left: "_AvlNode | None" = None
        self.right: "_AvlNode | None" = None
        self.height = 1


def _h(node: "_AvlNode | None") -> int:
    return node.height if node is not None else 0


def _fix(node: _AvlNode) -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))


def _balance_factor(node: _AvlNode) -> int:
    return _h(node.left) - _h(node.right)


def _rotate_right(y: _AvlNode) -> _AvlNode:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _fix(y)
    _fix(x)
    return x


def _rotate_left(x: _AvlNode) -> _AvlNode:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _fix(x)
    _fix(y)
    return y


def _rebalance(node: _AvlNode) -> _AvlNode:
    _fix(node)
    bf = _balance_factor(node)
    if bf > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bf < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class BalancedAggregationTree:
    """AVL boundary tree with consolidated deltas."""

    def __init__(self, aggregate: AggregateFunction) -> None:
        self.aggregate = aggregate
        self._root: _AvlNode | None = None
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def put(self, key: int, delta) -> None:
        self._root = self._insert(self._root, key, delta)

    def _insert(self, node: "_AvlNode | None", key: int, delta) -> _AvlNode:
        if node is None:
            self._len += 1
            return _AvlNode(key, delta)
        if key == node.key:
            node.delta = self.aggregate.combine(node.delta, delta)
            return node
        if key < node.key:
            node.left = self._insert(node.left, key, delta)
        else:
            node.right = self._insert(node.right, key, delta)
        return _rebalance(node)

    def add_record(self, valid_from: int, valid_to: int, value, forever: int) -> None:
        self.put(valid_from, self.aggregate.make_delta(value, +1))
        if valid_to < forever:
            self.put(valid_to, self.aggregate.make_delta(value, -1))

    def items(self) -> Iterator[tuple[int, Any]]:
        stack: list[_AvlNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.delta
            node = node.right

    def height(self) -> int:
        return _h(self._root)

    def check_invariants(self) -> None:
        """AVL balance and ordering invariants (for property tests)."""

        def walk(node: "_AvlNode | None") -> tuple[int, int | None, int | None]:
            if node is None:
                return 0, None, None
            lh, lmin, lmax = walk(node.left)
            rh, rmin, rmax = walk(node.right)
            assert abs(lh - rh) <= 1, "AVL balance violated"
            assert node.height == 1 + max(lh, rh), "stale height"
            if lmax is not None:
                assert lmax < node.key, "left subtree out of order"
            if rmin is not None:
                assert node.key < rmin, "right subtree out of order"
            lo = lmin if lmin is not None else node.key
            hi = rmax if rmax is not None else node.key
            return node.height, lo, hi

        walk(self._root)
