"""The two-pass Aggregation Tree algorithms, sequential and parallel.

:func:`aggregation_tree_aggregate` is the sequential algorithm of [16]
(or, with ``balanced=True``, of [3]): pass 1 inserts every record's
validity boundaries into the tree; pass 2 traverses in order with a
running accumulator and emits the constant intervals.

:func:`parallel_aggregation_tree` is the Gendrano-style parallelisation
[9]: every worker builds a tree over its partition, then the trees are
merged into one before the final traversal.  The merge is inherently
sequential work proportional to the total number of boundaries — which is
why "overall the Aggregation Tree approach does not parallelize well;
there is some improvement, but the speed-up is far from linear"
(Section 2).  The executor accounting makes that visible in the ablation
bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.aggtree.balanced import BalancedAggregationTree
from repro.aggtree.kline import AggregationTree
from repro.core.aggregates import get_aggregate
from repro.simtime.executor import Executor, SerialExecutor
from repro.temporal.predicates import Predicate
from repro.temporal.table import TableChunk
from repro.temporal.timestamps import FOREVER, Interval, MIN_TIME


def _build_tree(
    chunk: TableChunk,
    dim: str,
    value_column: str | None,
    aggregate,
    predicate: Predicate | None,
    query_interval: Interval | None,
    balanced: bool,
):
    agg = get_aggregate(aggregate)
    tree = BalancedAggregationTree(agg) if balanced else AggregationTree(agg)
    qlo = MIN_TIME if query_interval is None else query_interval.start
    qhi = FOREVER if query_interval is None else query_interval.end
    if predicate is not None:
        chunk = chunk.select(predicate.mask(chunk))
    starts = chunk.column(f"{dim}_start")
    ends = chunk.column(f"{dim}_end")
    values = (
        None if value_column is None else chunk.column(value_column)
    )
    for i in range(len(chunk)):
        s = max(int(starts[i]), qlo)
        e = min(int(ends[i]), qhi)
        if s >= e:
            continue
        value = 1 if values is None else values[i]
        tree.add_record(s, e, value, qhi)
    return tree


def _traverse(tree, aggregate, until: int, drop_empty: bool):
    agg = get_aggregate(aggregate)
    rows: list[tuple[Interval, object]] = []
    acc = agg.identity()
    prev: int | None = None
    for ts, delta in tree.items():
        if prev is not None and ts > prev:
            if not (drop_empty and agg.count(acc) == 0):
                rows.append((Interval(prev, ts), agg.finalize(acc)))
        prev = ts
        acc = agg.apply(acc, delta)
    if prev is not None and not (drop_empty and agg.count(acc) == 0):
        rows.append((Interval(prev, until), agg.finalize(acc)))
    return rows


@dataclass(frozen=True)
class _BuildTreeTask:
    """Pass-1 task: build one partition's tree.

    Module-level and frozen so it pickles for the process backend
    (PT006); ``aggregate`` is carried as the caller's spec and resolved
    inside the worker by :func:`_build_tree`.
    """

    dim: str
    value_column: str | None
    aggregate: object
    predicate: Predicate | None
    query_interval: Interval | None
    balanced: bool

    def __call__(self, chunk: TableChunk):
        return _build_tree(
            chunk,
            self.dim,
            self.value_column,
            self.aggregate,
            self.predicate,
            self.query_interval,
            self.balanced,
        )


def aggregation_tree_aggregate(
    chunk: TableChunk,
    dim: str,
    value_column: str | None = None,
    aggregate="sum",
    predicate: Predicate | None = None,
    query_interval: Interval | None = None,
    balanced: bool = False,
    drop_empty: bool = False,
) -> list[tuple[Interval, object]]:
    """Sequential two-pass Aggregation Tree temporal aggregation."""
    tree = _build_tree(
        chunk, dim, value_column, aggregate, predicate, query_interval, balanced
    )
    until = FOREVER if query_interval is None else query_interval.end
    return _traverse(tree, aggregate, until, drop_empty)


def parallel_aggregation_tree(
    chunks: Sequence[TableChunk],
    dim: str,
    value_column: str | None = None,
    aggregate="sum",
    predicate: Predicate | None = None,
    query_interval: Interval | None = None,
    balanced: bool = True,
    drop_empty: bool = False,
    executor: Executor | None = None,
) -> list[tuple[Interval, object]]:
    """Gendrano-style parallel Aggregation Tree [9].

    Pass 1 (parallel): one tree per partition.  Merge (sequential): all
    boundary deltas of the per-partition trees are re-inserted into one
    master tree — the step that caps the speedup.  Pass 2 (sequential):
    ordered traversal.
    """
    executor = executor or SerialExecutor()
    agg = get_aggregate(aggregate)

    build = _BuildTreeTask(
        dim, value_column, aggregate, predicate, query_interval, balanced
    )
    trees = executor.map_parallel(build, chunks, label="aggtree.build")

    def merge_and_traverse():
        master = BalancedAggregationTree(agg) if balanced else AggregationTree(agg)
        for tree in trees:
            for ts, delta in tree.items():
                master.put(ts, delta)
        until = FOREVER if query_interval is None else query_interval.end
        return _traverse(master, agg, until, drop_empty)

    return executor.run_serial(merge_and_traverse, label="aggtree.merge")
