"""Aggregation Tree baselines.

Two tree-based temporal aggregation algorithms from the literature the
paper positions ParTime against:

* :class:`~repro.aggtree.kline.AggregationTree` — Kline & Snodgrass [16],
  the original two-pass algorithm.  Its tree is built in input order and
  is not balanced: "the Aggregation Tree is not necessarily balanced and
  can degenerate into a linked list.  In this case, the Aggregation Tree
  algorithm has quadratic complexity" (Section 2).  Feeding it
  chronologically ordered data (the common case for transaction time!)
  triggers exactly that degeneration.
* :class:`~repro.aggtree.balanced.BalancedAggregationTree` — Böhlen,
  Gamper & Jensen [3], which balances via AVL rotations and guarantees
  O(n log n).

Both are expressed over the same delta formulation ParTime uses (a node
per distinct boundary timestamp carrying the consolidated delta; the
original formulation stores interval contributions at inner nodes, which
is equivalent for incremental aggregates), so all engines share aggregate
semantics and can be cross-checked.

:func:`~repro.aggtree.algorithms.aggregation_tree_aggregate` runs the full
two-pass algorithm; :func:`~repro.aggtree.algorithms.parallel_aggregation_tree`
is the Gendrano-style parallel variant [9] whose merge phase limits its
scalability — the motivating negative result for ParTime.
"""

from repro.aggtree.kline import AggregationTree
from repro.aggtree.balanced import BalancedAggregationTree
from repro.aggtree.algorithms import (
    aggregation_tree_aggregate,
    parallel_aggregation_tree,
)

__all__ = [
    "AggregationTree",
    "BalancedAggregationTree",
    "aggregation_tree_aggregate",
    "parallel_aggregation_tree",
]
