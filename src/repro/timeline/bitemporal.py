"""The bi-temporal Timeline Index ([15], Kaufmann et al., ICDE 2015).

The plain Timeline Index "works particularly well for the transaction time
dimension ... which is naturally ordered.  However, the Timeline Index has
recently been amended to support the full bi-temporal data model"
(Section 2).  This module implements that amendment in its essential form:

* a transaction-time Timeline (event map + checkpoints) answers "which
  versions are visible at version t?" as a bitmap;
* a second, precomputed business-time event map — sorted by business time
  once, at build — is scanned with that bitmap as a row filter.

A business-time aggregation at a fixed version is then a checkpoint lookup
plus one filtered scan of the business-time event map: no sorting at query
time, which is what keeps the Timeline the query-speed lower bound for
query ta2 / TPC-BiH r2 as well.
"""

from __future__ import annotations

import numpy as np

from repro.core.window import WindowSpec
from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import Interval
from repro.timeline.index import TimelineIndex


class BitemporalTimelineIndex:
    """Timeline over transaction time + precomputed business-time events."""

    def __init__(
        self,
        table: TemporalTable,
        business_dim: str = "bt",
        transaction_dim: str = "tt",
        value_columns: tuple[str, ...] = (),
        checkpoint_every: int = 4096,
    ) -> None:
        self.business_dim = business_dim
        self.transaction_dim = transaction_dim
        self.tt_index = TimelineIndex(
            table, transaction_dim, value_columns, checkpoint_every
        )
        self.bt_index = TimelineIndex(
            table, business_dim, value_columns, checkpoint_every
        )

    def nbytes(self) -> int:
        return self.tt_index.nbytes() + self.bt_index.nbytes()

    def _mask_at_version(
        self, version: int, predicate_mask: np.ndarray | None
    ) -> np.ndarray:
        mask = self.tt_index.active_bitmap_at(version)
        if predicate_mask is not None:
            mask = mask & predicate_mask
        return mask

    def business_aggregation(
        self,
        version: int,
        value_column: str | None = None,
        aggregate="sum",
        query_interval: Interval | None = None,
        predicate_mask: np.ndarray | None = None,
        drop_empty: bool = False,
    ) -> list[tuple[Interval, object]]:
        """Temporal aggregation over business time, as of ``version``."""
        mask = self._mask_at_version(version, predicate_mask)
        return self.bt_index.temporal_aggregation(
            value_column,
            aggregate,
            query_interval=query_interval,
            predicate_mask=mask,
            drop_empty=drop_empty,
        )

    def business_windowed(
        self,
        version: int,
        window: WindowSpec,
        value_column: str | None = None,
        aggregate="sum",
        predicate_mask: np.ndarray | None = None,
    ) -> list[tuple[int, object]]:
        """Windowed business-time aggregation, as of ``version``."""
        mask = self._mask_at_version(version, predicate_mask)
        return self.bt_index.windowed_aggregation(
            window, value_column, aggregate, predicate_mask=mask
        )

    def value_at(
        self,
        version: int,
        business_ts: int,
        value_column: str | None = None,
        aggregate="sum",
        predicate_mask: np.ndarray | None = None,
    ):
        """Bi-temporal time travel: the aggregate at one (version, business
        time) point."""
        mask = self._mask_at_version(version, predicate_mask)
        return self.bt_index.aggregate_at(
            business_ts, value_column, aggregate, predicate_mask=mask
        )
