"""The Timeline Index wrapped as a benchmark engine.

Queries run on a single core — "temporal aggregation with the Timeline
Index does not allow for parallelization so that all response time
experiments with the Timeline Index were carried out with a single core"
(Section 5.1) — and their measured wall time *is* the simulated time.
Because everything is precomputed and sorted, that time is a single
vectorized scan: the lower bound the paper compares ParTime against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.faults.inject import FaultInjector, current_injector, make_injector
from repro.obs.tracer import record_phase
from repro.systems.base import Engine
from repro.simtime.executor import SerialExecutor
from repro.simtime.measure import Stopwatch, measured
from repro.temporal.predicates import Predicate
from repro.temporal.table import TemporalTable
from repro.timeline.cracking import AdaptiveTimelineIndex, RefinementWorker
from repro.timeline.index import TimelineIndex


@dataclass(frozen=True)
class _BuildIndexTask:
    """Build the Timeline Index of one time dimension (picklable task).

    Index construction is the one Timeline phase that parallelises — one
    independent build per time dimension — so it is the one phase an
    :class:`~repro.simtime.executor.Executor` may fan out.  Queries stay
    single-core per Section 5.1.
    """

    table: TemporalTable
    value_columns: tuple[str, ...]
    checkpoint_every: int

    def __call__(self, dim: str) -> TimelineIndex:
        return TimelineIndex(
            self.table, dim, self.value_columns, self.checkpoint_every
        )


@dataclass(frozen=True)
class _BuildAdaptiveTask:
    """Collect (not sort) one dimension's events — the adaptive load."""

    table: TemporalTable
    value_columns: tuple[str, ...]

    def __call__(self, dim: str) -> AdaptiveTimelineIndex:
        return AdaptiveTimelineIndex(self.table, dim, self.value_columns)


class TimelineEngine(Engine):
    """Engine facade over per-dimension Timeline Indexes."""

    name = "Timeline"

    def __init__(
        self,
        value_columns: tuple[str, ...] = (),
        checkpoint_every: int = 4096,
        executor=None,
        faults: "FaultInjector | int | str | None" = None,
        retry=None,
        adaptive: bool = False,
        refine: int = 0,
    ) -> None:
        self.value_columns = value_columns
        self.checkpoint_every = checkpoint_every
        #: Adaptive mode: bulkload collects events without sorting and
        #: each query cracks only the ranges it touches
        #: (docs/adaptive_indexing.md); ``refine`` background refinement
        #: steps run after every query (ParIS+-style ahead-of-query
        #: cracking of the coldest pending range).
        self.adaptive = bool(adaptive)
        self.refine = int(refine)
        #: Optional executor for the per-dimension index builds during
        #: bulkload; ``None`` builds them inline — unless a fault plan is
        #: given or adaptive mode is on (cracking books its phases into
        #: the executor's SimClock), either of which builds a serial one.
        self.faults = make_injector(faults, retry)
        if self.faults is None:
            # Ambient activation (``bench --faults``): engines built inside
            # a fault_injection() block join its plan automatically.
            self.faults = current_injector()
        if executor is None and (self.faults is not None or self.adaptive):
            executor = SerialExecutor(faults=self.faults)
        self.executor = executor
        if self.faults is None and executor is not None:
            self.faults = getattr(executor, "faults", None)
        self._table: TemporalTable | None = None
        self._indexes: dict[str, TimelineIndex] = {}
        self._refiners: dict[str, RefinementWorker] = {}
        self._mask_cache: dict = {}

    def bulkload(self, table: TemporalTable) -> float:
        """Build one Timeline Index per time dimension (measured)."""
        with measured() as sw:
            self._table = table
            self._mask_cache = {}
            dims = [dim.name for dim in table.schema.time_dimensions]
            if self.adaptive:
                build = _BuildAdaptiveTask(table, self.value_columns)
            else:
                build = _BuildIndexTask(
                    table, self.value_columns, self.checkpoint_every
                )
            if self.executor is None:
                indexes = [build(dim) for dim in dims]
            else:
                indexes = self.executor.map_parallel(
                    build, dims, label="timeline.build"
                )
            self._indexes = dict(zip(dims, indexes))
            if self.adaptive:
                self._refiners = {
                    dim: RefinementWorker(index, self.executor)
                    for dim, index in self._indexes.items()
                }
        return sw.elapsed

    def refine_step(self) -> bool:
        """One background refinement step: crack the coldest uncracked
        range of the dimension with the largest pending backlog.  Returns
        whether a piece was installed (``False`` once converged, or when
        the attempt gave up under faults — cleanly, no state changed)."""
        self._require_loaded()
        if not self.adaptive or not self._refiners:
            return False
        dim = max(
            self._refiners,
            key=lambda d: self._indexes[d].pending_events,
        )
        if self._indexes[dim].pending_events == 0:
            # No pending anywhere — steps now consolidate piece
            # catalogues (one dimension per call) until each is one
            # sorted run, i.e. the bulk-loaded index.
            return any(w.step() for w in self._refiners.values())
        return self._refiners[dim].step()

    def refresh(self) -> float:
        """Maintenance after table updates; returns measured seconds —
        the cost that makes the Timeline unviable for the Amadeus
        workload."""
        self._require_loaded()
        with measured() as sw:
            self._mask_cache = {}
            for index in self._indexes.values():
                index.refresh(self._table)
        return sw.elapsed

    def memory_bytes(self) -> int:
        self._require_loaded()
        index_bytes = sum(ix.nbytes() for ix in self._indexes.values())
        shared_columns = max(
            (ix.column_cache_nbytes() for ix in self._indexes.values()),
            default=0,
        )
        return self._table.memory_bytes() + index_bytes + shared_columns

    def _require_loaded(self) -> None:
        if self._table is None:
            raise RuntimeError("Timeline: bulkload a table first")

    def temporal_aggregation(
        self, query: TemporalAggregationQuery
    ) -> tuple[TemporalAggregationResult, float]:
        self._require_loaded()
        if query.is_multidim:
            raise NotImplementedError(
                "the Timeline Index answers one-dimensional temporal "
                "aggregation; multi-dimensional queries need ParTime"
            )
        dim = query.varied_dims[0]
        index = self._indexes[dim]
        agg = query.aggregate_fn
        sw = Stopwatch()
        # Predicates are memoised: a read-only Timeline deployment
        # materialises the row-id set of each recurring selection next to
        # the index, so steady-state queries touch only precomputed state.
        # The first occurrence of a predicate pays the scan.
        mask = None
        cache_key = None
        if query.predicate is not None:
            cache_key = query.predicate
            mask = self._mask_cache.get(cache_key)
            if mask is None:
                mask = query.predicate.mask(self._table.chunk())
                self._mask_cache[cache_key] = mask
        if query.is_windowed:
            if self.adaptive:
                points = index.windowed_aggregation(
                    query.window, query.value_column, agg, predicate_mask=mask
                )
            else:
                points = index.windowed_aggregation(
                    query.window,
                    query.value_column,
                    agg,
                    predicate_mask=mask,
                    cache_key=cache_key,
                )
            result = TemporalAggregationResult.from_points(
                dim, query.window.stride, points, aggregate_name=agg.name
            )
        elif self.adaptive:
            pairs = index.temporal_aggregation(
                query.value_column,
                agg,
                query_interval=query.interval_of(dim),
                predicate_mask=mask,
                drop_empty=query.drop_empty,
            )
            result = TemporalAggregationResult.from_pairs(
                dim, pairs, aggregate_name=agg.name
            )
        else:
            pairs = index.temporal_aggregation(
                query.value_column,
                agg,
                query_interval=query.interval_of(dim),
                predicate_mask=mask,
                drop_empty=query.drop_empty,
                cache_key=cache_key,
            )
            result = TemporalAggregationResult.from_pairs(
                dim, pairs, aggregate_name=agg.name
            )
        seconds = sw.lap()
        if self.adaptive:
            # Adaptive queries split their measured time into the cracking
            # they caused and the answer scan, both booked on the shared
            # SimClock — span trees and `span.sim_total() == clock.elapsed`
            # stay honest about where the index build really happened.
            crack = min(index.last_crack_seconds, seconds)
            clock = self.executor.clock
            if crack > 0.0:
                clock.serial(
                    "cracking.crack",
                    crack,
                    meta={"engine": self.name, "dim": dim},
                )
            clock.serial(
                "timeline.query",
                seconds - crack,
                meta={"engine": self.name, "dim": dim, "adaptive": True},
            )
            for _ in range(self.refine):
                if not self.refine_step():
                    break
        else:
            # The Timeline runs single-core, so its measured wall time *is*
            # the simulated time; mirror it to the tracer as one serial
            # phase so trace trees show the engine comparison on equal
            # footing.
            record_phase(
                "timeline.query",
                "serial",
                (seconds,),
                1,
                seconds,
                {"engine": self.name, "dim": dim},
            )
        return result, seconds

    def select(self, predicate: Predicate, indexed: bool = False) -> tuple[int, float]:
        """The Timeline Index does not serve general selections; fall back
        to a scan of the base table."""
        self._require_loaded()
        with measured() as sw:
            count = int(predicate.mask(self._table.chunk()).sum())
        return count, sw.elapsed
