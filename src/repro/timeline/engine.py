"""The Timeline Index wrapped as a benchmark engine.

Queries run on a single core — "temporal aggregation with the Timeline
Index does not allow for parallelization so that all response time
experiments with the Timeline Index were carried out with a single core"
(Section 5.1) — and their measured wall time *is* the simulated time.
Because everything is precomputed and sorted, that time is a single
vectorized scan: the lower bound the paper compares ParTime against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.faults.inject import FaultInjector, current_injector, make_injector
from repro.obs.tracer import record_phase
from repro.systems.base import Engine
from repro.simtime.executor import SerialExecutor
from repro.simtime.measure import Stopwatch, measured
from repro.temporal.predicates import Predicate
from repro.temporal.table import TemporalTable
from repro.timeline.index import TimelineIndex


@dataclass(frozen=True)
class _BuildIndexTask:
    """Build the Timeline Index of one time dimension (picklable task).

    Index construction is the one Timeline phase that parallelises — one
    independent build per time dimension — so it is the one phase an
    :class:`~repro.simtime.executor.Executor` may fan out.  Queries stay
    single-core per Section 5.1.
    """

    table: TemporalTable
    value_columns: tuple[str, ...]
    checkpoint_every: int

    def __call__(self, dim: str) -> TimelineIndex:
        return TimelineIndex(
            self.table, dim, self.value_columns, self.checkpoint_every
        )


class TimelineEngine(Engine):
    """Engine facade over per-dimension Timeline Indexes."""

    name = "Timeline"

    def __init__(
        self,
        value_columns: tuple[str, ...] = (),
        checkpoint_every: int = 4096,
        executor=None,
        faults: "FaultInjector | int | str | None" = None,
        retry=None,
    ) -> None:
        self.value_columns = value_columns
        self.checkpoint_every = checkpoint_every
        #: Optional executor for the per-dimension index builds during
        #: bulkload; ``None`` builds them inline — unless a fault plan is
        #: given, which needs an executor to retry through (a serial one
        #: is built).
        self.faults = make_injector(faults, retry)
        if self.faults is None:
            # Ambient activation (``bench --faults``): engines built inside
            # a fault_injection() block join its plan automatically.
            self.faults = current_injector()
        if executor is None and self.faults is not None:
            executor = SerialExecutor(faults=self.faults)
        self.executor = executor
        if self.faults is None and executor is not None:
            self.faults = getattr(executor, "faults", None)
        self._table: TemporalTable | None = None
        self._indexes: dict[str, TimelineIndex] = {}
        self._mask_cache: dict = {}

    def bulkload(self, table: TemporalTable) -> float:
        """Build one Timeline Index per time dimension (measured)."""
        with measured() as sw:
            self._table = table
            self._mask_cache = {}
            dims = [dim.name for dim in table.schema.time_dimensions]
            build = _BuildIndexTask(
                table, self.value_columns, self.checkpoint_every
            )
            if self.executor is None:
                indexes = [build(dim) for dim in dims]
            else:
                indexes = self.executor.map_parallel(
                    build, dims, label="timeline.build"
                )
            self._indexes = dict(zip(dims, indexes))
        return sw.elapsed

    def refresh(self) -> float:
        """Maintenance after table updates; returns measured seconds —
        the cost that makes the Timeline unviable for the Amadeus
        workload."""
        self._require_loaded()
        with measured() as sw:
            self._mask_cache = {}
            for index in self._indexes.values():
                index.refresh(self._table)
        return sw.elapsed

    def memory_bytes(self) -> int:
        self._require_loaded()
        index_bytes = sum(ix.nbytes() for ix in self._indexes.values())
        shared_columns = max(
            (ix.column_cache_nbytes() for ix in self._indexes.values()),
            default=0,
        )
        return self._table.memory_bytes() + index_bytes + shared_columns

    def _require_loaded(self) -> None:
        if self._table is None:
            raise RuntimeError("Timeline: bulkload a table first")

    def temporal_aggregation(
        self, query: TemporalAggregationQuery
    ) -> tuple[TemporalAggregationResult, float]:
        self._require_loaded()
        if query.is_multidim:
            raise NotImplementedError(
                "the Timeline Index answers one-dimensional temporal "
                "aggregation; multi-dimensional queries need ParTime"
            )
        dim = query.varied_dims[0]
        index = self._indexes[dim]
        agg = query.aggregate_fn
        sw = Stopwatch()
        # Predicates are memoised: a read-only Timeline deployment
        # materialises the row-id set of each recurring selection next to
        # the index, so steady-state queries touch only precomputed state.
        # The first occurrence of a predicate pays the scan.
        mask = None
        cache_key = None
        if query.predicate is not None:
            cache_key = query.predicate
            mask = self._mask_cache.get(cache_key)
            if mask is None:
                mask = query.predicate.mask(self._table.chunk())
                self._mask_cache[cache_key] = mask
        if query.is_windowed:
            points = index.windowed_aggregation(
                query.window,
                query.value_column,
                agg,
                predicate_mask=mask,
                cache_key=cache_key,
            )
            result = TemporalAggregationResult.from_points(
                dim, query.window.stride, points, aggregate_name=agg.name
            )
        else:
            pairs = index.temporal_aggregation(
                query.value_column,
                agg,
                query_interval=query.interval_of(dim),
                predicate_mask=mask,
                drop_empty=query.drop_empty,
                cache_key=cache_key,
            )
            result = TemporalAggregationResult.from_pairs(
                dim, pairs, aggregate_name=agg.name
            )
        seconds = sw.lap()
        # The Timeline runs single-core, so its measured wall time *is* the
        # simulated time; mirror it to the tracer as one serial phase so
        # trace trees show the engine comparison on equal footing.
        record_phase(
            "timeline.query",
            "serial",
            (seconds,),
            1,
            seconds,
            {"engine": self.name, "dim": dim},
        )
        return result, seconds

    def select(self, predicate: Predicate, indexed: bool = False) -> tuple[int, float]:
        """The Timeline Index does not serve general selections; fall back
        to a scan of the base table."""
        self._require_loaded()
        with measured() as sw:
            count = int(predicate.mask(self._table.chunk()).sum())
        return count, sw.elapsed
