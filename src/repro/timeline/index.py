"""The Timeline Index over one time dimension.

Queries are single scans over precomputed sorted state:

* full temporal aggregation — one vectorized cumulative sum over the event
  map (this is why the Timeline Index is the paper's lower bound);
* range-restricted aggregation — resume from the latest checkpoint before
  the range, replay the few events in between, then scan the range;
* time-travel aggregation — checkpoint + replay, no scan of the table;
* windowed aggregation — searchsorted into the cumulative sums.

Maintenance (:meth:`TimelineIndex.refresh`) shows the flip side: every
refresh must discover closed versions with a full scan of the end
timestamps, append events and extend checkpoints — cheap per batch for
transaction time, but a full re-sort for business time.  This asymmetry is
the "prohibitively expensive to maintain" cost the paper cites against
materialisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.aggregates import get_aggregate
from repro.simtime.measure import Stopwatch
from repro.core.step2 import finalize_arrays
from repro.core.window import WindowSpec
from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import FOREVER, Interval, MIN_TIME
from repro.timeline.checkpoints import CheckpointSet
from repro.timeline.eventmap import EventMap


@dataclass
class RefreshStats:
    """What one maintenance pass did."""

    new_rows: int
    closed_rows: int
    events_appended: int
    resorted: bool
    seconds: float


class TimelineIndex:
    """A Timeline Index on ``dim`` with running-sum checkpoints.

    ``value_columns`` lists the columns for which checkpoints cache running
    sums (i.e. the columns the index can aggregate incrementally).
    """

    def __init__(
        self,
        table: TemporalTable,
        dim: str = "tt",
        value_columns: tuple[str, ...] = (),
        checkpoint_every: int = 4096,
    ) -> None:
        self.dim = dim
        self.checkpoint_every = checkpoint_every
        self.value_column_names = tuple(value_columns)
        self._indexed_rows = len(table)
        self._columns = {
            name: table.column(name).astype(np.float64).copy()
            for name in value_columns
        }
        self._ends_snapshot = table.column(f"{dim}_end").copy()
        self.events = EventMap.build(table, dim)
        self.checkpoints = CheckpointSet.build(
            self.events, self._indexed_rows, self._columns, every=checkpoint_every
        )
        self._precompute_event_deltas()

    def _precompute_event_deltas(self) -> None:
        """Materialise per-event delta arrays, aligned with the event map.

        This is the essence of the Timeline Index being a *materialised*
        structure: at query time an aggregation touches only these
        precomputed, already-sorted arrays — no per-event value lookups,
        no sorting."""
        signs = self.events.signs.astype(np.int64)
        self._evt_cnts = signs
        rows = self.events.rows
        self._evt_vals = {
            name: column[rows] * signs
            for name, column in self._columns.items()
        }
        # Per-predicate materialised event streams (see _event_values).
        self._filter_cache: dict = {}

    # --------------------------------------------------------------- sizes

    def nbytes(self) -> int:
        """Index storage: events + checkpoints.  The cached value columns
        are shared across the per-dimension indexes of a table and are
        accounted once by :class:`~repro.timeline.engine.TimelineEngine`
        (Table 3's ~30% overhead over the raw table)."""
        return self.events.nbytes() + self.checkpoints.nbytes()

    def column_cache_nbytes(self) -> int:
        """Size of the cached value columns (shared across indexes)."""
        return sum(arr.nbytes for arr in self._columns.values())

    @property
    def num_rows(self) -> int:
        return self._indexed_rows

    # ------------------------------------------------------------- queries

    def _event_values(
        self,
        value_column: str | None,
        mask: np.ndarray | None,
        cache_key=None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(timestamps, value deltas, count deltas) of the (filtered)
        event stream — precomputed arrays, optionally row-filtered.

        ``cache_key`` (typically the query's predicate, a frozen hashable
        object) memoises the filtered stream: a read-only Timeline
        deployment materialises the row-id set of each recurring selection
        alongside the index, so only the first occurrence of a predicate
        pays the filter.  Maintenance (:meth:`refresh`) invalidates the
        cache.
        """
        if cache_key is not None:
            cached = self._filter_cache.get((value_column, cache_key))
            if cached is not None:
                return cached
        ts = self.events.timestamps
        cnts = self._evt_cnts
        if value_column is None:
            vals = cnts
        else:
            try:
                vals = self._evt_vals[value_column]
            except KeyError:
                raise KeyError(
                    f"column {value_column!r} is not indexed by this "
                    "Timeline Index; register it in value_columns"
                ) from None
        if mask is not None:
            keep = mask[self.events.rows]
            ts, vals, cnts = ts[keep], vals[keep], cnts[keep]
        if cache_key is not None:
            self._filter_cache[(value_column, cache_key)] = (ts, vals, cnts)
        return ts, vals, cnts

    def temporal_aggregation(
        self,
        value_column: str | None = None,
        aggregate="sum",
        query_interval: Interval | None = None,
        predicate_mask: np.ndarray | None = None,
        drop_empty: bool = False,
        coalesce: bool = True,
        cache_key=None,
    ) -> list[tuple[Interval, object]]:
        """Temporal aggregation by one scan of the event map.

        ``predicate_mask`` optionally restricts the rows considered (the
        per-query selection of e.g. TPC-BiH r1: "customers moved to US").
        Incremental aggregates run fully vectorized; MIN/MAX/MEDIAN replay
        the event stream through an order-statistics multiset.
        """
        agg = get_aggregate(aggregate)
        qlo = MIN_TIME if query_interval is None else query_interval.start
        qhi = FOREVER if query_interval is None else query_interval.end
        ts, vals, cnts = self._event_values(value_column, predicate_mask, cache_key)
        if not agg.incremental:
            return self._nonincremental_aggregation(
                value_column, agg, qlo, qhi, predicate_mask, drop_empty, coalesce
            )

        # The event stream is already sorted: the query range is two
        # binary searches, everything before it folds into the initial
        # accumulator, and same-timestamp consolidation is a segmented
        # reduce — no sorting at query time, the defining advantage of the
        # precomputed index.
        i0 = int(np.searchsorted(ts, qlo, side="left"))
        i1 = int(np.searchsorted(ts, qhi, side="left"))
        init_val = float(vals[:i0].sum())
        init_cnt = int(cnts[:i0].sum())
        keys, val_d, cnt_d = kernels.consolidate_additive(
            ts[i0:i1], vals[i0:i1], cnts[i0:i1]
        )
        run_vals, run_cnts = kernels.running_totals(val_d, cnt_d)
        run_vals = init_val + run_vals
        run_cnts = init_cnt + run_cnts
        finals = finalize_arrays(agg, run_vals, run_cnts)

        rows: list[tuple[Interval, object]] = []
        keys_list = keys.tolist()
        cnts_list = run_cnts.tolist()
        if qlo > MIN_TIME and init_cnt > 0:
            first_end = keys_list[0] if keys_list else qhi
            if qlo < first_end:
                rows.append(
                    (Interval(qlo, first_end), agg.finalize((init_val, init_cnt)))
                )
        last = len(keys_list) - 1
        for i, lo in enumerate(keys_list):
            hi = keys_list[i + 1] if i < last else qhi
            if lo >= hi or (drop_empty and cnts_list[i] == 0):
                continue
            value = finals[i]
            if coalesce and rows and rows[-1][0].end == lo and rows[-1][1] == value:
                rows[-1] = (Interval(rows[-1][0].start, hi), value)
            else:
                rows.append((Interval(lo, hi), value))
        return rows

    def _nonincremental_aggregation(
        self, value_column, agg, qlo, qhi, predicate_mask, drop_empty, coalesce
    ) -> list[tuple[Interval, object]]:
        ts = self.events.timestamps
        rows_arr = self.events.rows
        signs = self.events.signs
        acc = agg.identity()
        rows: list[tuple[Interval, object]] = []
        prev: int | None = None
        count = 0

        def value_of(row: int):
            if value_column is None:
                return 1
            return self._columns[value_column][row]

        def emit(lo, hi) -> None:
            if lo >= hi or (drop_empty and count == 0):
                return
            value = agg.finalize(acc)
            if coalesce and rows and rows[-1][0].end == lo and rows[-1][1] == value:
                rows[-1] = (Interval(rows[-1][0].start, hi), value)
            else:
                rows.append((Interval(lo, hi), value))

        for i in range(len(ts)):
            if predicate_mask is not None and not predicate_mask[rows_arr[i]]:
                continue
            t = int(ts[i])
            if t >= qhi:
                break
            cursor = max(t, qlo)
            if prev is not None and cursor > prev:
                emit(prev, cursor)
            if prev is None or cursor > prev:
                prev = cursor
            acc = agg.apply(acc, agg.make_delta(value_of(int(rows_arr[i])), int(signs[i])))
            count = agg.count(acc)
        if prev is not None:
            emit(prev, qhi)
        return rows

    def aggregate_at(
        self,
        ts: int,
        value_column: str | None = None,
        aggregate="sum",
        predicate_mask: np.ndarray | None = None,
    ):
        """Time-travel aggregation: the value at one point, via the latest
        checkpoint plus a short replay — constant-ish time, the paper's
        "linear or even constant complexity"."""
        agg = get_aggregate(aggregate)
        if (
            agg.incremental
            and predicate_mask is None
            and (value_column in self._columns or value_column is None)
        ):
            cp = self.checkpoints.latest_before(ts + 1)
            pos = cp.event_position if cp else 0
            run_val = cp.running.get(value_column, float(cp.active_count)) if cp else 0.0
            if cp and value_column is None:
                run_val = float(cp.active_count)
            run_cnt = cp.active_count if cp else 0
            ev_ts = self.events.timestamps
            while pos < len(ev_ts) and ev_ts[pos] <= ts:
                row = int(self.events.rows[pos])
                sign = int(self.events.signs[pos])
                run_val += sign * (
                    1.0 if value_column is None else self._columns[value_column][row]
                )
                run_cnt += sign
                pos += 1
            return agg.finalize((run_val, run_cnt))
        rows = self.temporal_aggregation(
            value_column,
            aggregate,
            query_interval=Interval(MIN_TIME, ts + 1),
            predicate_mask=predicate_mask,
            drop_empty=False,
        )
        for iv, value in reversed(rows):
            if iv.contains(ts):
                return value
        return None

    def windowed_aggregation(
        self,
        window: WindowSpec,
        value_column: str | None = None,
        aggregate="sum",
        predicate_mask: np.ndarray | None = None,
        cache_key=None,
    ) -> list[tuple[int, object]]:
        """Windowed aggregation: cumulative sums + searchsorted."""
        agg = get_aggregate(aggregate)
        if not agg.incremental:
            return [
                (int(p), self.aggregate_at(int(p), value_column, aggregate,
                                           predicate_mask))
                for p in window.points()
            ]
        ts, vals, cnts = self._event_values(value_column, predicate_mask, cache_key)
        run_vals = np.cumsum(vals)
        run_cnts = np.cumsum(cnts).astype(np.int64)
        points = window.points()
        idx = np.searchsorted(ts, points, side="right") - 1
        out: list[tuple[int, object]] = []
        for p, i in zip(points, idx):
            if i < 0:
                out.append((int(p), agg.finalize(agg.identity())))
            else:
                out.append(
                    (int(p), agg.finalize((run_vals[i].item(), int(run_cnts[i]))))
                )
        return out

    def active_bitmap_at(self, ts: int) -> np.ndarray:
        """Bitmap of rows visible at ``ts``: latest checkpoint bitmap plus
        a short replay of the events in between."""
        cp = self.checkpoints.latest_before(ts + 1)
        if cp is None:
            bitmap = np.zeros(self._indexed_rows, dtype=bool)
            pos = 0
        else:
            bitmap = cp.bitmap.copy()
            if len(bitmap) < self._indexed_rows:
                bitmap = np.concatenate(
                    [bitmap, np.zeros(self._indexed_rows - len(bitmap), dtype=bool)]
                )
            pos = cp.event_position
        ev_ts = self.events.timestamps
        while pos < len(ev_ts) and ev_ts[pos] <= ts:
            bitmap[int(self.events.rows[pos])] = self.events.signs[pos] > 0
            pos += 1
        return bitmap

    # --------------------------------------------------------- maintenance

    def refresh(self, table: TemporalTable) -> RefreshStats:
        """Bring the index up to date with ``table``.

        Detects versions closed since the last build (a full scan of the
        end-timestamp column — there is no cheaper way for a materialised
        structure), appends their ``-1`` events and the events of new rows,
        and rebuilds the checkpoint tail.  If any appended event lands
        before the current tail (business-time dimensions), the whole event
        map is re-sorted and all checkpoints rebuilt — the expensive path.
        """
        sw = Stopwatch()
        dim = self.dim
        n_new = len(table) - self._indexed_rows
        starts = table.column(f"{dim}_start")
        ends = table.column(f"{dim}_end")

        old = slice(0, self._indexed_rows)
        closed = (self._ends_snapshot < FOREVER) ^ (ends[old] < FOREVER)
        closed_rows = np.nonzero(closed)[0]

        app_ts: list[np.ndarray] = []
        app_rows: list[np.ndarray] = []
        app_signs: list[np.ndarray] = []
        if len(closed_rows):
            app_ts.append(ends[closed_rows])
            app_rows.append(closed_rows.astype(np.int64))
            app_signs.append(-np.ones(len(closed_rows), dtype=np.int8))
        if n_new > 0:
            new_ids = np.arange(self._indexed_rows, len(table), dtype=np.int64)
            app_ts.append(starts[new_ids])
            app_rows.append(new_ids)
            app_signs.append(np.ones(n_new, dtype=np.int8))
            finite = ends[new_ids] < FOREVER
            app_ts.append(ends[new_ids][finite])
            app_rows.append(new_ids[finite])
            app_signs.append(-np.ones(int(finite.sum()), dtype=np.int8))

        appended = 0
        resorted = False
        if app_ts:
            ts = np.concatenate(app_ts)
            rows = np.concatenate(app_rows)
            signs = np.concatenate(app_signs)
            appended = len(ts)
            resorted = bool(
                len(self.events) and len(ts) and ts.min() < self.events.timestamps[-1]
            )
            self.events = self.events.append_events(ts, rows, signs)

        # Refresh cached state and rebuild checkpoints (full rebuild when
        # resorted; tail rebuild otherwise — modelled as full rebuild here,
        # which is what [13]'s bulk-oriented implementation does too).
        self._indexed_rows = len(table)
        for name in self.value_column_names:
            self._columns[name] = table.column(name).astype(np.float64).copy()
        self._ends_snapshot = ends.copy()
        self._precompute_event_deltas()
        self.checkpoints = CheckpointSet.build(
            self.events, self._indexed_rows, self._columns,
            every=self.checkpoint_every,
        )
        return RefreshStats(
            new_rows=max(0, n_new),
            closed_rows=int(len(closed_rows)),
            events_appended=appended,
            resorted=resorted,
            seconds=sw.lap(),
        )
