"""The event map: a sorted list of version-visibility events.

For one time dimension of a table, the event map holds one ``+1`` event at
every version's validity start and one ``-1`` event at every finite
validity end, sorted by timestamp.  It is stored as three parallel NumPy
arrays (timestamp, row id, sign) — the "highly compressed sorted list" of
the paper — so scans over it are single vectorized passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import FOREVER


@dataclass
class EventMap:
    """Sorted visibility events of one time dimension."""

    timestamps: np.ndarray  # int64, ascending
    rows: np.ndarray  # int64 row ids
    signs: np.ndarray  # int8, +1 / -1

    @classmethod
    def build(cls, table: TemporalTable, dim: str) -> "EventMap":
        """Construct the event map from a table (one sort — the dominant
        cost of building a Timeline Index)."""
        starts = table.column(f"{dim}_start")
        ends = table.column(f"{dim}_end")
        n = len(starts)
        row_ids = np.arange(n, dtype=np.int64)
        finite = ends < FOREVER
        ts = np.concatenate([starts, ends[finite]])
        rows = np.concatenate([row_ids, row_ids[finite]])
        signs = np.concatenate(
            [np.ones(n, dtype=np.int8), -np.ones(int(finite.sum()), dtype=np.int8)]
        )
        return cls(*kernels.sort_events(ts, rows, signs))

    def __len__(self) -> int:
        return len(self.timestamps)

    def append_events(
        self, timestamps: np.ndarray, rows: np.ndarray, signs: np.ndarray
    ) -> "EventMap":
        """Maintenance: append new events (must not precede the tail).

        Transaction-time events arrive in commit order, so appending keeps
        the map sorted; business-time events generally do *not*, which is
        one reason maintaining a business-time Timeline under updates is
        expensive — in that case the arrays must be re-sorted.
        """
        ts = np.concatenate([self.timestamps, timestamps])
        rw = np.concatenate([self.rows, rows])
        sg = np.concatenate([self.signs, signs])
        if len(timestamps) and len(self.timestamps) and timestamps.min() < self.timestamps[-1]:
            ts, rw, sg = kernels.sort_events(ts, rw, sg)
        return EventMap(ts, rw, sg)

    def position_of(self, ts: int) -> int:
        """Index of the first event with timestamp >= ``ts``."""
        return int(np.searchsorted(self.timestamps, ts, side="left"))

    def active_rows_at(self, ts: int, num_rows: int) -> np.ndarray:
        """Bitmap of rows visible *at* ``ts`` (events with timestamp <= ts
        applied), computed from scratch — what checkpoint construction
        does."""
        upto = int(np.searchsorted(self.timestamps, ts, side="right"))
        counts = np.zeros(num_rows, dtype=np.int32)
        np.add.at(counts, self.rows[:upto], self.signs[:upto])
        return counts > 0

    def nbytes(self) -> int:
        """Size of the event map in its *compressed* storage format.

        The paper calls the event map "a pre-computed sorted list of
        points in time ... highly compressed": row ids fit in 32 bits,
        signs in one bit each, and timestamps are stored once per distinct
        timestamp (events are grouped by version).  The in-memory NumPy
        arrays here are wider for vectorization convenience; the size
        report reflects the storage format.
        """
        n = len(self.timestamps)
        if n == 0:
            return 0
        distinct = len(kernels.segment_starts(self.timestamps))
        return distinct * 8 + n * 4 + (n + 7) // 8
