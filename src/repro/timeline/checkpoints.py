"""Checkpoints: materialised active-row bitmaps at selected timestamps.

"The Timeline Index features checkpoints, which materialize a bitmap with
all active records for a specific point in time: This way, the scans can
start at the appropriate checkpoint, rather than scanning through the
whole event map from the very beginning."  (Section 2.)

Alongside the bitmap, each checkpoint caches the running SUM/COUNT of any
value columns registered at build time, so incremental aggregation can
resume from the checkpoint without touching the bitmap at all.  Rebuilding
checkpoints is the expensive part of index maintenance — the cost the
paper calls "prohibitively expensive ... with every update".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import metrics
from repro.timeline.eventmap import EventMap


@dataclass
class Checkpoint:
    """State of the index at one timestamp."""

    ts: int
    event_position: int  # events[:position] are applied
    bitmap: np.ndarray  # bool, active rows
    running: dict[str, float] = field(default_factory=dict)  # column -> sum
    active_count: int = 0

    def nbytes(self) -> int:
        """Checkpoint size with the bitmap packed to one bit per row
        (the bool-per-row NumPy array is a vectorization convenience)."""
        return (len(self.bitmap) + 7) // 8 + 8 * (2 + len(self.running))


@dataclass
class CheckpointSet:
    """Evenly spaced checkpoints over an event map."""

    checkpoints: list[Checkpoint]

    @classmethod
    def build(
        cls,
        events: EventMap,
        num_rows: int,
        value_columns: dict[str, np.ndarray],
        every: int = 4096,
    ) -> "CheckpointSet":
        """One checkpoint per ``every`` events, each carrying the bitmap
        and running sums at that position."""
        checkpoints: list[Checkpoint] = []
        counts = np.zeros(num_rows, dtype=np.int32)
        running = {name: 0.0 for name in value_columns}
        active = 0
        n = len(events)
        pos = 0
        while pos < n:
            nxt = min(pos + every, n)
            # Advance to a timestamp boundary so a checkpoint never splits
            # the events of a single timestamp.
            while nxt < n and events.timestamps[nxt] == events.timestamps[nxt - 1]:
                nxt += 1
            seg_rows = events.rows[pos:nxt]
            seg_signs = events.signs[pos:nxt].astype(np.int64)
            np.add.at(counts, seg_rows, seg_signs)
            active += int(seg_signs.sum())
            for name, column in value_columns.items():
                running[name] += float((column[seg_rows] * seg_signs).sum())
            checkpoints.append(
                Checkpoint(
                    ts=int(events.timestamps[nxt - 1]),
                    event_position=nxt,
                    bitmap=counts > 0,
                    running=dict(running),
                    active_count=active,
                )
            )
            pos = nxt
        return cls(checkpoints)

    def __len__(self) -> int:
        return len(self.checkpoints)

    def latest_before(self, ts: int) -> Checkpoint | None:
        """The most recent checkpoint with ``checkpoint.ts < ts``."""
        best: Checkpoint | None = None
        for cp in self.checkpoints:
            if cp.ts < ts:
                best = cp
            else:
                break
        if best is not None:
            metrics().counter("timeline.checkpoint_hits").add(1)
        return best

    def nbytes(self) -> int:
        return sum(cp.nbytes() for cp in self.checkpoints)
