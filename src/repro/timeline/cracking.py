"""Adaptive Timeline Index cracking: the index as a side effect of queries.

The bulk-loaded :class:`~repro.timeline.index.TimelineIndex` pays its
dominant cost — one stable sort of the whole event stream — before the
first query runs.  Database cracking (Idreos et al.; *Main Memory
Adaptive Indexing for Multi-core Systems*) inverts that: the first scan
answers the query from raw data and, on the way, partitions the data at
the query bounds, so each query refines exactly the ranges it touches
and the index converges to the bulk-loaded one under real traffic.

This module maps that idea onto the event-map timestamp axis:

* load is O(n) — the +1/-1 visibility events are *collected* but not
  sorted (:meth:`AdaptiveTimelineIndex.load`);
* a query ``[qlo, qhi)`` extracts the still-unsorted events inside any
  uncovered part of its range, sorts only those (the PR 8 columnar
  kernels), and installs them as :class:`CrackPiece` entries — the piece
  catalogue is the cracked/uncracked frontier, the adaptive analogue of
  the hybrid index's freeze boundary;
* everything before ``qlo`` folds into the initial accumulator without
  sorting (additive aggregates are order-independent up to float
  rounding), so an uncracked prefix costs one vectorized sum, not a sort;
* a ParIS+-style :class:`RefinementWorker` cracks the *coldest* uncracked
  range ahead of queries on a real executor backend, booked into the
  :class:`~repro.simtime.clock.SimClock` as ``cracking.refine`` phases.

Correctness invariant (the basis of the convergence test): pieces are
extracted from the pending pool with order-preserving boolean masks and
stable-sorted individually, so stable-sorting disjoint timestamp
partitions equals stable-sorting the whole stream — once the full span
is cracked, the concatenated piece arrays are *bit-identical* to
``EventMap.build``'s arrays.  Query results can differ from the bulk
index only by float reassociation in the prefix fold (<= 1e-9 relative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.aggregates import get_aggregate
from repro.core.step2 import finalize_arrays
from repro.core.window import WindowSpec
from repro.obs.metrics import metrics
from repro.simtime.measure import Stopwatch
from repro.temporal.table import TemporalTable
from repro.temporal.timestamps import FOREVER, Interval, MIN_TIME


@dataclass
class CrackPiece:
    """One cracked range ``[lo, hi)``: its events, stable-sorted.

    A piece may be empty (a cracked range that happened to contain no
    events) — emptiness is information: queries over it are answered
    from the catalogue without touching the pending pool.

    Like the bulk index's precomputed delta arrays, a piece lazily
    caches its count deltas (``signs`` widened to int64) and per-column
    value deltas, so steady-state queries cost a searchsorted + slice —
    not a fresh gather-and-multiply.  :meth:`invalidate` drops the
    caches when :meth:`AdaptiveTimelineIndex.refresh` rewrites the
    piece's events.
    """

    lo: int
    hi: int
    timestamps: np.ndarray  # int64, ascending (stable order within ties)
    rows: np.ndarray  # int64 row ids
    signs: np.ndarray  # int8, +1 / -1

    def __post_init__(self) -> None:
        self._cnts: np.ndarray | None = None
        self._vals: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.timestamps)

    def invalidate(self) -> None:
        self._cnts = None
        self._vals = {}

    def count_deltas(self) -> np.ndarray:
        if self._cnts is None:
            self._cnts = self.signs.astype(np.int64)
        return self._cnts

    def value_deltas(self, name: str, column: np.ndarray) -> np.ndarray:
        cached = self._vals.get(name)
        if cached is None:
            cached = column[self.rows] * self.count_deltas()
            self._vals[name] = cached
        return cached

    def nbytes(self) -> int:
        cached = sum(v.nbytes for v in self._vals.values())
        if self._cnts is not None:
            cached += self._cnts.nbytes
        return (
            self.timestamps.nbytes
            + self.rows.nbytes
            + self.signs.nbytes
            + cached
        )


def refine_sort(payload):
    """Sort one pending extract — the refinement task body.

    Module-level (picklable) so the :class:`RefinementWorker` can ship it
    to a real process backend; the parent installs the result only after
    the executor reports success, which is what makes a ``worker_kill``
    landing mid-refinement safe: the killed attempt's work is discarded
    wholesale and the piece is re-sorted on retry, never half-cracked.
    """
    timestamps, rows, signs = payload
    return kernels.sort_events(timestamps, rows, signs)


class AdaptiveTimelineIndex:
    """An incrementally-cracked Timeline Index on one time dimension.

    The same query surface as :class:`~repro.timeline.index.TimelineIndex`
    for the *columnar* aggregates (SUM / COUNT / AVG — the ones the
    additive kernels compute exactly); MIN/MAX/MEDIAN need the bulk
    index's multiset replay and are not served here.
    """

    def __init__(
        self,
        table: TemporalTable,
        dim: str = "tt",
        value_columns: tuple[str, ...] = (),
    ) -> None:
        self.dim = dim
        self.value_column_names = tuple(value_columns)
        self.pieces: list[CrackPiece] = []
        #: Stopwatch seconds the most recent query spent cracking (the
        #: engine books them as a ``cracking.crack`` phase, separate from
        #: the answer scan).
        self.last_crack_seconds = 0.0
        #: Whether the most recent query's range was already fully
        #: covered by pieces when it arrived (an index-only answer).
        self.last_from_index = False
        self.load(table)

    # ------------------------------------------------------------- loading

    def load(self, table: TemporalTable) -> None:
        """Collect the visibility events *without* sorting them — O(n)
        concatenation, the cheap load cracking buys its head start with."""
        self._indexed_rows = len(table)
        self._columns = {
            name: table.column(name).astype(np.float64).copy()
            for name in self.value_column_names
        }
        starts = table.column(f"{self.dim}_start")
        ends = table.column(f"{self.dim}_end")
        self._ends_snapshot = ends.copy()
        n = len(starts)
        row_ids = np.arange(n, dtype=np.int64)
        finite = ends < FOREVER
        self._pending_ts = np.concatenate([starts, ends[finite]])
        self._pending_rows = np.concatenate([row_ids, row_ids[finite]])
        self._pending_signs = np.concatenate(
            [np.ones(n, dtype=np.int8),
             -np.ones(int(finite.sum()), dtype=np.int8)]
        )
        self.pieces = []

    # --------------------------------------------------------------- sizes

    def nbytes(self) -> int:
        """Index storage: cracked pieces plus the pending pool."""
        pending = (
            self._pending_ts.nbytes
            + self._pending_rows.nbytes
            + self._pending_signs.nbytes
        )
        return pending + sum(p.nbytes() for p in self.pieces)

    def column_cache_nbytes(self) -> int:
        return sum(arr.nbytes for arr in self._columns.values())

    @property
    def num_rows(self) -> int:
        return self._indexed_rows

    @property
    def pending_events(self) -> int:
        return len(self._pending_ts)

    @property
    def cracked_events(self) -> int:
        return sum(len(p) for p in self.pieces)

    # ------------------------------------------------------- the frontier

    def covers(self, qlo: int, qhi: int) -> bool:
        """Whether ``[qlo, qhi)`` lies entirely inside cracked pieces."""
        return not self._holes(qlo, qhi)

    def _holes(self, qlo: int, qhi: int) -> list[tuple[int, int]]:
        """The uncracked sub-ranges of ``[qlo, qhi)``, in order."""
        holes: list[tuple[int, int]] = []
        cursor = qlo
        for piece in self.pieces:
            if piece.hi <= cursor:
                continue
            if piece.lo >= qhi:
                break
            if piece.lo > cursor:
                holes.append((cursor, min(piece.lo, qhi)))
            cursor = piece.hi
            if cursor >= qhi:
                break
        if cursor < qhi:
            holes.append((cursor, qhi))
        return holes

    def _pending_range_mask(self, lo: int, hi: int) -> np.ndarray:
        return (self._pending_ts >= lo) & (self._pending_ts < hi)

    def extract_pending(
        self, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The pending events inside ``[lo, hi)``, in stream order
        (copies — the pool is not mutated; see :meth:`install_piece`)."""
        mask = self._pending_range_mask(lo, hi)
        return (
            self._pending_ts[mask],
            self._pending_rows[mask],
            self._pending_signs[mask],
        )

    def install_piece(
        self,
        lo: int,
        hi: int,
        timestamps: np.ndarray,
        rows: np.ndarray,
        signs: np.ndarray,
    ) -> CrackPiece:
        """Install a sorted extract as a new piece and drop its events
        from the pending pool — the *only* mutation of the frontier, and
        it happens after the sort succeeded (crash-safe by construction)."""
        keep = ~self._pending_range_mask(lo, hi)
        self._pending_ts = self._pending_ts[keep]
        self._pending_rows = self._pending_rows[keep]
        self._pending_signs = self._pending_signs[keep]
        piece = CrackPiece(int(lo), int(hi), timestamps, rows, signs)
        self.pieces.append(piece)
        self.pieces.sort(key=lambda p: p.lo)
        metrics().gauge(f"cracking.pieces{{dim={self.dim}}}").set(
            float(len(self.pieces))
        )
        return piece

    def ensure_range(self, qlo: int, qhi: int) -> int:
        """Crack every uncracked sub-range of ``[qlo, qhi)``.

        Returns the number of new pieces.  Sets
        :attr:`last_crack_seconds` / :attr:`last_from_index` for the
        engine's phase accounting.
        """
        sw = Stopwatch()
        holes = self._holes(qlo, qhi)
        self.last_from_index = not holes
        for lo, hi in holes:
            extract = self.extract_pending(lo, hi)
            self.install_piece(lo, hi, *kernels.sort_events(*extract))
        if holes:
            metrics().counter("cracking.cracks").add(len(holes))
        # An index-only answer did no cracking: report zero, not the
        # epsilon the stopwatch measured for the hole check, so the
        # engine books a ``cracking.crack`` phase only when one happened.
        self.last_crack_seconds = sw.lap() if holes else 0.0
        return len(holes)

    def merge_adjacent(self) -> int:
        """Consolidate neighbouring pieces separated by event-free gaps.

        Once the pending pool drains, the catalogue may still hold many
        small pieces in the order queries happened to crack them; each
        extra piece costs a searchsorted + concatenate on every later
        query.  Neighbours whose gap contains no pending events merge by
        plain concatenation — both are sorted and their ranges ordered,
        so the merged arrays are exactly what one big stable sort would
        have produced and the bit-identity argument is untouched.
        Returns the number of pieces removed.
        """
        if len(self.pieces) < 2:
            return 0
        merged: list[CrackPiece] = [self.pieces[0]]
        removed = 0
        for piece in self.pieces[1:]:
            prev = merged[-1]
            if (
                piece.lo > prev.hi
                and self._pending_range_mask(prev.hi, piece.lo).any()
            ):
                merged.append(piece)
                continue
            merged[-1] = CrackPiece(
                prev.lo,
                piece.hi,
                np.concatenate([prev.timestamps, piece.timestamps]),
                np.concatenate([prev.rows, piece.rows]),
                np.concatenate([prev.signs, piece.signs]),
            )
            removed += 1
        if removed:
            self.pieces = merged
            metrics().gauge(f"cracking.pieces{{dim={self.dim}}}").set(
                float(len(self.pieces))
            )
        return removed

    def coldest_hole(self) -> tuple[int, int] | None:
        """The uncracked range holding the most pending events (ties go
        to the lowest bound) — the ParIS+ worker's next target.

        "Coldest" because no query has touched it yet: the ranges queries
        care about crack themselves; the background worker's job is the
        rest of the span, largest backlog first.
        """
        if not len(self._pending_ts):
            return None
        lo = int(self._pending_ts.min())
        hi = int(self._pending_ts.max()) + 1
        best: tuple[int, int] | None = None
        best_count = -1
        for hole in self._holes(lo, hi):
            count = int(self._pending_range_mask(*hole).sum())
            if count > best_count:
                best, best_count = hole, count
        return best

    # ------------------------------------------------------------- queries

    def _piece_deltas(
        self,
        piece_slice: tuple[np.ndarray, np.ndarray, np.ndarray],
        value_column: str | None,
        predicate_mask: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(timestamps, value deltas, count deltas) of one event slice."""
        ts, rows, signs = piece_slice
        if predicate_mask is not None:
            keep = predicate_mask[rows]
            ts, rows, signs = ts[keep], rows[keep], signs[keep]
        cnts = signs.astype(np.int64)
        if value_column is None:
            vals = cnts
        else:
            vals = self._column(value_column)[rows] * cnts
        return ts, vals, cnts

    def _column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"column {name!r} is not indexed by this adaptive "
                "Timeline Index; register it in value_columns"
            ) from None

    def _range_slices(self, qlo: int, qhi: int):
        """``(piece, i0, i1)`` event slices of ``[qlo, qhi)`` from the
        (covering) pieces, in timestamp order — concatenating them
        reproduces the stable globally-sorted stream of the bulk event
        map."""
        slices = []
        for piece in self.pieces:
            if piece.hi <= qlo or piece.lo >= qhi:
                continue
            i0 = int(np.searchsorted(piece.timestamps, qlo, side="left"))
            i1 = int(np.searchsorted(piece.timestamps, qhi, side="left"))
            if i1 > i0:
                slices.append((piece, i0, i1))
        return slices

    def _slice_deltas(
        self,
        piece: CrackPiece,
        i0: int,
        i1: int,
        value_column: str | None,
        predicate_mask: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Delta arrays of one piece slice, via the piece's caches when
        no predicate filters rows (the steady-state fast path)."""
        if predicate_mask is None:
            ts = piece.timestamps[i0:i1]
            cnts = piece.count_deltas()[i0:i1]
            if value_column is None:
                vals = cnts
            else:
                vals = piece.value_deltas(
                    value_column, self._column(value_column)
                )[i0:i1]
            return ts, vals, cnts
        return self._piece_deltas(
            (piece.timestamps[i0:i1], piece.rows[i0:i1], piece.signs[i0:i1]),
            value_column,
            predicate_mask,
        )

    def _prefix_fold(
        self,
        qlo: int,
        value_column: str | None,
        predicate_mask: np.ndarray | None,
    ) -> tuple[float, int]:
        """Fold every event strictly before ``qlo`` into ``(value, count)``.

        Additive deltas are order-independent (up to float rounding), so
        the fold sums cracked prefixes and the unsorted pending pool
        directly — no sort, the reason an uncracked prefix is cheap.
        """
        init_val = 0.0
        init_cnt = 0
        for piece in self.pieces:
            if piece.lo >= qlo:
                break
            i = int(np.searchsorted(piece.timestamps, qlo, side="left"))
            if i == 0:
                continue
            _ts, vals, cnts = self._slice_deltas(
                piece, 0, i, value_column, predicate_mask
            )
            init_val += float(vals.sum())
            init_cnt += int(cnts.sum())
        mask = self._pending_ts < qlo
        if mask.any():
            _ts, vals, cnts = self._piece_deltas(
                (
                    self._pending_ts[mask],
                    self._pending_rows[mask],
                    self._pending_signs[mask],
                ),
                value_column,
                predicate_mask,
            )
            init_val += float(vals.sum())
            init_cnt += int(cnts.sum())
        return init_val, init_cnt

    def temporal_aggregation(
        self,
        value_column: str | None = None,
        aggregate="sum",
        query_interval: Interval | None = None,
        predicate_mask: np.ndarray | None = None,
        drop_empty: bool = False,
        coalesce: bool = True,
    ) -> list[tuple[Interval, object]]:
        """Temporal aggregation that cracks exactly the queried range.

        Same row shape (fold row, coalescing, ``drop_empty``) as
        :meth:`TimelineIndex.temporal_aggregation`; results differ from
        the bulk index only by prefix-fold reassociation.
        """
        agg = get_aggregate(aggregate)
        if not agg.columnar:
            raise NotImplementedError(
                f"adaptive cracking serves the columnar aggregates "
                f"(sum/count/avg); {agg.name} needs the bulk Timeline "
                "Index's multiset replay"
            )
        qlo = MIN_TIME if query_interval is None else query_interval.start
        qhi = FOREVER if query_interval is None else query_interval.end
        self.ensure_range(qlo, qhi)
        if self.last_from_index:
            metrics().counter("cracking.queries_from_index").add(1)

        init_val, init_cnt = self._prefix_fold(
            qlo, value_column, predicate_mask
        )
        slices = [
            self._slice_deltas(p, i0, i1, value_column, predicate_mask)
            for p, i0, i1 in self._range_slices(qlo, qhi)
        ]
        slices = [s for s in slices if len(s[0])]
        if len(slices) == 1:
            ts, vals, cnts = slices[0]
        elif slices:
            ts = np.concatenate([s[0] for s in slices])
            vals = np.concatenate([s[1] for s in slices])
            cnts = np.concatenate([s[2] for s in slices])
        else:
            ts = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0, dtype=np.float64)
            cnts = np.zeros(0, dtype=np.int64)
        keys, val_d, cnt_d = kernels.consolidate_additive(ts, vals, cnts)
        run_vals, run_cnts = kernels.running_totals(val_d, cnt_d)
        run_vals = init_val + run_vals
        run_cnts = init_cnt + run_cnts
        finals = finalize_arrays(agg, run_vals, run_cnts)

        # Row emission — kept textually in step with the bulk index's
        # emit loop so both produce identical interval structure.
        rows: list[tuple[Interval, object]] = []
        keys_list = keys.tolist()
        cnts_list = run_cnts.tolist()
        if qlo > MIN_TIME and init_cnt > 0:
            first_end = keys_list[0] if keys_list else qhi
            if qlo < first_end:
                rows.append(
                    (Interval(qlo, first_end), agg.finalize((init_val, init_cnt)))
                )
        last = len(keys_list) - 1
        for i, lo in enumerate(keys_list):
            hi = keys_list[i + 1] if i < last else qhi
            if lo >= hi or (drop_empty and cnts_list[i] == 0):
                continue
            value = finals[i]
            if coalesce and rows and rows[-1][0].end == lo and rows[-1][1] == value:
                rows[-1] = (Interval(rows[-1][0].start, hi), value)
            else:
                rows.append((Interval(lo, hi), value))
        return rows

    def windowed_aggregation(
        self,
        window: WindowSpec,
        value_column: str | None = None,
        aggregate="sum",
        predicate_mask: np.ndarray | None = None,
    ) -> list[tuple[int, object]]:
        """Windowed aggregation: crack up to the last sample point, then
        cumulative sums + searchsorted exactly like the bulk index."""
        agg = get_aggregate(aggregate)
        if not agg.columnar:
            raise NotImplementedError(
                "adaptive cracking serves the columnar aggregates only"
            )
        points = window.points()
        last = int(points[-1]) + 1 if len(points) else MIN_TIME
        self.ensure_range(MIN_TIME, last)
        if self.last_from_index:
            metrics().counter("cracking.queries_from_index").add(1)
        slices = [
            self._slice_deltas(p, i0, i1, value_column, predicate_mask)
            for p, i0, i1 in self._range_slices(MIN_TIME, last)
        ]
        slices = [s for s in slices if len(s[0])]
        if len(slices) == 1:
            ts, vals, cnts = slices[0]
        elif slices:
            ts = np.concatenate([s[0] for s in slices])
            vals = np.concatenate([s[1] for s in slices])
            cnts = np.concatenate([s[2] for s in slices])
        else:
            ts = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0, dtype=np.float64)
            cnts = np.zeros(0, dtype=np.int64)
        run_vals = np.cumsum(vals)
        run_cnts = np.cumsum(cnts).astype(np.int64)
        idx = np.searchsorted(ts, points, side="right") - 1
        out: list[tuple[int, object]] = []
        for p, i in zip(points, idx):
            if i < 0:
                out.append((int(p), agg.finalize(agg.identity())))
            else:
                out.append(
                    (int(p), agg.finalize((run_vals[i].item(), int(run_cnts[i]))))
                )
        return out

    # --------------------------------------------------------- maintenance

    def refresh(self, table: TemporalTable) -> int:
        """Bring the index up to date with ``table``; returns the number
        of events absorbed.

        New events landing inside a cracked piece merge into it (one
        small stable re-sort — appending then stable-sorting reproduces
        the order a bulk rebuild would give, since new events follow old
        ones in stream order); events landing in uncracked territory
        just join the pending pool, O(1) amortised.
        """
        dim = self.dim
        n_new = len(table) - self._indexed_rows
        starts = table.column(f"{dim}_start")
        ends = table.column(f"{dim}_end")

        old = slice(0, self._indexed_rows)
        closed = (self._ends_snapshot < FOREVER) ^ (ends[old] < FOREVER)
        closed_rows = np.nonzero(closed)[0]

        app_ts: list[np.ndarray] = []
        app_rows: list[np.ndarray] = []
        app_signs: list[np.ndarray] = []
        if len(closed_rows):
            app_ts.append(ends[closed_rows])
            app_rows.append(closed_rows.astype(np.int64))
            app_signs.append(-np.ones(len(closed_rows), dtype=np.int8))
        if n_new > 0:
            new_ids = np.arange(self._indexed_rows, len(table), dtype=np.int64)
            app_ts.append(starts[new_ids])
            app_rows.append(new_ids)
            app_signs.append(np.ones(n_new, dtype=np.int8))
            finite = ends[new_ids] < FOREVER
            app_ts.append(ends[new_ids][finite])
            app_rows.append(new_ids[finite])
            app_signs.append(-np.ones(int(finite.sum()), dtype=np.int8))

        self._indexed_rows = len(table)
        for name in self.value_column_names:
            self._columns[name] = table.column(name).astype(np.float64).copy()
        self._ends_snapshot = ends.copy()
        for piece in self.pieces:
            piece.invalidate()  # delta caches bind the old column arrays
        if not app_ts:
            return 0
        ts = np.concatenate(app_ts)
        rows = np.concatenate(app_rows)
        signs = np.concatenate(app_signs)
        routed = np.zeros(len(ts), dtype=bool)
        for piece in self.pieces:
            mask = (ts >= piece.lo) & (ts < piece.hi) & ~routed
            if not mask.any():
                continue
            routed |= mask
            merged = kernels.sort_events(
                np.concatenate([piece.timestamps, ts[mask]]),
                np.concatenate([piece.rows, rows[mask]]),
                np.concatenate([piece.signs, signs[mask]]),
            )
            piece.timestamps, piece.rows, piece.signs = merged
            piece.invalidate()
        rest = ~routed
        if rest.any():
            self._pending_ts = np.concatenate([self._pending_ts, ts[rest]])
            self._pending_rows = np.concatenate(
                [self._pending_rows, rows[rest]]
            )
            self._pending_signs = np.concatenate(
                [self._pending_signs, signs[rest]]
            )
        return len(ts)

    # ------------------------------------------------------- introspection

    def catalogue(self) -> dict:
        """The frontier as plain data: cracked ranges and the pool size."""
        return {
            "dim": self.dim,
            "pieces": [
                {"lo": p.lo, "hi": p.hi, "events": len(p)}
                for p in self.pieces
            ],
            "pending_events": self.pending_events,
            "cracked_events": self.cracked_events,
        }

    def check_invariants(self) -> None:
        """Assert the frontier invariants (the stateful harness calls
        this after every rule):

        * pieces sorted by ``lo`` and pairwise disjoint;
        * every piece's events sorted and inside its ``[lo, hi)``;
        * no pending event inside any cracked range;
        * no event lost: pieces + pending account for every visibility
          event of the indexed rows.
        """
        prev_hi = None
        for piece in self.pieces:
            assert piece.lo < piece.hi, f"empty range [{piece.lo},{piece.hi})"
            if prev_hi is not None:
                assert piece.lo >= prev_hi, "pieces overlap or are unsorted"
            prev_hi = piece.hi
            ts = piece.timestamps
            if len(ts):
                assert ts[0] >= piece.lo and ts[-1] < piece.hi, (
                    f"events escape [{piece.lo},{piece.hi})"
                )
                assert bool((ts[1:] >= ts[:-1]).all()), "piece not sorted"
            assert len(piece.rows) == len(ts) == len(piece.signs)
        for piece in self.pieces:
            assert not self._pending_range_mask(piece.lo, piece.hi).any(), (
                f"pending events inside cracked [{piece.lo},{piece.hi})"
            )
        finite = int((self._ends_snapshot < FOREVER).sum())
        expected = self._indexed_rows + finite
        assert self.cracked_events + self.pending_events == expected, (
            f"event conservation: {self.cracked_events} cracked + "
            f"{self.pending_events} pending != {expected}"
        )


class RefinementWorker:
    """ParIS+-style ahead-of-query refinement.

    Each :meth:`step` picks the coldest uncracked range of one index,
    ships the sort to the executor (``cracking.refine`` — a real task on
    the process backend, retried through the fault plane like any other),
    and installs the piece only on success.  A step whose every retry
    faulted leaves the frontier untouched: the range simply stays
    scan-backed until the next step or the next query cracks it.
    """

    def __init__(self, index: AdaptiveTimelineIndex, executor) -> None:
        self.index = index
        self.executor = executor

    def step(self) -> bool:
        """Crack one cold range; ``False`` when nothing is pending or
        the refinement attempt gave up (cleanly — no state changed)."""
        from repro.simtime.executor import ExecutorTaskError

        hole = self.index.coldest_hole()
        if hole is None:
            # Converged — the worker's remaining job is consolidation:
            # merging adjacent pieces until the steady-state answer path
            # is the bulk index's single sorted scan.
            return self.index.merge_adjacent() > 0
        lo, hi = hole
        extract = self.index.extract_pending(lo, hi)
        try:
            (sorted_arrays,) = self.executor.map_parallel(
                refine_sort, [extract], label="cracking.refine"
            )
        except ExecutorTaskError:
            return False
        self.index.install_piece(lo, hi, *sorted_arrays)
        metrics().counter("cracking.refinements").add(1)
        return True
