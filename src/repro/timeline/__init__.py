"""The Timeline Index baseline (Kaufmann et al., SIGMOD 2013; [13] in the
paper).

"At the core of the Timeline Index is the *event map*, which is a
pre-computed sorted list of points in time when versions of records became
valid and invalid.  Given this event map, computing the result of a
temporal aggregation query involves only one scan of this highly
compressed sorted list.  To further speed the computation up, the Timeline
Index features checkpoints, which materialize a bitmap with all active
records for a specific point in time."  (Section 2.)

The paper uses the Timeline Index as the query-performance lower bound —
temporal aggregation becomes a single scan over precomputed state — while
stressing its two weaknesses, both modelled here: expensive maintenance
under updates, and no parallelisation (queries run on one core).

:class:`~repro.timeline.bitemporal.BitemporalTimelineIndex` implements the
bi-temporal extension ([15]): business-time queries at a fixed version.
"""

from repro.timeline.eventmap import EventMap
from repro.timeline.checkpoints import Checkpoint, CheckpointSet
from repro.timeline.index import TimelineIndex
from repro.timeline.bitemporal import BitemporalTimelineIndex
from repro.timeline.cracking import (
    AdaptiveTimelineIndex,
    CrackPiece,
    RefinementWorker,
)
from repro.timeline.engine import TimelineEngine
from repro.timeline.hybrid import HybridAggregator

__all__ = [
    "EventMap",
    "Checkpoint",
    "CheckpointSet",
    "TimelineIndex",
    "BitemporalTimelineIndex",
    "AdaptiveTimelineIndex",
    "CrackPiece",
    "RefinementWorker",
    "TimelineEngine",
    "HybridAggregator",
]
