"""Hybrid index + scan — the paper's second future-work item.

Section 6: "we would like to investigate how ParTime can co-exist with
indexes such as the Timeline Index; for instance, would it be possible to
partially index historic data that is not updated and to apply ParTime
only to fresh and recently appended data in a hybrid way."

:class:`HybridAggregator` is that investigation, built from the two
existing engines:

* at construction, the table is split at a *freeze version*: rows whose
  transaction time started before it are *frozen*, everything after is
  *fresh*;
* the frozen rows' validity events are extracted and sorted **once**, per
  time dimension — a partial Timeline Index.  For the transaction-time
  dimension only events *before* the freeze version are indexed, because
  an update arriving later may still close a frozen row, and that closing
  event always carries a timestamp at or after the freeze version —
  frozen events are therefore immutable by construction;
* a query answers from two delta streams merged by ParTime's Step 2:
  (1) the frozen index, filtered by the query's predicate and clamped to
  the query range without any sorting — for transaction-time queries the
  *supplemental* end events of frozen rows closed at or after the freeze
  (one vectorized pass over the live frozen end column, no sort) are
  folded jointly with the indexed events, so a close *before* the query
  range cancels its row's start event inside the prefix fold instead of
  being dropped — and (2) ordinary ParTime Step 1 over the fresh rows,
  parallelised as usual.

Updates need no index maintenance at all: closing events and new versions
land on the fresh side by construction.  Periodically calling
:meth:`HybridAggregator.advance_freeze` re-freezes the accumulated fresh
rows (the only re-sorting cost, amortised over many updates).

Limits (documented, asserted): one-dimensional queries with incremental
aggregates (SUM/COUNT/AVG).  Everything else falls back to plain ParTime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.aggregates import get_aggregate
from repro.core.deltamap import ColumnarDeltaMap
from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.core.step1 import generate_delta_map
from repro.core.step2 import merge_sorted_arrays
from repro.obs.metrics import metrics
from repro.obs.tracer import span
from repro.simtime.executor import Executor, SerialExecutor
from repro.temporal.table import TableChunk, TemporalTable
from repro.temporal.timestamps import FOREVER, MIN_TIME


@dataclass(frozen=True)
class _FreshSideTask:
    """Step-1 task over one fresh-side chunk, module-level and frozen so
    it pickles for the process backend (PT006)."""

    value_column: "str | None"
    dim: str
    aggregate: object
    predicate: object
    query_interval: object

    def __call__(self, chunk: TableChunk):
        return generate_delta_map(
            chunk,
            self.value_column,
            self.dim,
            self.aggregate,
            predicate=self.predicate,
            query_interval=self.query_interval,
            mode="vectorized",
        )


class _FrozenDimIndex:
    """Sorted validity events of the frozen rows for one dimension."""

    def __init__(
        self,
        chunk: TableChunk,
        dim: str,
        transaction_dim: str,
        freeze_version: int,
    ) -> None:
        self.dim = dim
        starts = chunk.column(f"{dim}_start")
        ends = chunk.column(f"{dim}_end")
        n = len(starts)
        rows = np.arange(n, dtype=np.int64)
        if dim == transaction_dim:
            # End events at or after the freeze are mutable (an update may
            # still close a frozen row): exclude them here; the fresh-side
            # supplemental pass provides them at query time.
            end_keep = ends < freeze_version
        else:
            # Business-time intervals of a written version never change.
            end_keep = ends < FOREVER
        ts = np.concatenate([starts, ends[end_keep]])
        evt_rows = np.concatenate([rows, rows[end_keep]])
        signs = np.concatenate(
            [np.ones(n, dtype=np.int64),
             -np.ones(int(end_keep.sum()), dtype=np.int64)]
        )
        self.timestamps, self.rows, self.signs = kernels.sort_events(
            ts, evt_rows, signs
        )
        #: column name -> (event value deltas, prefix sums) for
        #: predicate-free queries (computed lazily, immutable thereafter).
        self._cumulative: dict = {}

    def _cumulative_for(self, column_key, values_per_row: np.ndarray):
        cached = self._cumulative.get(column_key)
        if cached is None:
            vals = values_per_row[self.rows] * self.signs
            cached = (vals, np.cumsum(vals), np.cumsum(self.signs))
            self._cumulative[column_key] = cached
        return cached

    def delta_map(
        self,
        values_per_row: np.ndarray,
        mask: np.ndarray | None,
        qlo: int,
        qhi: int,
        aggregate,
        column_key=None,
        extra: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> ColumnarDeltaMap:
        """The frozen contribution as a consolidated sorted-array map:
        predicate filter, prefix-fold of events before the query range,
        no sorting (the index is pre-sorted).  ``column_key`` identifies
        the value column for the predicate-free cumulative cache.

        ``extra`` is an optional ``(timestamps, value_deltas, count_deltas)``
        stream of events *not* in the index — the supplemental end events of
        frozen rows closed at or after the freeze version.  They must be
        folded **jointly** with the indexed events: a supplemental close
        before ``qlo`` has to cancel its row's indexed start event inside
        the prefix fold, otherwise the fold counts the row as still alive
        at ``qlo`` and the query double-counts it (the freeze-boundary bug).
        Extra events at or after ``qhi`` must already be clamped away by
        the caller.
        """
        ts = self.timestamps
        signs = self.signs
        if mask is None:
            # Predicate-free fast path: cached per-event deltas + prefix
            # sums make the query O(range), like a full Timeline Index.
            vals, cum_vals, cum_cnts = self._cumulative_for(
                column_key, values_per_row
            )
            i0 = int(np.searchsorted(ts, qlo, side="left"))
            i1 = int(np.searchsorted(ts, qhi, side="left"))
            fold_val = float(cum_vals[i0 - 1]) if i0 > 0 else 0.0
            fold_cnt = int(cum_cnts[i0 - 1]) if i0 > 0 else 0
        else:
            vals = values_per_row[self.rows] * signs
            keep = mask[self.rows]
            ts, signs, vals = ts[keep], signs[keep], vals[keep]
            i0 = int(np.searchsorted(ts, qlo, side="left"))
            i1 = int(np.searchsorted(ts, qhi, side="left"))
            fold_val = float(vals[:i0].sum())
            fold_cnt = int(signs[:i0].sum())
        parts_ts = [ts[i0:i1]]
        parts_vals = [vals[i0:i1]]
        parts_cnts = [signs[i0:i1]]
        if extra is not None:
            ex_ts, ex_vals, ex_cnts = extra
            before = ex_ts < qlo
            if before.any():
                fold_val += float(ex_vals[before].sum())
                fold_cnt += int(ex_cnts[before].sum())
            in_range = ~before  # already clamped to < qhi by the caller
            if in_range.any():
                # `from_events` sorts and consolidates, so appending the
                # unsorted supplemental stream after the indexed slice is
                # fine.
                parts_ts.append(ex_ts[in_range])
                parts_vals.append(ex_vals[in_range])
                parts_cnts.append(ex_cnts[in_range])
        if qlo > MIN_TIME and (fold_val != 0.0 or fold_cnt != 0):
            # Everything before the range folds into one event at qlo —
            # unless the *joint* fold is null (no record survives into the
            # range): ParTime's clamp skips such records entirely, so a
            # null fold must not materialise a spurious zero entry.
            parts_ts.insert(0, np.array([qlo], dtype=np.int64))
            parts_vals.insert(0, np.array([fold_val]))
            parts_cnts.insert(0, np.array([fold_cnt], dtype=np.int64))
        return ColumnarDeltaMap.from_events(
            aggregate,
            np.concatenate(parts_ts),
            np.concatenate(parts_vals).astype(np.float64),
            np.concatenate(parts_cnts),
        )

    def nbytes(self) -> int:
        return self.timestamps.nbytes + self.rows.nbytes + self.signs.nbytes


class HybridAggregator:
    """Partial Timeline over frozen history + ParTime over fresh data."""

    def __init__(
        self, table: TemporalTable, freeze_version: int | None = None
    ) -> None:
        self.table = table
        self._tdim = table.schema.transaction_dim
        self.freeze_version = (
            table.current_version if freeze_version is None else freeze_version
        )
        self._build_frozen()

    # -------------------------------------------------------------- build

    def _build_frozen(self) -> None:
        chunk = self.table.chunk()
        starts = chunk.column(f"{self._tdim}_start")
        self._frozen_mask = starts < self.freeze_version
        self._frozen_count = int(self._frozen_mask.sum())
        # The event index and the cached column copies are immutable by
        # construction; the ONLY column of a written row that ever mutates
        # is the transaction-time end (an update closing the version), so
        # _frozen_live_chunk() re-reads just that one column.
        self._frozen_indices = np.nonzero(self._frozen_mask)[0]
        self._build_view = chunk.select(self._frozen_mask)
        self._indexes: dict[str, _FrozenDimIndex] = {
            dim.name: _FrozenDimIndex(
                self._build_view, dim.name, self._tdim, self.freeze_version
            )
            for dim in self.table.schema.time_dimensions
        }

    def _frozen_live_chunk(self) -> TableChunk:
        """The frozen rows as seen *now*: the build-time copy with the
        one mutable column (``tt_end``) refreshed from the live table."""
        end_col = f"{self._tdim}_end"
        columns = dict(self._build_view.columns)
        columns[end_col] = self.table.column(end_col)[self._frozen_indices]
        return TableChunk(schema=self._build_view.schema, columns=columns)

    def advance_freeze(self) -> None:
        """Re-freeze: absorb all fresh data into the index (the periodic,
        amortised re-sort the paper's hybrid idea implies)."""
        self.freeze_version = self.table.current_version
        self._build_frozen()

    def nbytes(self) -> int:
        return sum(ix.nbytes() for ix in self._indexes.values())

    @property
    def fresh_rows(self) -> int:
        return len(self.table) - self._frozen_count

    # -------------------------------------------------------------- query

    def _fresh_chunk(self) -> TableChunk:
        chunk = self.table.chunk()
        mask = np.ones(len(chunk), dtype=bool)
        mask[: len(self._frozen_mask)] = ~self._frozen_mask
        return chunk.select(mask)

    def _supplemental_events(
        self,
        chunk: TableChunk,
        mask: np.ndarray | None,
        values: np.ndarray,
        qhi: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """End events of frozen rows closed at or after the freeze version
        (transaction-time queries only): one vectorized pass over the live
        ``tt_end`` column of the frozen rows.  Returned *unclamped below*
        ``qlo`` on purpose — events before the query range must reach the
        frozen index's prefix fold (see :meth:`_FrozenDimIndex.delta_map`)
        so they cancel their rows' indexed start events instead of being
        dropped, which would double-count rows closed before ``qlo``.
        ``mask`` is the query predicate evaluated on ``chunk`` (or None)
        and ``values`` the per-row aggregation values of ``chunk``.
        """
        ends = chunk.column(f"{self._tdim}_end")
        closed = (ends >= self.freeze_version) & (ends < FOREVER) & (ends < qhi)
        if mask is not None:
            closed &= mask
        if not closed.any():
            return None
        ts = ends[closed]
        return ts, -values[closed], -np.ones(len(ts), dtype=np.int64)

    def supports(self, query: TemporalAggregationQuery) -> bool:
        # ``columnar``, not ``incremental``: the frozen index folds
        # additive (value, count) deltas, which is wrong for PRODUCT even
        # though PRODUCT is incremental.
        return (
            not query.is_multidim
            and not query.is_windowed
            and query.aggregate_fn.columnar
        )

    def execute(
        self,
        query: TemporalAggregationQuery,
        workers: int = 1,
        executor: Executor | None = None,
    ) -> TemporalAggregationResult:
        """Answer a query from the frozen index plus a fresh-only scan."""
        if not self.supports(query):
            raise NotImplementedError(
                "the hybrid path covers one-dimensional incremental "
                "aggregation; use ParTime directly for the rest"
            )
        executor = executor or SerialExecutor()
        agg = get_aggregate(query.aggregate)
        dim = query.varied_dims[0]
        interval = query.interval_of(dim)
        qlo = MIN_TIME if interval is None else interval.start
        qhi = FOREVER if interval is None else interval.end
        metrics().counter("hybrid.queries").add(1)

        def frozen_side():
            with span("hybrid.frozen.probe", kind="probe", dim=dim):
                chunk = self._frozen_live_chunk()
                mask = (
                    None
                    if query.predicate is None
                    else query.predicate.mask(chunk)
                )
                if query.value_column is None:
                    values = np.ones(len(chunk))
                else:
                    values = chunk.column(query.value_column).astype(
                        np.float64
                    )
                index = self._indexes[dim]
                metrics().counter("hybrid.frozen_events").add(
                    len(index.timestamps)
                )
                extra = (
                    self._supplemental_events(chunk, mask, values, qhi)
                    if dim == self._tdim
                    else None
                )
                metrics().counter("hybrid.supplemental_events").add(
                    0 if extra is None else len(extra[0])
                )
                return [
                    index.delta_map(
                        values,
                        mask,
                        qlo,
                        qhi,
                        agg,
                        column_key=query.value_column,
                        extra=extra,
                    )
                ]

        fresh = self._fresh_chunk()
        bounds = [round(i * len(fresh) / max(1, workers)) for i in range(workers + 1)]
        fresh_chunks = [
            TableChunk(
                schema=fresh.schema,
                columns={
                    name: arr[bounds[i]:bounds[i + 1]]
                    for name, arr in fresh.columns.items()
                },
            )
            for i in range(max(1, workers))
        ]

        fresh_side = _FreshSideTask(
            query.value_column, dim, agg, query.predicate, interval
        )
        with span(
            "hybrid.query",
            kind="query",
            dim=dim,
            aggregate=query.aggregate,
            frozen_rows=self._frozen_count,
            fresh_rows=self.fresh_rows,
        ):
            fresh_maps = executor.map_parallel(
                fresh_side, fresh_chunks, label="hybrid.fresh"
            )
            frozen_maps = executor.run_serial(
                frozen_side, label="hybrid.frozen"
            )

            def step2():
                return merge_sorted_arrays(
                    frozen_maps + list(fresh_maps),
                    agg,
                    until=qhi,
                    drop_empty=query.drop_empty,
                )

            pairs = executor.run_serial(step2, label="hybrid.step2")
        return TemporalAggregationResult.from_pairs(dim, pairs, agg.name)
