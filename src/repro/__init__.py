"""ParTime: Parallel Temporal Aggregation — a full reproduction.

This package reimplements the system of Pilman et al., *ParTime: Parallel
Temporal Aggregation* (SIGMOD 2016), in Python:

* :mod:`repro.core` — the ParTime algorithm (delta maps, Step 1 / Step 2,
  windowed and multi-dimensional variants, pivot selection);
* :mod:`repro.temporal` — the bi-temporal data model substrate;
* :mod:`repro.storage` — a Crescando-style shared-scan parallel database;
* :mod:`repro.timeline` — the Timeline Index baseline;
* :mod:`repro.aggtree` — Aggregation Tree baselines;
* :mod:`repro.systems` — cost-model stand-ins for the commercial
  comparators, plus the reference oracle;
* :mod:`repro.workloads` — the Amadeus workload and the TPC-BiH benchmark;
* :mod:`repro.simtime` — simulated-multicore execution accounting;
* :mod:`repro.bench` — the experiment harness.

Quickstart::

    from repro import ParTime, TemporalAggregationQuery
    from repro.temporal import (
        Column, ColumnType, TableSchema, TemporalTable, Overlaps,
    )

    schema = TableSchema("employee",
                         [Column("name", ColumnType.STRING),
                          Column("salary", ColumnType.INT)],
                         business_dims=["bt"], key="name")
    table = TemporalTable(schema)
    table.insert({"name": "Anna", "salary": 10_000}, {"bt": (0, 100)})
    query = TemporalAggregationQuery(varied_dims=("tt",),
                                     value_column="salary")
    result = ParTime().execute(table, query, workers=4)
"""

from repro.core import (
    ParTime,
    TemporalAggregationQuery,
    TemporalAggregationResult,
    WindowSpec,
)
from repro.temporal import (
    FOREVER,
    Interval,
    TableSchema,
    TemporalTable,
    date_to_ts,
)

__version__ = "1.0.0"

__all__ = [
    "ParTime",
    "TemporalAggregationQuery",
    "TemporalAggregationResult",
    "WindowSpec",
    "TemporalTable",
    "TableSchema",
    "Interval",
    "FOREVER",
    "date_to_ts",
    "__version__",
]
