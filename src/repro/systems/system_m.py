"""System M — the main-memory commercial comparator (Section 5.1).

"A commercial main-memory database system which was specifically designed
for analytics and has support for temporal data and transactions."  Its
cost profile in the paper's experiments:

* fast columnar scans and the best compression of all systems (Table 3:
  2.1 GB resident for 2.3 GB raw);
* primary-key indexes only — which "turned out to be the best
  configuration for all our experiments" — making indexed key lookups
  fast (Figure 13b) and giving it the best throughput on the small
  read-only Amadeus workload (Figure 12);
* no native temporal aggregation operator: such queries run through
  generic plans, an order of magnitude slower than ParTime (Figure 13a)
  and timing out at scale;
* pathologically slow temporal bulk load (Table 4: 962 minutes at SF=1,
  vs. 2.5 for Crescando).
"""

from __future__ import annotations

from repro.simtime.cost import CostModel, DEFAULT_COSTS
from repro.systems.commercial import CommercialEngine


class SystemM(CommercialEngine):
    """The main-memory columnar stand-in; see module docstring."""

    name = "System M"

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        super().__init__(costs)
        self.scan_factor = costs.system_m_scan_factor
        # Generic columnar plans on all cores: algorithmically ~an order
        # of magnitude off a purpose-built operator, but parallel — which
        # is exactly how M(32 cores) beats ParTime(2 cores) while losing
        # to ParTime(31 cores), Section 5.4.1.
        self.temporal_factor = (
            costs.system_m_scan_factor
            * costs.system_m_temporal_factor
            / (costs.commercial_cores * costs.system_m_parallel_efficiency)
        )
        self.merge_factor = costs.system_m_merge_factor
        self.index_speedup = costs.system_m_index_speedup
        self.load_factor = costs.system_m_load_factor
        self.memory_factor = costs.system_m_compression
