"""Reference (oracle) implementations of temporal aggregation.

These evaluators follow the definition of the operator directly: collect
all interval boundaries, and for every elementary segment compute the
aggregate over the records valid throughout it.  Complexity is O(n²) — the
point is transparency, not speed.  They validate ParTime, the Timeline
Index and the Aggregation Trees against each other in the test suite, and
they are the evaluation core of the System D / System M stand-ins.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.aggregates import AggregateFunction, get_aggregate
from repro.core.window import WindowSpec
from repro.temporal.predicates import Predicate
from repro.temporal.table import TableChunk, TemporalTable
from repro.temporal.timestamps import FOREVER, Interval, MIN_TIME


def _records_of(
    source: "TemporalTable | TableChunk | Iterable[tuple]",
    dim: str | None,
    value_column: str | None,
    predicate: Predicate | None,
) -> list[tuple[int, int, object]]:
    """Normalise any record source to ``(start, end, value)`` triples."""
    if isinstance(source, TemporalTable):
        source = source.chunk()
    if isinstance(source, TableChunk):
        if predicate is not None:
            source = source.select(predicate.mask(source))
        starts = source.column(f"{dim}_start")
        ends = source.column(f"{dim}_end")
        values = (
            [1] * len(source)
            if value_column is None
            else source.column(value_column)
        )
        return [
            (int(s), int(e), v) for s, e, v in zip(starts, ends, values)
        ]
    return [(int(s), int(e), v) for s, e, v in source]


def reference_temporal_aggregation(
    source,
    aggregate="sum",
    dim: str | None = None,
    value_column: str | None = None,
    predicate: Predicate | None = None,
    query_interval: Interval | None = None,
    drop_empty: bool = False,
    coalesce: bool = True,
) -> list[tuple[Interval, object]]:
    """One-dimensional temporal aggregation, computed the slow, obvious way.

    ``source`` may be a :class:`TemporalTable`, a :class:`TableChunk`
    (then ``dim`` selects the varied time dimension) or an iterable of raw
    ``(start, end, value)`` triples.
    """
    agg = get_aggregate(aggregate)
    qlo = MIN_TIME if query_interval is None else query_interval.start
    qhi = FOREVER if query_interval is None else query_interval.end
    triples = []
    for s, e, v in _records_of(source, dim, value_column, predicate):
        s, e = max(s, qlo), min(e, qhi)
        if s < e:
            triples.append((s, e, v))
    if not triples:
        return []
    boundaries = sorted(
        {s for s, _, _ in triples} | {e for _, e, _ in triples if e < qhi}
    )
    rows: list[tuple[Interval, object]] = []
    for i, lo in enumerate(boundaries):
        hi = boundaries[i + 1] if i + 1 < len(boundaries) else qhi
        if lo >= hi:
            continue
        acc = agg.identity()
        count = 0
        for s, e, v in triples:
            if s <= lo and e >= hi:
                acc = agg.apply(acc, agg.make_delta(v, +1))
                count += 1
        if drop_empty and count == 0:
            continue
        value = agg.finalize(acc)
        if coalesce and rows and rows[-1][0].end == lo and rows[-1][1] == value:
            rows[-1] = (Interval(rows[-1][0].start, hi), value)
        else:
            rows.append((Interval(lo, hi), value))
    return rows


def reference_windowed_aggregation(
    source,
    window: WindowSpec,
    aggregate="sum",
    dim: str | None = None,
    value_column: str | None = None,
    predicate: Predicate | None = None,
    drop_empty: bool = False,
) -> list[tuple[int, object]]:
    """Windowed aggregation: the aggregate of the records visible at each
    sample point of ``window``."""
    agg = get_aggregate(aggregate)
    triples = _records_of(source, dim, value_column, predicate)
    rows: list[tuple[int, object]] = []
    for i in range(window.count):
        point = window.point(i)
        acc = agg.identity()
        count = 0
        for s, e, v in triples:
            if s <= point < e:
                acc = agg.apply(acc, agg.make_delta(v, +1))
                count += 1
        if drop_empty and count == 0:
            continue
        rows.append((point, agg.finalize(acc)))
    return rows


def reference_multidim_value_at(
    source,
    point: Sequence[int],
    dims: Sequence[str],
    aggregate="sum",
    value_column: str | None = None,
    predicate: Predicate | None = None,
):
    """The multi-dimensional aggregate at one point (one timestamp per
    varied dimension): aggregate all records whose validity contains the
    point in *every* dimension; ``None`` when no record qualifies.

    This is the pointwise characterisation of the operator — ParTime's
    multi-dimensional result must agree with it everywhere, regardless of
    the pivot choice or row tiling.
    """
    agg = get_aggregate(aggregate)
    if isinstance(source, TemporalTable):
        source = source.chunk()
    if predicate is not None:
        source = source.select(predicate.mask(source))
    acc = agg.identity()
    count = 0
    for i in range(len(source)):
        ok = True
        for d, ts in zip(dims, point):
            if not (
                source.column(f"{d}_start")[i] <= ts < source.column(f"{d}_end")[i]
            ):
                ok = False
                break
        if not ok:
            continue
        value = 1 if value_column is None else source.column(value_column)[i]
        acc = agg.apply(acc, agg.make_delta(value, +1))
        count += 1
    if count == 0:
        return None
    return agg.finalize(acc)
