"""Shared machinery of the System D / System M stand-ins.

Both engines compute *exact* answers (via a single-worker ParTime run —
any correct evaluator would do) and report a simulated response time
derived from the measured base work scaled by the engine's calibrated
cost factors (see :mod:`repro.simtime.cost`).  This captures what the
paper uses the commercial systems for: a performance *foil* whose cost
structure — index-fast point queries, catastrophic full-scan temporal
aggregation, slow temporal bulk load — is what the experiments contrast
ParTime against.
"""

from __future__ import annotations

import math

from repro.core.partime import ParTime
from repro.simtime.executor import SerialExecutor
from repro.simtime.measure import measured
from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.simtime.cost import CostModel, DEFAULT_COSTS
from repro.systems.base import Engine, QueryTimeout
from repro.temporal.predicates import Predicate
from repro.temporal.table import TemporalTable


class CommercialEngine(Engine):
    """Base class: exact answers, cost-model response times."""

    #: Multiplier on measured scan work for plain selections.
    scan_factor: float = 1.0
    #: Multiplier on measured work for temporal aggregation plans.
    temporal_factor: float = 1.0
    #: Divisor on scan work for index-served queries.
    index_speedup: float = 1.0
    #: Multiplier on the measured result-construction (merge) work of
    #: temporal aggregation — generic plans materialise, Section above.
    merge_factor: float = 1.0
    #: Multiplier on measured ingest work for bulk loads.
    load_factor: float = 1.0
    #: Multiplier on raw columnar bytes for resident size.
    memory_factor: float = 1.0

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs
        self._table: TemporalTable | None = None
        self._partime = ParTime(mode="vectorized")

    # ------------------------------------------------------------- loading

    def bulkload(self, table: TemporalTable) -> float:
        # The measured base work of ingesting: touch every physical column
        # once (the copy a loader cannot avoid).
        with measured() as sw:
            chunk = table.chunk()
            for name in table.schema.physical_columns():
                chunk.column(name).copy()
        self._table = table
        return sw.elapsed * self.load_factor

    def memory_bytes(self) -> int:
        self._require_loaded()
        return int(self._table.memory_bytes() * self.memory_factor)

    def _require_loaded(self) -> None:
        if self._table is None:
            raise RuntimeError(f"{self.name}: bulkload a table first")

    # ------------------------------------------------------------- queries

    def _check_timeout(self, simulated: float) -> float:
        if simulated > self.costs.timeout_s:
            raise QueryTimeout(self.name, self.costs.timeout_s)
        return simulated

    def temporal_aggregation(
        self, query: TemporalAggregationQuery
    ) -> tuple[TemporalAggregationResult, float]:
        """Exact result via a single-worker reference run; simulated time
        decomposes the measured work: the *scan* side is multiplied by the
        engine's (possibly parallelised) temporal plan factor, while the
        *result construction* side is multiplied by ``merge_factor`` —
        generic sort/group plans materialise results, they do not stream
        them, and no amount of intra-query parallelism removes that
        sequential tail."""
        self._require_loaded()
        executor = SerialExecutor()
        result = self._partime.execute(
            self._table, query, workers=1, executor=executor
        )
        step1 = executor.clock.phase_elapsed("partime.step1")
        step2 = max(0.0, executor.clock.elapsed - step1)
        simulated = step1 * self.temporal_factor + step2 * self.merge_factor
        return result, self._check_timeout(simulated)

    def select(self, predicate: Predicate, indexed: bool = False) -> tuple[int, float]:
        self._require_loaded()
        chunk = self._table.chunk()
        with measured() as sw:
            count = int(predicate.mask(chunk).sum())
        base = sw.elapsed
        if indexed:
            # An index turns the scan into a handful of lookups; model as
            # the scan work divided by the calibrated speedup, floored by a
            # logarithmic probe cost.
            probe = 1e-6 * math.log2(max(2, len(self._table)))
            simulated = max(base * self.scan_factor / self.index_speedup, probe)
        else:
            simulated = base * self.scan_factor
        return count, self._check_timeout(simulated)
