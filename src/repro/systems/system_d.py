"""System D — the disk-based commercial comparator (Section 5.1).

"A commercial disk-based, general-purpose database system.  We used the
index advisor shipped with the product to generate indexes for the
benchmark workload."  Its cost profile, as it manifests in the paper's
experiments:

* worst overall performer ("it is a disk-based database system and cannot
  compete with main-memory database systems even if all the data is kept
  in the main-memory buffers" — Figure 17);
* good secondary indexes, so indexed point queries are fast (Figure 13b);
* temporal aggregation through generic self-join plans — one order of
  magnitude slower than ParTime even on the small database (Figure 13a),
  timing out on the large ones (Sections 5.2.1, 5.4.1);
* extremely slow *temporal* bulk load (Table 4: 220 minutes for SF=1).
"""

from __future__ import annotations

from repro.simtime.cost import CostModel, DEFAULT_COSTS
from repro.systems.commercial import CommercialEngine


class SystemD(CommercialEngine):
    """The disk-based stand-in; see module docstring."""

    name = "System D"

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        super().__init__(costs)
        self.scan_factor = costs.system_d_scan_factor
        # Generic self-join plans on all cores: per-core blow-up divided
        # by the (inefficient) 32-way parallelism.
        self.temporal_factor = (
            costs.system_d_scan_factor
            * costs.system_d_temporal_factor
            / (costs.commercial_cores * costs.system_d_parallel_efficiency)
        )
        self.merge_factor = costs.system_d_merge_factor
        self.index_speedup = costs.system_d_index_speedup
        self.load_factor = costs.system_d_load_factor
        # Table 3: 2.5 GB resident for 2.3 GB raw (row-store headers,
        # free-space maps) — roughly +9%.
        self.memory_factor = 1.09
