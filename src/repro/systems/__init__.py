"""Reference evaluation and the commercial-system stand-ins.

* :mod:`repro.systems.oracle` — a textbook sweep-line evaluator for
  temporal aggregation.  It is deliberately simple (and slow); it doubles
  as the correctness oracle of the test suite and as the evaluation core
  of the System D / System M stand-ins.
* :mod:`repro.systems.system_d` / :mod:`repro.systems.system_m` — cost-model
  stand-ins for the two anonymous commercial comparators of Section 5.1
  (see DESIGN.md for the substitution rationale).
"""

from repro.systems.base import Engine, QueryTimeout
from repro.systems.oracle import (
    reference_temporal_aggregation,
    reference_multidim_value_at,
    reference_windowed_aggregation,
)
from repro.systems.system_d import SystemD
from repro.systems.system_m import SystemM

__all__ = [
    "Engine",
    "QueryTimeout",
    "reference_temporal_aggregation",
    "reference_multidim_value_at",
    "reference_windowed_aggregation",
    "SystemD",
    "SystemM",
]
