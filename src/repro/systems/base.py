"""The engine interface shared by all comparators.

Every system in the evaluation — Crescando+ParTime, the Timeline Index,
System D and System M — exposes the same few operations so the benchmark
harness can sweep over engines uniformly:

* :meth:`Engine.bulkload` — ingest a table, returning simulated seconds
  (Table 4);
* :meth:`Engine.memory_bytes` — resident size after loading (Table 3);
* :meth:`Engine.temporal_aggregation` — run one temporal aggregation query,
  returning the result and simulated seconds (Figures 13, 15, 17-19);
* :meth:`Engine.select` — run one selection / time-travel query (the
  non-temporal side of Figure 13).

Engines whose real-world counterpart would give up on a query raise
:class:`QueryTimeout` once their simulated time crosses the configured
limit — reproducing "the queries timed out" of Sections 5.2.1 and 5.4.
"""

from __future__ import annotations

from repro.core.query import TemporalAggregationQuery
from repro.core.result import TemporalAggregationResult
from repro.temporal.predicates import Predicate
from repro.temporal.table import TemporalTable


class QueryTimeout(Exception):
    """A query exceeded the engine's simulated time limit."""

    def __init__(self, engine: str, seconds: float) -> None:
        super().__init__(f"{engine}: query timed out after {seconds:.1f}s (simulated)")
        self.engine = engine
        self.seconds = seconds


class Engine:
    """Abstract comparator; see module docstring."""

    name: str = "?"

    def bulkload(self, table: TemporalTable) -> float:
        raise NotImplementedError

    def memory_bytes(self) -> int:
        raise NotImplementedError

    def temporal_aggregation(
        self, query: TemporalAggregationQuery
    ) -> tuple[TemporalAggregationResult, float]:
        raise NotImplementedError

    def select(self, predicate: Predicate, indexed: bool = False) -> tuple[int, float]:
        """Run a selection; returns (matching row count, simulated seconds).

        ``indexed`` marks queries the engine could serve from an index
        (equality on an indexed key) — the distinction that makes Systems
        D/M beat the index-less Crescando on non-temporal queries in
        Figure 13b.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<engine {self.name}>"
