"""Per-core schedule reconstruction — the Gantt side of ``repro.obs``.

A :class:`SimClock <repro.simtime.clock.SimClock>` folds each parallel
phase to its LPT makespan and forgets the placement.  This module
reconstructs it: from any recorded :class:`~repro.simtime.clock.Phase`
list (``clock.phases``) or :class:`~repro.obs.tracer.Span` tree
(``tracer.root``) it rebuilds the full per-core timeline — which task ran
on which core slot at which simulated offset — and derives the statistics
the paper's multicore discussion leans on:

* **utilization** — work / (slots x elapsed): how busy the reserved
  cores were;
* **imbalance** — max core load / mean core load: the straggler ratio of
  Section 4.1 (1.0 = perfectly balanced);
* **Amdahl accounting** — the serial seconds that bound the achievable
  speedup (``max_speedup = work / serial_work``), and the realised
  speedup ``work / elapsed``.

Phases compose serially (the clock already folded each parallel phase),
so phase ``i`` starts at the sum of the elapsed times of phases
``0..i-1`` — exactly how ``SimClock.elapsed`` accumulates.  The
reconstruction is deterministic: :func:`~repro.simtime.clock.lpt_schedule`
replays the same longest-first, least-loaded-slot policy ``makespan``
used when the phase was booked, so ``max core load == phase.elapsed``
holds exactly (see tests/test_schedule.py for the property-test pinning).

The Chrome-trace exporter (:mod:`repro.obs.export`) turns a
:class:`ScheduleReport` into a ``chrome://tracing`` / Perfetto-loadable
event array (cores -> tids, tasks -> complete events).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover — runtime import would be circular:
    # repro.simtime.clock imports repro.obs.tracer (and thereby this
    # package's __init__) for its booking mirror, so this module imports
    # the clock lazily inside the functions that need it.
    from repro.simtime.clock import Phase

__all__ = [
    "TaskSlice",
    "PhaseStats",
    "ScheduleReport",
    "build_schedule",
    "phases_from_span",
    "schedule_from_span",
]


@dataclass(frozen=True)
class TaskSlice:
    """One task occupying one core slot for a simulated time interval."""

    phase: str  #: phase label
    phase_index: int  #: position of the phase in the schedule
    kind: str  #: "parallel" | "serial"
    task: int  #: task index within the phase
    core: int  #: core slot (0-based)
    start: float  #: absolute simulated offset from schedule start
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class PhaseStats:
    """Utilization/imbalance breakdown of one phase."""

    index: int
    label: str
    kind: str
    slots: int  #: core slots the phase reserved
    tasks: int
    start: float  #: absolute simulated offset of the phase start
    elapsed: float  #: the phase's makespan (== max core load)
    work: float  #: CPU-seconds across all tasks
    utilization: float  #: work / (slots * elapsed); 1.0 for empty phases
    imbalance: float  #: max / mean load over the occupied slots

    @property
    def end(self) -> float:
        return self.start + self.elapsed

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "slots": self.slots,
            "tasks": self.tasks,
            "start": self.start,
            "elapsed": self.elapsed,
            "work": self.work,
            "utilization": self.utilization,
            "imbalance": self.imbalance,
        }


def _phase_loads(placements, slots_used: int) -> list[float]:
    loads = [0.0] * max(1, slots_used)
    for p in placements:
        loads[p.slot] = max(loads[p.slot], p.end)
    return loads


@dataclass(frozen=True)
class ScheduleReport:
    """The reconstructed per-core schedule of one recorded execution."""

    tasks: tuple[TaskSlice, ...]
    phases: tuple[PhaseStats, ...]
    cores: int  #: widest slot reservation across phases (>= 1)
    elapsed: float  #: total simulated elapsed (== SimClock.elapsed)
    work: float  #: total CPU-seconds (== SimClock.total_work())

    # ------------------------------------------------------------- lanes

    def core_lanes(self) -> dict[int, list[TaskSlice]]:
        """Core slot -> its task slices in start order (the Gantt rows)."""
        lanes: dict[int, list[TaskSlice]] = {}
        for slice_ in self.tasks:
            lanes.setdefault(slice_.core, []).append(slice_)
        for slices in lanes.values():
            slices.sort(key=lambda s: (s.start, s.end))
        return lanes

    def core_loads(self) -> dict[int, float]:
        """Core slot -> total CPU-seconds placed on it."""
        loads: dict[int, float] = {}
        for slice_ in self.tasks:
            loads[slice_.core] = loads.get(slice_.core, 0.0) + slice_.duration
        return loads

    # ------------------------------------------------------------- stats

    def utilization(self) -> float:
        """Work / (cores x elapsed) over the whole schedule."""
        if self.elapsed <= 0.0 or self.cores <= 0:
            return 1.0
        return self.work / (self.cores * self.elapsed)

    def imbalance(self) -> float:
        """Max / mean total core load (1.0 = perfectly balanced)."""
        loads = list(self.core_loads().values())
        if not loads:
            return 1.0
        mean = sum(loads) / len(loads)
        if mean <= 0.0:
            return 1.0
        return max(loads) / mean

    def serial_elapsed(self) -> float:
        """Simulated seconds spent in serial phases (the Amdahl floor)."""
        return sum(p.elapsed for p in self.phases if p.kind == "serial")

    def amdahl(self) -> dict:
        """Critical-path / Amdahl accounting of the whole schedule.

        ``speedup`` is the realised speedup over a 1-core execution of
        the same work; ``serial_fraction`` is the share of total work
        that ran in serial phases; ``max_speedup`` is Amdahl's bound
        ``work / serial_work`` (``inf`` when nothing is serial);
        ``critical_path`` is the elapsed time itself — the longest
        chain of phase makespans, which no core count can beat.
        """
        serial_work = sum(p.work for p in self.phases if p.kind == "serial")
        speedup = self.work / self.elapsed if self.elapsed > 0 else 1.0
        return {
            "speedup": speedup,
            "serial_elapsed": self.serial_elapsed(),
            "serial_fraction": (serial_work / self.work) if self.work > 0 else 0.0,
            "max_speedup": (self.work / serial_work) if serial_work > 0 else math.inf,
            "critical_path": self.elapsed,
        }

    def phase_summary(self) -> list[dict]:
        """Per-label aggregation (a label may recur across the schedule):
        occurrence count, total elapsed/work, pooled utilization and the
        worst observed imbalance."""
        by_label: dict[str, dict] = {}
        for p in self.phases:
            row = by_label.setdefault(
                p.label,
                {
                    "label": p.label,
                    "kind": p.kind,
                    "count": 0,
                    "slots": 0,
                    "tasks": 0,
                    "elapsed": 0.0,
                    "work": 0.0,
                    "imbalance": 1.0,
                    "_capacity": 0.0,
                },
            )
            row["count"] += 1
            row["slots"] = max(row["slots"], p.slots)
            row["tasks"] += p.tasks
            row["elapsed"] += p.elapsed
            row["work"] += p.work
            row["imbalance"] = max(row["imbalance"], p.imbalance)
            row["_capacity"] += p.slots * p.elapsed
        out = []
        for row in by_label.values():
            capacity = row.pop("_capacity")
            row["utilization"] = (row["work"] / capacity) if capacity > 0 else 1.0
            out.append(row)
        return out

    def to_dict(self) -> dict:
        """A JSON-serialisable summary (stats + per-phase breakdown; the
        raw task slices are exported separately via the Chrome trace)."""
        return {
            "cores": self.cores,
            "elapsed": self.elapsed,
            "work": self.work,
            "utilization": self.utilization(),
            "imbalance": self.imbalance(),
            "amdahl": self.amdahl(),
            "n_phases": len(self.phases),
            "n_tasks": len(self.tasks),
            "phases": [p.to_dict() for p in self.phases],
        }


def build_schedule(
    phases: Iterable["Phase"], cores: int | None = None
) -> ScheduleReport:
    """Reconstruct the per-core schedule of a recorded phase sequence.

    ``phases`` is anything shaped like ``SimClock.phases``.  ``cores``
    optionally fixes the core count used for whole-schedule utilization;
    by default it is the widest slot reservation any phase made.
    """
    from repro.simtime.clock import lpt_schedule

    slices: list[TaskSlice] = []
    stats: list[PhaseStats] = []
    offset = 0.0
    widest = 1
    total_work = 0.0
    for index, phase in enumerate(phases):
        slots = max(1, int(phase.slots))
        placements = lpt_schedule(phase.durations, slots)
        slots_used = 1 + max((p.slot for p in placements), default=0)
        widest = max(widest, slots)
        work = float(sum(phase.durations))
        total_work += work
        for p in placements:
            slices.append(
                TaskSlice(
                    phase=phase.label,
                    phase_index=index,
                    kind=phase.kind,
                    task=p.task,
                    core=p.slot,
                    start=offset + p.start,
                    duration=p.duration,
                )
            )
        loads = _phase_loads(placements, slots_used)
        mean_load = sum(loads) / len(loads)
        stats.append(
            PhaseStats(
                index=index,
                label=phase.label,
                kind=phase.kind,
                slots=slots,
                tasks=len(phase.durations),
                start=offset,
                elapsed=phase.elapsed,
                work=work,
                utilization=(
                    work / (slots * phase.elapsed) if phase.elapsed > 0 else 1.0
                ),
                imbalance=(max(loads) / mean_load) if mean_load > 0 else 1.0,
            )
        )
        offset += phase.elapsed
    if cores is None:
        cores = widest
    return ScheduleReport(
        tasks=tuple(slices),
        phases=tuple(stats),
        cores=max(1, int(cores)),
        elapsed=offset,
        work=total_work,
    )


def phases_from_span(root) -> list["Phase"]:
    """Collect the ``SimClock``-booked phase leaves of a span tree, in
    the order the clock booked them (pre-order — the tracer appends each
    booking under the innermost open span as it happens, so pre-order
    traversal recovers booking order)."""
    from repro.simtime.clock import Phase

    phases: list[Phase] = []
    for sp in root.iter_spans():
        if sp.kind not in ("parallel", "serial"):
            continue
        durations = tuple(float(d) for d in sp.durations)
        if not durations:
            durations = (float(sp.sim_seconds),)
        phases.append(
            Phase(
                label=sp.name,
                kind=sp.kind,
                durations=durations,
                slots=max(1, int(sp.slots)),
                elapsed=float(sp.sim_seconds),
            )
        )
    return phases


def schedule_from_span(root, cores: int | None = None) -> ScheduleReport:
    """Reconstruct the per-core schedule from a recorded span tree
    (``tracer.root``, or a ``Span.from_dict`` round-trip of one)."""
    return build_schedule(phases_from_span(root), cores=cores)
