"""Chrome-trace export — load simulated schedules into real trace UIs.

Converts a :class:`~repro.obs.schedule.ScheduleReport` into the Trace
Event Format that ``chrome://tracing`` and https://ui.perfetto.dev accept:
a JSON **array of events** where

* each simulated core slot becomes a *thread* (``tid`` = core + 1, named
  via ``thread_name`` metadata events),
* each task slice becomes a *complete* event (``"ph": "X"``) with
  microsecond ``ts``/``dur`` derived from the simulated offsets,
* the phase label is the event name and the phase kind its category, so
  the UI can color parallel scans apart from serial merges.

The array form (rather than the ``{"traceEvents": [...]}`` object) is
deliberately the simplest valid encoding; both loaders accept it and
tests validate it structurally (:func:`validate_chrome_trace`).
"""

from __future__ import annotations

import json

from repro.obs.schedule import ScheduleReport

__all__ = [
    "chrome_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: simulated seconds -> Trace Event Format microseconds
_US = 1e6


def chrome_trace_events(
    report: ScheduleReport,
    *,
    label: str = "repro simulated schedule",
    pid: int = 1,
) -> list[dict]:
    """The Trace Event array for one reconstructed schedule.

    Deterministic: metadata events first (process name, one thread per
    core in core order), then the task slices in schedule order.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    cores = sorted({t.core for t in report.tasks})
    for core in cores:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": core + 1,
                "args": {"name": f"core {core}"},
            }
        )
        # Perfetto sorts threads by this index, keeping core order.
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": core + 1,
                "args": {"sort_index": core},
            }
        )
    for slice_ in report.tasks:
        events.append(
            {
                "ph": "X",
                "name": slice_.phase,
                "cat": slice_.kind,
                "pid": pid,
                "tid": slice_.core + 1,
                "ts": slice_.start * _US,
                "dur": slice_.duration * _US,
                "args": {
                    "task": slice_.task,
                    "phase_index": slice_.phase_index,
                    "sim_start_s": slice_.start,
                    "sim_duration_s": slice_.duration,
                },
            }
        )
    return events


def validate_chrome_trace(events: object) -> list[dict]:
    """Structurally validate a Trace Event array; returns it on success.

    Raises :class:`ValueError` unless ``events`` is a list of dicts each
    carrying ``ph``/``pid``/``tid``/``name``, with numeric non-negative
    ``ts``/``dur`` on every complete (``"X"``) event.  This is the same
    shape check the tests run on exported files, kept in the library so
    any future loader can reuse it.
    """
    if not isinstance(events, list):
        raise ValueError("Chrome trace must be a JSON array of events")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object: {event!r}")
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"event {i} lacks {key!r}: {event!r}")
        if event["ph"] == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"complete event {i} needs numeric {key!r} >= 0"
                    )
    return events


def write_chrome_trace(
    path: str,
    report: ScheduleReport,
    *,
    label: str = "repro simulated schedule",
) -> str:
    """Write the schedule as a Chrome-trace JSON file; returns ``path``.

    Load the result via ``chrome://tracing`` ("Load") or
    https://ui.perfetto.dev ("Open trace file").
    """
    events = validate_chrome_trace(chrome_trace_events(report, label=label))
    with open(path, "w") as fh:
        json.dump(events, fh, indent=1)
    return path
