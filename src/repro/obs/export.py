"""Chrome-trace export — load simulated schedules into real trace UIs.

Converts a :class:`~repro.obs.schedule.ScheduleReport` into the Trace
Event Format that ``chrome://tracing`` and https://ui.perfetto.dev accept:
a JSON **array of events** where

* each simulated core slot becomes a *thread* (``tid`` = core + 1, named
  via ``thread_name`` metadata events),
* each task slice becomes a *complete* event (``"ph": "X"``) with
  microsecond ``ts``/``dur`` derived from the simulated offsets,
* the phase label is the event name and the phase kind its category, so
  the UI can color parallel scans apart from serial merges.

The array form (rather than the ``{"traceEvents": [...]}`` object) is
deliberately the simplest valid encoding; both loaders accept it and
tests validate it structurally (:func:`validate_chrome_trace`).

When a traced span tree is supplied (``span_root=``), the worker-side
subtrees the executors grafted under each phase leaf (see
:func:`repro.obs.tracer.graft_task_spans`) become additional ``cat:
"worker"`` slices nested inside their task's simulated interval — the
trace then shows *what each worker did inside its task*, on every
backend including real process pools.
"""

from __future__ import annotations

import json

from repro.obs.schedule import ScheduleReport
from repro.obs.tracer import Span

__all__ = [
    "chrome_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: simulated seconds -> Trace Event Format microseconds
_US = 1e6


def _phase_leaves(root: Span) -> list[Span]:
    """The phase leaves of a span tree, in pre-order — the exact order
    :func:`repro.obs.schedule.phases_from_span` enumerates them, so the
    position in this list matches ``TaskSlice.phase_index``."""
    leaves: list[Span] = []

    def visit(sp: Span) -> None:
        if sp.kind in ("parallel", "serial"):
            leaves.append(sp)
        for child in sp.children:
            visit(child)

    visit(root)
    return leaves


def _worker_events(
    report: ScheduleReport, span_root: Span, pid: int
) -> list[dict]:
    """``cat: "worker"`` slices for every grafted worker subtree.

    Each phase leaf's ``task[i]`` wrapper is matched to its TaskSlice by
    ``(phase_index, task)``; the wrapper's captured spans are laid out
    sequentially inside the slice, scaled by measured wall time to fill
    the task's *simulated* interval (worker wall clocks are not
    commensurable with the simulated timeline, their proportions are).
    """
    slices = {(t.phase_index, t.task): t for t in report.tasks}
    events: list[dict] = []
    for phase_index, leaf in enumerate(_phase_leaves(span_root)):
        for wrapper in leaf.children:
            if wrapper.kind != "worker":
                continue
            slice_ = slices.get((phase_index, wrapper.attrs.get("task")))
            if slice_ is None:
                continue
            total_wall = sum(c.wall_seconds for c in wrapper.children)
            if total_wall <= 0.0 or slice_.duration <= 0.0:
                continue
            scale = slice_.duration / total_wall
            offset = slice_.start
            for child in wrapper.children:
                duration = child.wall_seconds * scale
                events.append(
                    {
                        "ph": "X",
                        "name": child.name,
                        "cat": "worker",
                        "pid": pid,
                        "tid": slice_.core + 1,
                        "ts": offset * _US,
                        "dur": duration * _US,
                        "args": {
                            "task": slice_.task,
                            "phase_index": phase_index,
                            "wall_seconds": child.wall_seconds,
                            "kind": child.kind,
                        },
                    }
                )
                offset += duration
    return events


def chrome_trace_events(
    report: ScheduleReport,
    *,
    label: str = "repro simulated schedule",
    pid: int = 1,
    span_root: Span | None = None,
) -> list[dict]:
    """The Trace Event array for one reconstructed schedule.

    Deterministic: metadata events first (process name, one thread per
    core in core order), then the task slices in schedule order, then —
    when ``span_root`` is given — the grafted worker-side slices.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    cores = sorted({t.core for t in report.tasks})
    for core in cores:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": core + 1,
                "args": {"name": f"core {core}"},
            }
        )
        # Perfetto sorts threads by this index, keeping core order.
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": core + 1,
                "args": {"sort_index": core},
            }
        )
    for slice_ in report.tasks:
        events.append(
            {
                "ph": "X",
                "name": slice_.phase,
                "cat": slice_.kind,
                "pid": pid,
                "tid": slice_.core + 1,
                "ts": slice_.start * _US,
                "dur": slice_.duration * _US,
                "args": {
                    "task": slice_.task,
                    "phase_index": slice_.phase_index,
                    "sim_start_s": slice_.start,
                    "sim_duration_s": slice_.duration,
                },
            }
        )
    if span_root is not None:
        events.extend(_worker_events(report, span_root, pid))
    return events


def validate_chrome_trace(events: object) -> list[dict]:
    """Structurally validate a Trace Event array; returns it on success.

    Raises :class:`ValueError` unless ``events`` is a list of dicts each
    carrying ``ph``/``pid``/``tid``/``name``, with numeric non-negative
    ``ts``/``dur`` on every complete (``"X"``) event.  This is the same
    shape check the tests run on exported files, kept in the library so
    any future loader can reuse it.
    """
    if not isinstance(events, list):
        raise ValueError("Chrome trace must be a JSON array of events")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object: {event!r}")
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"event {i} lacks {key!r}: {event!r}")
        if event["ph"] == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"complete event {i} needs numeric {key!r} >= 0"
                    )
    return events


def write_chrome_trace(
    path: str,
    report: ScheduleReport,
    *,
    label: str = "repro simulated schedule",
    span_root: Span | None = None,
) -> str:
    """Write the schedule as a Chrome-trace JSON file; returns ``path``.

    Load the result via ``chrome://tracing`` ("Load") or
    https://ui.perfetto.dev ("Open trace file").
    """
    events = validate_chrome_trace(
        chrome_trace_events(report, label=label, span_root=span_root)
    )
    with open(path, "w") as fh:
        json.dump(events, fh, indent=1)
    return path
