"""Process-local counters and gauges — the metrics side of ``repro.obs``.

Engines increment named counters at well-defined points (rows scanned,
delta-map entries emitted, merge fan-in, NUMA penalties applied,
checkpoint hits, ...).  The registry is deliberately tiny: a counter is a
locked integer/float, a gauge a locked last-value — enough to answer
"what did that query actually do" without a dependency, and safe under
the real-thread executor (every mutation takes the instrument's lock, so
serial and threaded runs of the same workload produce identical
snapshots).

The default registry is process-local (:func:`metrics`).  Tests and the
CLI ``reset()`` it around a workload and read ``snapshot()`` after.
"""

from __future__ import annotations

import threading

#: The metric catalogue: every name the instrumented engines emit, with a
#: one-line meaning.  Kept in one place so the docs, the CLI and the
#: tests agree on the vocabulary (see docs/observability.md).
CATALOGUE: dict[str, str] = {
    "step1.rows_scanned": "records scanned by ParTime Step 1 (all paths)",
    "step1.delta_entries": "consolidated delta-map entries emitted by Step 1",
    "step2.merges": "Step 2 merge operations performed",
    "step2.merge_fan_in": "delta maps fed into Step 2 merges (sum of k)",
    "scan.cycles": "ClockScan shared-scan cycles executed",
    "scan.rows_scanned": "rows swept by ClockScan base passes",
    "cluster.batches": "cluster batches executed",
    "cluster.numa_penalty_applied": "node scans priced with a remote-NUMA penalty",
    "timeline.checkpoint_hits": "Timeline Index lookups resumed from a checkpoint",
    "hybrid.queries": "queries answered by the hybrid index + scan",
    "hybrid.frozen_events": "frozen-index events considered by hybrid probes",
    "hybrid.supplemental_events": "post-freeze closing events fed to hybrid folds",
    "server.connections": "client connections accepted by the wire-protocol server",
    "server.queries": "SQL statements received over the wire (incl. failed ones)",
    "server.batches": "admission batches cut by the server's batch former",
    "server.queue_depth": "queued statements at the most recent batch cut (gauge)",
    "faults.injected": "faults injected by the active FaultPlan",
    "faults.retries": "task/append attempts retried after an injected fault",
    "faults.gave_up": "tasks abandoned after exhausting their RetryPolicy",
    "faults.backoff_seconds": "simulated backoff seconds booked by fault retries",
}


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """A thread-safe last-value instrument."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class MetricsRegistry:
    """A named collection of counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """The counter with this name (created on first use)."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge with this name (created on first use)."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def snapshot(self) -> dict:
        """All current values: ``{"counters": {...}, "gauges": {...}}``.

        Zero-valued instruments are included — an explicit zero is
        information ("no checkpoint was hit"), a missing key is not.
        """
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            }

    def reset(self) -> None:
        """Drop all instruments (names re-register on next use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()

    def format_table(self) -> str:
        """Aligned plain-text rendering of the snapshot."""
        snap = self.snapshot()
        rows = [("counter", n, v) for n, v in snap["counters"].items()]
        rows += [("gauge", n, v) for n, v in snap["gauges"].items()]
        if not rows:
            return "(no metrics recorded)"
        width = max(len(n) for _k, n, _v in rows)
        lines = []
        for kind, name, value in rows:
            shown = f"{value:,}" if isinstance(value, int) else f"{value:g}"
            lines.append(f"{name.ljust(width)}  {shown:>14}  ({kind})")
        return "\n".join(lines)


_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY


# ---------------------------------------------------------------------------
# Cross-process snapshot algebra
# ---------------------------------------------------------------------------
#
# The registry is process-local, so work done inside a
# :class:`~repro.simtime.executor.ProcessExecutor` worker increments the
# *worker's* registry — invisible to the parent.  Workers therefore ship a
# snapshot *delta* (what their task added) back with each result, and the
# parent folds it in.  This is what keeps the metrics side of the
# executor-parity contract: a workload booked under serial, thread and
# process execution produces identical parent-side snapshots.


def diff_snapshots(before: dict, after: dict) -> dict:
    """What ``after`` added on top of ``before``.

    Counters subtract; gauges are last-value, so the delta carries every
    gauge whose value changed (or appeared) since ``before``.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta or name not in before.get("counters", {}):
            counters[name] = delta
    gauges = {}
    before_gauges = before.get("gauges", {})
    for name, value in after.get("gauges", {}).items():
        if name not in before_gauges or before_gauges[name] != value:
            gauges[name] = value
    return {"counters": counters, "gauges": gauges}


def merge_delta(delta: dict, registry: MetricsRegistry | None = None) -> None:
    """Fold a :func:`diff_snapshots` delta into ``registry`` (the default
    process-local one when omitted)."""
    registry = registry or metrics()
    for name, value in delta.get("counters", {}).items():
        registry.counter(name).add(value)
    for name, value in delta.get("gauges", {}).items():
        registry.gauge(name).set(value)
