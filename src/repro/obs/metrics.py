"""Process-local counters, gauges and histograms — the metrics side of
``repro.obs``.

Engines increment named counters at well-defined points (rows scanned,
delta-map entries emitted, merge fan-in, NUMA penalties applied,
checkpoint hits, ...).  The registry is deliberately tiny: a counter is a
locked integer/float, a gauge a locked last-value, a histogram a locked
set of sparse log-spaced buckets — enough to answer "what did that query
actually do" without a dependency, and safe under the real-thread
executor (every mutation takes the instrument's lock, so serial and
threaded runs of the same workload produce identical snapshots).

Histograms use exact base-2 buckets (:func:`bucket_key`): the bucket a
value lands in is a pure function of its floating-point exponent, so the
same observation produces the same bucket on every platform and under
every multiprocessing start method.  That is what lets worker-side
histograms merge *exactly* into the parent registry — bucket counts are
integers, and ``min``/``max`` move monotonically — preserving the
executor-parity contract across Serial/Thread/Process backends.

The default registry is process-local (:func:`metrics`).  Tests and the
CLI ``reset()`` it around a workload and read ``snapshot()`` after.
"""

from __future__ import annotations

import math
import threading

#: The metric catalogue: every counter/gauge name the instrumented
#: engines emit, with a one-line meaning.  Kept in one place so the docs,
#: the CLI and the tests agree on the vocabulary (see
#: docs/observability.md).
CATALOGUE: dict[str, str] = {
    "step1.rows_scanned": "records scanned by ParTime Step 1 (all paths)",
    "step1.delta_entries": "consolidated delta-map entries emitted by Step 1",
    "step2.merges": "Step 2 merge operations performed",
    "step2.merge_fan_in": "delta maps fed into Step 2 merges (sum of k)",
    "scan.cycles": "ClockScan shared-scan cycles executed",
    "scan.rows_scanned": "rows swept by ClockScan base passes",
    "cluster.batches": "cluster batches executed",
    "cluster.numa_penalty_applied": "node scans priced with a remote-NUMA penalty",
    "timeline.checkpoint_hits": "Timeline Index lookups resumed from a checkpoint",
    "hybrid.queries": "queries answered by the hybrid index + scan",
    "hybrid.frozen_events": "frozen-index events considered by hybrid probes",
    "hybrid.supplemental_events": "post-freeze closing events fed to hybrid folds",
    "server.connections": "client connections accepted by the wire-protocol server",
    "server.queries": "SQL statements received over the wire (incl. failed ones)",
    "server.batches": "admission batches cut by the server's batch former",
    "server.queue_depth": "queued statements at the most recent batch cut (gauge)",
    "cracking.cracks": "holes cracked into sorted pieces by query traffic",
    "cracking.refinements": "pieces installed by the background refinement worker",
    "cracking.queries_from_index": "adaptive queries answered from index pieces alone",
    "cracking.pieces": "pieces in the cracked index catalogue (gauge, per dim)",
    "faults.injected": "faults injected by the active FaultPlan",
    "faults.retries": "task/append attempts retried after an injected fault",
    "faults.gave_up": "tasks abandoned after exhausting their RetryPolicy",
    "faults.backoff_seconds": "simulated backoff seconds booked by fault retries",
}

#: Catalogue names that are gauges (everything else in ``CATALOGUE`` is a
#: counter).  Used by the SQL introspection layer to report a kind for
#: instruments that have not registered yet.
GAUGE_NAMES: frozenset[str] = frozenset({"server.queue_depth", "cracking.pieces"})

#: The histogram catalogue: every distribution the serving stack and the
#: ParTime engine record, with a one-line meaning.  Labelled variants
#: (e.g. ``server.sim_response{table=bookings}``) share the base name's
#: meaning.
HISTOGRAM_CATALOGUE: dict[str, str] = {
    "server.queue_seconds": "wall seconds a statement waited for its batch cut",
    "server.service_seconds": "wall seconds a statement's batch spent executing",
    "server.batch_size": "statements per admission batch",
    "server.sim_response": "simulated response seconds per served statement",
    "partime.step1_seconds": "simulated seconds booked per ParTime Step 1 phase",
    "partime.step2_seconds": "simulated seconds booked per ParTime Step 2 phase",
}

#: Gauges that record a high-water mark.  ``merge_delta`` folds these
#: with ``max`` instead of last-write-wins, so the parent-side value is
#: independent of the order worker deltas happen to arrive in (fork and
#: spawn pools complete tasks in different orders).
HIGH_WATER_GAUGES: frozenset[str] = frozenset({"server.queue_depth"})


def labelled(name: str, **labels) -> str:
    """Encode a labelled instrument name: ``base{k=v,...}``, keys sorted.

    Labels are part of the instrument's identity — a labelled histogram
    is just a histogram whose name carries its dimensions, so snapshots,
    deltas and merges need no special casing.

    >>> labelled("server.sim_response", table="bookings")
    'server.sim_response{table=bookings}'
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_labels(name: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`labelled`: ``(base_name, labels)``.

    >>> parse_labels("server.sim_response{table=bookings}")
    ('server.sim_response', {'table': 'bookings'})
    >>> parse_labels("server.batch_size")
    ('server.batch_size', {})
    """
    if not name.endswith("}") or "{" not in name:
        return name, {}
    base, _, inner = name.partition("{")
    labels: dict[str, str] = {}
    for pair in inner[:-1].split(","):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        labels[key] = value
    return base, labels


def is_high_water(name: str) -> bool:
    """Whether a gauge records a high-water mark (merged with ``max``)."""
    base, _labels = parse_labels(name)
    return base in HIGH_WATER_GAUGES or base.endswith(".peak")


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """A thread-safe last-value instrument."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


def bucket_key(value: float) -> str:
    """The exact base-2 bucket a value belongs to.

    Positive values land in ``p<e>`` where ``e`` is the binary exponent
    from :func:`math.frexp` (bucket ``p<e>`` covers ``[2**(e-1), 2**e)``);
    negative values mirror into ``n<e>``; zero gets its own bucket.  The
    key is a pure function of the IEEE-754 bit pattern — no float
    arithmetic, no platform dependence — which is what makes histogram
    merges exact across process boundaries.

    >>> bucket_key(0.75), bucket_key(1.0), bucket_key(0.0), bucket_key(-3.0)
    ('p0', 'p1', 'z', 'n2')
    """
    if value == 0.0:
        return "z"
    _mantissa, exponent = math.frexp(abs(value))
    return f"p{exponent}" if value > 0 else f"n{exponent}"


def bucket_bounds(key: str) -> tuple[float, float]:
    """``(low, high)`` of a bucket key; the bucket covers ``[low, high)``.

    >>> bucket_bounds("p1")
    (1.0, 2.0)
    >>> bucket_bounds("p0")
    (0.5, 1.0)
    """
    if key == "z":
        return (0.0, 0.0)
    exponent = int(key[1:])
    high = math.ldexp(1.0, exponent)
    low = math.ldexp(0.5, exponent)
    if key[0] == "p":
        return (low, high)
    return (-high, -low)


def _bucket_sort_value(key: str) -> float:
    """A sort key that orders buckets by the values they contain."""
    low, high = bucket_bounds(key)
    return (low + high) / 2.0


class Histogram:
    """A thread-safe, exactly-mergeable log-bucketed distribution.

    Buckets are sparse (``{bucket_key: count}``); alongside them the
    instrument tracks exact ``count``/``sum``/``min``/``max``.  All five
    move monotonically under observation (sum in magnitude for the usual
    non-negative durations), so a snapshot delta between two points in
    time merges losslessly into another registry — see
    :func:`diff_snapshots` / :func:`merge_delta`.
    """

    __slots__ = ("name", "_buckets", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: dict[str, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        key = bucket_key(value)
        with self._lock:
            self._buckets[key] = self._buckets.get(key, 0) + 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def value_snapshot(self) -> dict:
        """This histogram's state as plain data (JSON-serialisable)."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": dict(sorted(self._buckets.items(),
                                       key=lambda kv: _bucket_sort_value(kv[0]))),
            }

    def merge(self, snap: dict) -> None:
        """Fold another histogram snapshot (or delta) into this one."""
        with self._lock:
            for key, n in snap.get("buckets", {}).items():
                self._buckets[key] = self._buckets.get(key, 0) + int(n)
            self._count += int(snap.get("count", 0))
            self._sum += float(snap.get("sum", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                other = snap.get(bound)
                if other is None:
                    continue
                ours = self._min if bound == "min" else self._max
                merged = float(other) if ours is None else pick(ours, float(other))
                if bound == "min":
                    self._min = merged
                else:
                    self._max = merged

    def quantile(self, q: float) -> float | None:
        """An estimated quantile (exact bucket bounds, clamped to the
        observed ``min``/``max``)."""
        return snapshot_quantile(self.value_snapshot(), q)


def snapshot_quantile(snap: dict, q: float) -> float | None:
    """Estimate the ``q``-quantile of a histogram snapshot.

    Walks the buckets in value order until the cumulative count crosses
    ``q * count`` and reports that bucket's upper bound, clamped to the
    exact observed ``min``/``max`` so single-observation histograms
    answer exactly.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = snap.get("count", 0)
    if not total:
        return None
    rank = q * total
    seen = 0
    estimate = None
    for key in sorted(snap.get("buckets", {}), key=_bucket_sort_value):
        seen += snap["buckets"][key]
        if seen >= rank:
            estimate = bucket_bounds(key)[1]
            break
    if estimate is None:  # q == 1.0 edge or empty buckets
        estimate = snap.get("max")
    lo, hi = snap.get("min"), snap.get("max")
    if lo is not None:
        estimate = max(estimate, lo)
    if hi is not None:
        estimate = min(estimate, hi)
    return estimate


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter with this name (created on first use)."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge with this name (created on first use)."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram with this name + labels (created on first use)."""
        name = labelled(name, **labels)
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def snapshot(self) -> dict:
        """All current values:
        ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``.

        Zero-valued instruments are included — an explicit zero is
        information ("no checkpoint was hit"), a missing key is not.
        """
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.value_snapshot()
                    for n, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop all instruments (names re-register on next use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def format_table(self) -> str:
        """Aligned plain-text rendering of the snapshot."""
        snap = self.snapshot()
        rows = [("counter", n, v) for n, v in snap["counters"].items()]
        rows += [("gauge", n, v) for n, v in snap["gauges"].items()]
        for name, hist in snap["histograms"].items():
            p95 = snapshot_quantile(hist, 0.95)
            shown = (
                f"n={hist['count']} p95={p95:g}" if p95 is not None
                else f"n={hist['count']}"
            )
            rows.append(("histogram", name, shown))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(n) for _k, n, _v in rows)
        lines = []
        for kind, name, value in rows:
            if isinstance(value, int):
                shown = f"{value:,}"
            elif isinstance(value, float):
                shown = f"{value:g}"
            else:
                shown = str(value)
            lines.append(f"{name.ljust(width)}  {shown:>14}  ({kind})")
        return "\n".join(lines)


_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY


# ---------------------------------------------------------------------------
# Cross-process snapshot algebra
# ---------------------------------------------------------------------------
#
# The registry is process-local, so work done inside a
# :class:`~repro.simtime.executor.ProcessExecutor` worker increments the
# *worker's* registry — invisible to the parent.  Workers therefore ship a
# snapshot *delta* (what their task added) back with each result, and the
# parent folds it in.  This is what keeps the metrics side of the
# executor-parity contract: a workload booked under serial, thread and
# process execution produces identical parent-side snapshots.


def _diff_histogram(before: dict | None, after: dict) -> dict | None:
    """What ``after`` observed on top of ``before`` (``None``: nothing)."""
    if before is None:
        return dict(after) if after.get("count") else None
    count = after.get("count", 0) - before.get("count", 0)
    if count <= 0:
        return None
    buckets = {}
    before_buckets = before.get("buckets", {})
    for key, n in after.get("buckets", {}).items():
        delta = int(n) - int(before_buckets.get(key, 0))
        if delta:
            buckets[key] = delta
    delta_hist: dict = {
        "count": count,
        "sum": after.get("sum", 0.0) - before.get("sum", 0.0),
        "min": None,
        "max": None,
        "buckets": buckets,
    }
    # min only ever decreases and max only ever increases: the delta
    # carries a bound exactly when the new observations moved it, so the
    # merge's min()/max() fold reconstructs ``after`` losslessly.
    if after.get("min") != before.get("min"):
        delta_hist["min"] = after.get("min")
    if after.get("max") != before.get("max"):
        delta_hist["max"] = after.get("max")
    return delta_hist


def diff_snapshots(before: dict, after: dict) -> dict:
    """What ``after`` added on top of ``before``.

    Counters subtract; gauges are last-value, so the delta carries every
    gauge whose value changed (or appeared) since ``before``; histograms
    subtract bucket-wise (their counts are monotonic) and carry
    ``min``/``max`` only when the new observations moved them.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta or name not in before.get("counters", {}):
            counters[name] = delta
    gauges = {}
    before_gauges = before.get("gauges", {})
    for name, value in after.get("gauges", {}).items():
        if name not in before_gauges or before_gauges[name] != value:
            gauges[name] = value
    histograms = {}
    before_hists = before.get("histograms", {})
    for name, value in after.get("histograms", {}).items():
        delta_hist = _diff_histogram(before_hists.get(name), value)
        if delta_hist is not None or name not in before_hists:
            histograms[name] = delta_hist if delta_hist is not None else {
                "count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {},
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def merge_delta(delta: dict, registry: MetricsRegistry | None = None) -> None:
    """Fold a :func:`diff_snapshots` delta into ``registry`` (the default
    process-local one when omitted).

    Counters and histogram buckets add; plain gauges keep last-write
    semantics; high-water gauges (:data:`HIGH_WATER_GAUGES`, and any
    ``*.peak`` name) fold with ``max`` so the merged value does not
    depend on the order concurrent worker deltas arrive in.
    """
    registry = registry or metrics()
    for name, value in delta.get("counters", {}).items():
        registry.counter(name).add(value)
    for name, value in delta.get("gauges", {}).items():
        inst = registry.gauge(name)
        if is_high_water(name):
            inst.set(max(inst.value, value))
        else:
            inst.set(value)
    for name, value in delta.get("histograms", {}).items():
        registry.histogram(name).merge(value)


def comparable_snapshot(snap: dict) -> dict:
    """A backend-independent projection of a snapshot.

    Counters and gauges are deterministic across executor backends, but
    histogram *values* record measured wall/sim durations that legitimately
    differ run to run; what parity can pin is the shape — which
    distributions exist and how many observations each took.  The parity
    suites compare this projection.
    """
    return {
        "counters": dict(snap.get("counters", {})),
        "gauges": dict(snap.get("gauges", {})),
        "histograms": {
            name: value.get("count", 0)
            for name, value in snap.get("histograms", {}).items()
        },
    }
