"""``repro.obs`` — query tracing and phase metrics.

The observability layer of the reproduction (see docs/observability.md):

* :mod:`repro.obs.tracer` — hierarchical spans mirroring every
  ``SimClock`` phase booking plus explicit engine spans, with simulated
  *and* wall-clock time per node;
* :mod:`repro.obs.metrics` — process-local counters/gauges (rows
  scanned, delta entries emitted, merge fan-in, NUMA penalties,
  checkpoint hits, ...).

Surfaced three ways: ``python -m repro trace <target>`` prints a span
tree and the metric snapshot; benchmark drivers accept ``--trace-json``
to embed span trees in ``benchmarks/results`` JSON; and
``Database.explain`` annotates plans with the spans of the statement's
last execution.
"""

from repro.obs.metrics import (
    CATALOGUE,
    Counter,
    Gauge,
    MetricsRegistry,
    diff_snapshots,
    merge_delta,
    metrics,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    current_tracer,
    record_measure,
    record_phase,
    span,
    tracing,
)

__all__ = [
    "CATALOGUE",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "diff_snapshots",
    "merge_delta",
    "metrics",
    "Span",
    "Tracer",
    "current_tracer",
    "record_measure",
    "record_phase",
    "span",
    "tracing",
]
