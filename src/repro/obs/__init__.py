"""``repro.obs`` — query tracing, phase metrics and schedule analysis.

The observability layer of the reproduction (see docs/observability.md):

* :mod:`repro.obs.tracer` — hierarchical spans mirroring every
  ``SimClock`` phase booking plus explicit engine spans, with simulated
  *and* wall-clock time per node;
* :mod:`repro.obs.metrics` — process-local counters/gauges (rows
  scanned, delta entries emitted, merge fan-in, NUMA penalties,
  checkpoint hits, ...) plus mergeable log-bucketed histograms
  (serving latency decomposition, ParTime step times);
* :mod:`repro.obs.slo` — burn-rate accounting of the serving stack's
  latency/availability objectives over simulated time;
* :mod:`repro.obs.events` — the ring-buffered structured event log
  (batch cuts, fault injections, worker kills, ...), exportable as
  JSONL;
* :mod:`repro.obs.schedule` — per-core Gantt reconstruction of any
  recorded phase list or span tree, with utilization, imbalance and
  Amdahl/critical-path statistics;
* :mod:`repro.obs.export` — Chrome-trace (``chrome://tracing`` /
  Perfetto) export of reconstructed schedules.

Surfaced four ways: ``python -m repro trace <target>`` prints a span
tree and the metric snapshot (``--chrome`` additionally exports the
schedule); ``python -m repro bench`` emits schema-versioned
``BENCH_*.json`` telemetry with per-phase schedule stats; benchmark
drivers accept ``--trace-json`` to embed span trees in
``benchmarks/results`` JSON; and ``Database.explain`` annotates plans
with the spans of the statement's last execution.
"""

from repro.obs.export import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.events import EventLog, events
from repro.obs.metrics import (
    CATALOGUE,
    HISTOGRAM_CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    comparable_snapshot,
    diff_snapshots,
    labelled,
    merge_delta,
    metrics,
)
from repro.obs.slo import DEFAULT_OBJECTIVES, SLObjective, SloTracker
from repro.obs.schedule import (
    PhaseStats,
    ScheduleReport,
    TaskSlice,
    build_schedule,
    phases_from_span,
    schedule_from_span,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    current_tracer,
    record_measure,
    record_phase,
    span,
    tracing,
)

__all__ = [
    "CATALOGUE",
    "HISTOGRAM_CATALOGUE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "comparable_snapshot",
    "diff_snapshots",
    "labelled",
    "merge_delta",
    "metrics",
    "EventLog",
    "events",
    "DEFAULT_OBJECTIVES",
    "SLObjective",
    "SloTracker",
    "PhaseStats",
    "ScheduleReport",
    "TaskSlice",
    "build_schedule",
    "phases_from_span",
    "schedule_from_span",
    "chrome_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "Span",
    "Tracer",
    "current_tracer",
    "record_measure",
    "record_phase",
    "span",
    "tracing",
]
