"""Service-level objectives over *simulated* time — burn-rate accounting.

ParTime's pitch is predictable response times under load (PAPER.md §6:
the Amadeus deployment promises response-time guarantees; Figures 13/15
are latency *distributions*).  This module turns that promise into
checkable objectives: each :class:`SLObjective` declares what fraction
of served statements must be good (fast enough, or simply not an
error), and a :class:`SloTracker` scores recent traffic against it over
several look-back windows.

Everything is booked in **simulated seconds**: the tracker's clock
advances by each admission batch's simulated cycle time (what the
paper's 32-core machine would have observed), not by host wall time, so
burn rates are as deterministic as the serving simulation itself.

The *burn rate* is the standard SRE ratio: the fraction of the error
budget being consumed, ``bad_fraction / (1 - target)``.  A burn rate of
1.0 spends the budget exactly as fast as the objective allows; above
1.0 the objective is burning down; sustained high burn over a long
window is an incident.  Multi-window reporting (short + long) is what
distinguishes a blip from a trend.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

#: Look-back windows, in simulated seconds (short blip -> long trend).
DEFAULT_WINDOWS: tuple[float, ...] = (1.0, 10.0, 60.0)


@dataclass(frozen=True)
class SLObjective:
    """One objective: what fraction of events must be good.

    ``kind`` is ``"latency"`` (good = at or under ``threshold_seconds``)
    or ``"error_rate"`` (good = not an error).  ``target`` is the
    required good fraction, e.g. ``0.95`` for a p95 objective.
    """

    name: str
    kind: str  # "latency" | "error_rate"
    target: float
    threshold_seconds: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and self.threshold_seconds is None:
            raise ValueError("latency objectives need threshold_seconds")

    def is_bad(self, latency_seconds: float, error: bool) -> bool:
        if self.kind == "error_rate":
            return error
        return error or latency_seconds > float(self.threshold_seconds)

    @property
    def budget(self) -> float:
        """The error budget: the allowed bad fraction, ``1 - target``."""
        return 1.0 - self.target


#: The serving stack's shipped objectives.  Thresholds are simulated
#: response seconds (`server.sim_response`); the serving benchmark's
#: Table-1 mix sits comfortably inside them on the paper's machine, so a
#: burn rate above 1.0 means the simulation got slower, not the host.
DEFAULT_OBJECTIVES: tuple[SLObjective, ...] = (
    SLObjective(
        "sim_response_p95", "latency", target=0.95, threshold_seconds=0.050,
        description="95% of statements answer within 50 simulated ms",
    ),
    SLObjective(
        "sim_response_p99", "latency", target=0.99, threshold_seconds=0.250,
        description="99% of statements answer within 250 simulated ms",
    ),
    SLObjective(
        "availability", "error_rate", target=0.99,
        description="99% of statements succeed",
    ),
)


class SloTracker:
    """Scores recent served statements against a set of objectives.

    ``advance(sim_seconds)`` moves the tracker's simulated clock (called
    once per admission batch with the batch's simulated cycle time);
    ``record(latency, error)`` books one served statement at the current
    simulated instant.  ``burn_rates()`` reports one row per
    (objective, window).
    """

    def __init__(
        self,
        objectives: tuple[SLObjective, ...] = DEFAULT_OBJECTIVES,
        windows: tuple[float, ...] = DEFAULT_WINDOWS,
        capacity: int = 8192,
    ) -> None:
        self.objectives = tuple(objectives)
        self.windows = tuple(windows)
        self._events: deque[tuple[float, float, bool]] = deque(maxlen=capacity)
        self._sim_now = 0.0
        self._lock = threading.Lock()

    @property
    def sim_now(self) -> float:
        return self._sim_now

    def advance(self, sim_seconds: float) -> None:
        """Advance the simulated clock (non-negative increments only)."""
        if sim_seconds < 0:
            raise ValueError("simulated time cannot run backwards")
        with self._lock:
            self._sim_now += float(sim_seconds)

    def record(self, latency_seconds: float, error: bool = False) -> None:
        """Book one served statement at the current simulated instant."""
        with self._lock:
            self._events.append(
                (self._sim_now, float(latency_seconds), bool(error))
            )

    def burn_rates(self) -> list[dict]:
        """One row per (objective, window): counts, burn rate, status.

        ``status`` is ``"ok"`` (burn <= 1), ``"burn"`` (budget burning
        faster than allowed) or ``"idle"`` (no traffic in the window).
        """
        with self._lock:
            now = self._sim_now
            snapshot = list(self._events)
        rows: list[dict] = []
        for objective in self.objectives:
            for window in self.windows:
                recent = [e for e in snapshot if e[0] >= now - window]
                total = len(recent)
                bad = sum(
                    1 for _ts, latency, error in recent
                    if objective.is_bad(latency, error)
                )
                if total:
                    bad_fraction = bad / total
                    burn = bad_fraction / objective.budget
                    status = "ok" if burn <= 1.0 else "burn"
                else:
                    bad_fraction = 0.0
                    burn = 0.0
                    status = "idle"
                rows.append({
                    "objective": objective.name,
                    "kind": objective.kind,
                    "window_seconds": window,
                    "target": objective.target,
                    "threshold_seconds": objective.threshold_seconds,
                    "total": total,
                    "bad": bad,
                    "bad_fraction": bad_fraction,
                    "burn_rate": burn,
                    "status": status,
                })
        return rows

    def worst_burn(self) -> float:
        """The highest burn rate across all (objective, window) rows."""
        rows = self.burn_rates()
        return max((r["burn_rate"] for r in rows), default=0.0)
