"""Hierarchical query tracing — the span side of ``repro.obs``.

A :class:`Span` is one named piece of work with a *wall-clock* duration
(what the CPU actually did, measured through
:mod:`repro.simtime.measure`) and a *simulated* duration (what the
paper's 32-core machine would have observed, as booked by
:class:`~repro.simtime.clock.SimClock`).  Spans nest: a query span
contains its Step 1 map phase, Step 2 merge phase, frozen-index probes,
cluster batches, and so on.

The integration points are deliberately few:

* every ``SimClock.parallel``/``SimClock.serial`` booking is mirrored as
  a *phase* leaf under the innermost open span (``record_phase``);
* ``measured(label=...)`` call sites add *measure* leaves
  (``record_measure``) — sub-phase provenance without double-booking
  simulated time (measure leaves carry ``sim_seconds = 0``);
* engines open *query*/*probe* spans around their entry points with the
  :func:`span` context manager.

There is one process-local active tracer (:func:`current_tracer`),
activated with :func:`tracing`.  When ``tracing()`` is entered while a
tracer is already active, the new root is grafted into the outer tree so
an outer trace (e.g. the ``repro trace`` CLI) still sees everything an
inner trace (e.g. the SQL layer's per-statement trace) records.

When no tracer is active every hook is a no-op behind a single ``None``
check, so the instrumented hot paths cost nothing in benchmarks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.simtime.measure import measured

#: Span kinds, in the order they usually appear in a tree.  The
#: ``worker*`` kinds only appear under phase leaves: they wrap span
#: subtrees captured inside executor tasks (possibly in another process)
#: and grafted back under the phase that dispatched them.  A captured
#: parallel/serial booking is renamed to ``worker-parallel``/
#: ``worker-serial`` with its simulated time moved into attrs, so the
#: schedule reconstruction (:func:`repro.obs.schedule.phases_from_span`)
#: and ``sim_total()`` only ever see the parent clock's bookings.
KINDS = (
    "root", "query", "parallel", "serial", "probe", "span", "measure",
    "worker", "worker-parallel", "worker-serial",
)


@dataclass
class Span:
    """One node of a trace tree.

    ``wall_seconds`` is measured wall-clock work (for parallel phases:
    the *sum* over tasks); ``sim_seconds`` is the simulated contribution
    (for parallel phases: the makespan over the booked slots; zero for
    measure/probe spans, whose time is already inside an enclosing
    phase).
    """

    name: str
    kind: str = "span"
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    durations: tuple[float, ...] = ()
    slots: int = 0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    # ------------------------------------------------------------ queries

    def sim_total(self) -> float:
        """Simulated elapsed time of this subtree.

        Phases booked by a ``SimClock`` compose the way the clock does:
        serially across phases (the clock already folded each parallel
        phase to its makespan), so the subtree total is a plain sum.
        """
        return self.sim_seconds + sum(c.sim_total() for c in self.children)

    def wall_work(self) -> float:
        """CPU-seconds of measured work in phase leaves of this subtree
        (independent of the simulated degree of parallelism)."""
        own = self.wall_seconds if self.kind in ("parallel", "serial") else 0.0
        return own + sum(c.wall_work() for c in self.children)

    def iter_spans(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> "Span | None":
        """First span in the subtree (pre-order) with the given name."""
        for sp in self.iter_spans():
            if sp.name == name:
                return sp
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [sp for sp in self.iter_spans() if sp.name == name]

    # ------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        """A JSON-serialisable representation (round-trips via
        :meth:`from_dict`)."""
        out: dict = {
            "name": self.name,
            "kind": self.kind,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
        }
        if self.durations:
            out["durations"] = list(self.durations)
        if self.slots:
            out["slots"] = self.slots
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            kind=data.get("kind", "span"),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            sim_seconds=float(data.get("sim_seconds", 0.0)),
            durations=tuple(data.get("durations", ())),
            slots=int(data.get("slots", 0)),
            attrs=dict(data.get("attrs", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    # ----------------------------------------------------------- rendering

    def format_tree(self, sim_digits: int = 6) -> str:
        """An aligned tree, one line per span, sim + wall columns."""
        lines: list[str] = []
        self._format_into(lines, prefix="", is_last=True, is_root=True,
                          sim_digits=sim_digits)
        return "\n".join(lines)

    def _describe(self) -> str:
        if self.kind == "parallel":
            return f"[parallel x{len(self.durations)} on {self.slots} slots]"
        if self.kind == "serial":
            return "[serial]"
        if self.kind in ("root", "span"):
            return ""
        return f"[{self.kind}]"

    def _format_into(self, lines, prefix, is_last, is_root, sim_digits):
        connector = "" if is_root else ("`- " if is_last else "|- ")
        desc = self._describe()
        head = f"{prefix}{connector}{self.name}"
        if desc:
            head += f" {desc}"
        cols = f"sim {self.sim_total():.{sim_digits}f}s"
        if self.kind in ("parallel", "serial"):
            cols += f"  work {self.wall_seconds:.{sim_digits}f}s"
        elif self.wall_seconds:
            cols += f"  wall {self.wall_seconds:.{sim_digits}f}s"
        lines.append(f"{head:<58} {cols}")
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "|  ")
        for i, child in enumerate(self.children):
            child._format_into(
                lines, child_prefix, i == len(self.children) - 1, False,
                sim_digits,
            )


class Tracer:
    """Collects a tree of spans; one instance per traced execution."""

    def __init__(self, name: str = "trace") -> None:
        self.root = Span(name, kind="root")
        self._stack: list[Span] = [self.root]
        self._lock = threading.Lock()

    @property
    def current(self) -> Span:
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block."""
        sp = Span(name, kind=kind, attrs=dict(attrs))
        with self._lock:
            self._stack[-1].children.append(sp)
            self._stack.append(sp)
        try:
            with measured() as sw:
                yield sp
        finally:
            sp.wall_seconds = sw.elapsed
            with self._lock:
                # Pop back to (and past) this span; tolerate leaf spans a
                # crashed block left open below us.
                while len(self._stack) > 1:
                    top = self._stack.pop()
                    if top is sp:
                        break

    def record_phase(
        self,
        label: str,
        kind: str,
        durations,
        slots: int,
        elapsed: float,
        attrs: dict | None = None,
    ) -> Span:
        """Mirror one ``SimClock`` booking as a leaf under the open span."""
        leaf = Span(
            label,
            kind=kind,
            wall_seconds=float(sum(durations)),
            sim_seconds=float(elapsed),
            durations=tuple(float(d) for d in durations),
            slots=int(slots),
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self._stack[-1].children.append(leaf)
        return leaf

    def record_measure(self, label: str, seconds: float,
                       attrs: dict | None = None) -> Span:
        """A measured sub-step (no simulated time of its own)."""
        leaf = Span(
            label, kind="measure", wall_seconds=float(seconds),
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self._stack[-1].children.append(leaf)
        return leaf


# ---------------------------------------------------------------------------
# Process-local active tracer
# ---------------------------------------------------------------------------

_CURRENT: Tracer | None = None

#: Thread-local tracer override, installed by :func:`capture`.  Executor
#: tasks run their bodies under a capture so the spans they record land
#: in a detached per-task tree (to be grafted under the dispatching
#: phase leaf) instead of racing for the shared process-wide tracer —
#: essential for the thread backend, whose pool threads would otherwise
#: interleave their leaves under whatever span the main thread has open.
_TLS = threading.local()


def current_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is off.

    A thread-local :func:`capture` takes precedence over the
    process-wide tracer installed by :func:`tracing`.
    """
    override = getattr(_TLS, "tracer", None)
    if override is not None:
        return override
    return _CURRENT


@contextmanager
def tracing(name: str = "trace") -> Iterator[Tracer]:
    """Activate a tracer for the ``with`` block.

    Nested activations graft the inner root into the outer tree, so an
    outer trace keeps full visibility while the inner owner (e.g. the SQL
    layer) still gets a self-contained tree of its own.
    """
    global _CURRENT
    outer = _CURRENT
    tracer = Tracer(name)
    if outer is not None:
        with outer._lock:
            outer.current.children.append(tracer.root)
    _CURRENT = tracer
    try:
        with measured() as sw:
            yield tracer
    finally:
        tracer.root.wall_seconds = sw.elapsed
        _CURRENT = outer


@contextmanager
def capture(name: str = "capture") -> Iterator[Tracer]:
    """Collect this thread's spans into a detached tracer.

    Unlike :func:`tracing`, the captured root is *not* grafted into any
    outer tree and the activation is thread-local: executors wrap each
    task body in a capture, then graft the captured children under the
    phase leaf the clock booked (:func:`graft_task_spans`) — which is
    how worker-side span structure survives the thread pool and, via
    ``Span.to_dict``, the process boundary.
    """
    tracer = Tracer(name)
    previous = getattr(_TLS, "tracer", None)
    _TLS.tracer = tracer
    try:
        with measured() as sw:
            yield tracer
    finally:
        tracer.root.wall_seconds = sw.elapsed
        _TLS.tracer = previous


def neutralize_subtree(sp: Span) -> Span:
    """A copy of a captured subtree, safe to graft under a phase leaf.

    Captured ``parallel``/``serial`` bookings become ``worker-parallel``/
    ``worker-serial`` with ``sim_seconds`` moved into
    ``attrs["local_sim_seconds"]``: the parent's clock already booked
    this task's measured duration into the dispatching phase, so the
    grafted copy must contribute neither simulated time
    (``sim_total()``) nor phases (``phases_from_span``) of its own.
    """
    kind = sp.kind
    attrs = dict(sp.attrs)
    if kind in ("parallel", "serial"):
        kind = f"worker-{sp.kind}"
    if sp.sim_seconds:
        attrs["local_sim_seconds"] = sp.sim_seconds
    return Span(
        sp.name,
        kind=kind,
        wall_seconds=sp.wall_seconds,
        sim_seconds=0.0,
        durations=sp.durations,
        slots=sp.slots,
        attrs=attrs,
        children=[neutralize_subtree(c) for c in sp.children],
    )


def graft_task_spans(leaf: Span | None, subtrees: dict[int, list[Span]]) -> None:
    """Attach per-task captured subtrees under a phase leaf.

    ``subtrees`` maps task index to the children of that task's capture
    root.  Tasks that recorded nothing are skipped, so backends that
    cannot capture (or tasks with un-instrumented bodies) stay
    structurally identical to ones that simply had nothing to say.
    """
    if leaf is None:
        return
    for task in sorted(subtrees):
        children = subtrees[task]
        if not children:
            continue
        wrapper = Span(
            f"task[{task}]",
            kind="worker",
            wall_seconds=sum(c.wall_seconds for c in children),
            attrs={"task": task},
            children=[neutralize_subtree(c) for c in children],
        )
        leaf.children.append(wrapper)


def record_phase(
    label: str,
    kind: str,
    durations,
    slots: int,
    elapsed: float,
    attrs: dict | None = None,
) -> Span | None:
    """Module-level hook used by :class:`~repro.simtime.clock.SimClock`.

    Returns the recorded phase leaf (for executors to graft worker
    subtrees under), or ``None`` when tracing is off.
    """
    tracer = current_tracer()
    if tracer is not None:
        return tracer.record_phase(label, kind, durations, slots, elapsed, attrs)
    return None


def record_measure(label: str, seconds: float,
                   attrs: dict | None = None) -> None:
    """Module-level hook used by ``measured(label=...)``."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.record_measure(label, seconds, attrs)


@contextmanager
def span(name: str, kind: str = "span", **attrs) -> Iterator[Span | None]:
    """Open a span on the active tracer; no-op when tracing is off."""
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, kind=kind, **attrs) as sp:
        yield sp
