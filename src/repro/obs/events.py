"""Structured event log — discrete happenings, ring-buffered.

Counters say *how much*, histograms say *how it was distributed*; the
event log says *what happened, in order*: a query was admitted, a batch
was cut, a fault fired, a retry succeeded, a pool worker died and the
pool was rebuilt.  Each record is one flat dict with a monotonic
sequence number and a wall timestamp read through the sanctioned clock
(:data:`repro.simtime.measure.clock_source`), so the log stays honest
under the repo's wall-clock accounting rule (PT002) and tests can
monkeypatch time deterministically.

The log is process-local and bounded (a ring of the most recent
:data:`DEFAULT_CAPACITY` records): it is diagnostics, not a WAL.  It is
surfaced two ways — live over the wire protocol as the ``partime_events``
virtual table (docs/serving.md) and, on server shutdown, as a JSONL file
via ``repro serve --events-jsonl``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Iterable

from repro.simtime.measure import clock_source

#: Default ring capacity: enough to cover a serving smoke run end to end
#: while bounding memory under sustained load.
DEFAULT_CAPACITY = 4096

#: Event kinds the instrumented layers emit, with a one-line meaning.
#: The vocabulary the docs, the ``partime_events`` virtual table and the
#: tests share (mirrors the metric CATALOGUE convention).
EVENT_KINDS: dict[str, str] = {
    "server_started": "the wire-protocol server began accepting connections",
    "server_stopped": "the server shut down (SIGINT/SIGTERM or close)",
    "query_admitted": "a statement entered the admission queue",
    "query_error": "a statement failed and an ErrorResponse was sent",
    "batch_cut": "the batch former cut an admission batch",
    "fault_injected": "the active FaultPlan fired a fault",
    "fault_retry": "an attempt was retried after an injected fault",
    "fault_gave_up": "a task exhausted its RetryPolicy",
    "worker_kill": "a process-pool worker died executing a task",
    "pool_rebuild": "a broken process pool was discarded and rebuilt",
}


class EventLog:
    """A bounded, thread-safe, append-only ring of structured events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields) -> dict:
        """Append one event; returns the record (mostly for tests)."""
        record = {"seq": None, "ts": clock_source(), "kind": kind, **fields}
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._ring.append(record)
        return record

    def records(self) -> list[dict]:
        """The retained events, oldest first (copies, safe to mutate)."""
        with self._lock:
            return [dict(r) for r in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total events emitted, including any the ring has dropped."""
        with self._lock:
            return self._seq

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seq = 0

    def write_jsonl(self, path: str) -> int:
        """Dump the retained events as JSON Lines; returns the count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def read_jsonl(path: str) -> list[dict]:
    """Load a :meth:`EventLog.write_jsonl` file back into records."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize(records: Iterable[dict]) -> dict[str, int]:
    """Event counts by kind — the quick triage view."""
    counts: dict[str, int] = {}
    for record in records:
        kind = record.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return dict(sorted(counts.items()))


_LOG = EventLog()


def events() -> EventLog:
    """The process-local default event log."""
    return _LOG
