"""The interprocedural analysis layer: call graph, effect fixpoint, and
rules PT006–PT010 plus the transitive PT001 extension.

Every rule gets a positive fixture (defect behind at least one helper
call), a clean twin, and where relevant a suppressed variant — driven
through :func:`lint_source` with ``project=True`` so a single module is
analysed as a whole program.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import lint_source
from repro.analysis.flow import (
    CallGraph,
    extract_module,
    solve_effects,
)
from repro.analysis.model import ModuleContext


def lint(src: str, path: str = "src/repro/pipe/fixture.py", select=None):
    return lint_source(textwrap.dedent(src), path=path, select=select)


def rule_ids(findings):
    return [f.rule_id for f in findings]


def build_graph(src: str, path: str = "src/repro/pipe/fixture.py"):
    src = textwrap.dedent(src)
    ctx = ModuleContext(path, src, ast.parse(src))
    return CallGraph.build([extract_module(ctx)])


# ------------------------------------------------------------- call graph


class TestCallGraph:
    def test_resolves_module_functions_and_methods(self):
        graph = build_graph(
            """
            def helper(x):
                return x

            class Runner:
                def go(self):
                    return helper(1)
            """
        )
        quals = set(graph.functions)
        assert any(q.endswith(":helper") for q in quals)
        assert any(q.endswith(":Runner.go") for q in quals)
        (go,) = [f for q, f in graph.functions.items() if q.endswith("Runner.go")]
        resolved = {graph.resolve(go, ref) for ref in go.calls}
        assert any(q and q.endswith(":helper") for q in resolved)

    def test_unresolved_calls_contribute_nothing(self):
        graph = build_graph(
            """
            def go():
                return some_external_lib.frobnicate()
            """
        )
        (go,) = [f for q, f in graph.functions.items() if q.endswith(":go")]
        assert all(graph.resolve(go, ref) is None for ref in go.calls)

    def test_sccs_reverse_topological(self):
        graph = build_graph(
            """
            def a():
                return b()

            def b():
                return a()

            def c():
                return a()
            """
        )
        sccs = graph.sccs()
        flat = [q for scc in sccs for q in scc]
        (cycle,) = [s for s in sccs if len(s) == 2]
        assert {q.rsplit(":", 1)[1] for q in cycle} == {"a", "b"}
        # callees before callers: the a/b cycle comes before c.
        assert flat.index(cycle[0]) < flat.index(
            next(q for q in flat if q.endswith(":c"))
        )


# --------------------------------------------------------- effect fixpoint


class TestEffectFixpoint:
    def effects_of(self, src: str):
        src = textwrap.dedent(src)
        ctx = ModuleContext("src/repro/pipe/fixture.py", src, ast.parse(src))
        graph = CallGraph.build([extract_module(ctx)])
        effects = solve_effects(graph)
        by_name = {}
        for qual in graph.functions:
            by_name[qual.rsplit(":", 1)[1].split(".")[-1]] = effects[qual]
        return by_name

    def test_captured_mutation_propagates_up_call_chain(self):
        eff = self.effects_of(
            """
            SHARED = {}

            def deep(x):
                SHARED[x] = x

            def mid(x):
                return deep(x)

            def task(x):
                return mid(x)
            """
        )
        assert "SHARED" in eff["deep"].mut_captured
        assert "SHARED" in eff["mid"].mut_captured
        assert "SHARED" in eff["task"].mut_captured
        # The witness chain records the route, deepest site last.
        w = eff["task"].mut_captured["SHARED"]
        assert len(w.chain) >= 1

    def test_wall_clock_and_random_propagate(self):
        eff = self.effects_of(
            """
            import random
            import time

            def stamp():
                return time.time()

            def draw():
                return random.random()

            def task(x):
                return stamp() + draw() + x
            """
        )
        assert eff["task"].wall_clock is not None
        assert eff["task"].unseeded_random is not None
        assert eff["stamp"].unseeded_random is None

    def test_recursion_converges(self):
        eff = self.effects_of(
            """
            ACC = []

            def ping(n):
                ACC.append(n)
                return pong(n - 1) if n else 0

            def pong(n):
                return ping(n - 1) if n else 0
            """
        )
        assert "ACC" in eff["ping"].mut_captured
        assert "ACC" in eff["pong"].mut_captured

    def test_param_mutation_flows_through_helper(self):
        eff = self.effects_of(
            """
            def poke(d):
                d.update({1: 2})

            def relay(d):
                poke(d)
            """
        )
        assert 0 in eff["poke"].mutates_params
        assert 0 in eff["relay"].mutates_params


# ------------------------------------------------- PT001 (interprocedural)


class TestTransitiveSharedMutation:
    def test_positive_mutation_two_helpers_deep(self):
        findings = lint(
            """
            TOTALS = {}

            def record(key):
                TOTALS[key] = 1

            def work(chunk):
                record(len(chunk))
                return len(chunk)

            def run(executor, chunks):
                return executor.map_parallel(work, chunks, label="p.scan")
            """
        )
        assert "PT001" in rule_ids(findings)
        f = next(f for f in findings if f.rule_id == "PT001")
        assert "TOTALS" in f.message
        assert "work" in f.message

    def test_negative_pure_helper_chain(self):
        findings = lint(
            """
            def record(key):
                return key + 1

            def work(chunk):
                return record(len(chunk))

            def run(executor, chunks):
                return executor.map_parallel(work, chunks, label="p.scan")
            """
        )
        assert "PT001" not in rule_ids(findings)

    def test_local_mutation_inside_task_is_fine(self):
        findings = lint(
            """
            def work(chunk):
                acc = {}
                acc[0] = len(chunk)
                return acc

            def run(executor, chunks):
                return executor.map_parallel(work, chunks, label="p.scan")
            """
        )
        assert "PT001" not in rule_ids(findings)


# ------------------------------------------------------------------ PT006


class TestUnpicklableTaskCapture:
    def test_positive_lambda(self):
        findings = lint(
            """
            def run(executor, chunks):
                return executor.map_parallel(lambda c: len(c), chunks, label="p")
            """,
        )
        assert "PT006" in rule_ids(findings)

    def test_positive_nested_function_by_name(self):
        findings = lint(
            """
            def run(executor, chunks):
                def work(c):
                    return len(c)
                return executor.map_parallel(work, chunks, label="p")
            """
        )
        pt6 = [f for f in findings if f.rule_id == "PT006"]
        assert pt6 and "nested function" in pt6[0].message

    def test_positive_constructor_with_lock(self):
        findings = lint(
            """
            import threading

            def run(executor, chunks):
                lock = threading.Lock()
                return executor.map_parallel(Task(lock), chunks, label="p")
            """
        )
        pt6 = [f for f in findings if f.rule_id == "PT006"]
        assert pt6 and "picklable" in pt6[0].message

    def test_negative_module_level_task(self):
        findings = lint(
            """
            def work(c):
                return len(c)

            def run(executor, chunks):
                return executor.map_parallel(work, chunks, label="p")
            """
        )
        assert "PT006" not in rule_ids(findings)

    def test_run_serial_exempt(self):
        findings = lint(
            """
            def run(executor):
                return executor.run_serial(lambda: 42, label="p.merge")
            """
        )
        assert "PT006" not in rule_ids(findings)

    def test_suppressed(self):
        findings = lint(
            """
            def run(executor, chunks):
                return executor.map_parallel(
                    lambda c: len(c), chunks, label="p"  # partime: ignore[PT006, PT003]
                )
            """
        )
        assert "PT006" not in rule_ids(findings)


# ------------------------------------------------------------------ PT007


class TestShmViewEscape:
    def test_positive_view_used_after_window(self):
        findings = lint(
            """
            def task(handle):
                chunk = ShmChunk(handle)
                with chunk.open() as c:
                    view = c.column("x")
                return view
            """
        )
        pt7 = [f for f in findings if f.rule_id == "PT007"]
        assert pt7 and "window" in pt7[0].message

    def test_positive_return_inside_window(self):
        findings = lint(
            """
            def task(handle):
                chunk = ShmChunk(handle)
                with chunk.open() as c:
                    return c.column("x")
            """
        )
        assert "PT007" in rule_ids(findings)

    def test_negative_materialized_inside_window(self):
        findings = lint(
            """
            import numpy as np

            def task(handle):
                chunk = ShmChunk(handle)
                with chunk.open() as c:
                    out = np.array(c.column("x"))
                return out
            """
        )
        assert "PT007" not in rule_ids(findings)

    def test_negative_method_sanitizer(self):
        findings = lint(
            """
            def task(handle):
                chunk = ShmChunk(handle)
                with chunk.open() as c:
                    out = c.column("x").copy()
                return out
            """
        )
        assert "PT007" not in rule_ids(findings)

    def test_taint_through_view_returning_helper(self):
        findings = lint(
            """
            def slice_first(arr):
                return arr[:10]

            def task(handle):
                chunk = ShmChunk(handle)
                with chunk.open() as c:
                    raw = c.column("x")
                    head = slice_first(raw)
                return head
            """
        )
        assert "PT007" in rule_ids(findings)


# ------------------------------------------------------------------ PT008


class TestNondeterminismSource:
    def test_positive_unseeded_random_behind_helper(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.random()

            def work(c):
                return len(c) + jitter()

            def run(executor, chunks):
                return executor.map_parallel(work, chunks, label="p")
            """
        )
        pt8 = [f for f in findings if f.rule_id == "PT008"]
        # seed-site finding in jitter() plus dispatch-site finding in run().
        assert len(pt8) >= 2
        assert any("transitively" in f.message for f in pt8)

    def test_positive_set_items(self):
        findings = lint(
            """
            def work(c):
                return c

            def run(executor):
                return executor.map_parallel(work, {1, 2, 3}, label="p")
            """
        )
        pt8 = [f for f in findings if f.rule_id == "PT008"]
        assert any("set" in f.message for f in pt8)

    def test_positive_set_iteration(self):
        findings = lint(
            """
            def order(keys):
                return [k for k in {1, 2} | set(keys)]
            """
        )
        assert "PT008" in rule_ids(findings)

    def test_negative_sorted_set_is_fine(self):
        findings = lint(
            """
            def order(keys):
                return sorted(k for k in set(keys))
            """
        )
        assert "PT008" not in rule_ids(findings)

    def test_negative_seeded_rng(self):
        findings = lint(
            """
            import numpy as np

            def work(c, rng):
                return rng.integers(0, 10)

            def make_rng(seed):
                return np.random.default_rng(seed)
            """
        )
        assert "PT008" not in rule_ids(findings)


# ------------------------------------------------------------------ PT009


class TestFaultBlindPhase:
    def test_positive_direct_parallel_booking(self):
        findings = lint(
            """
            def phase(clock, durations):
                clock.parallel("scan", durations, slots=2)
            """
        )
        pt9 = [f for f in findings if f.rule_id == "PT009"]
        assert pt9 and "FaultInjector" in pt9[0].message

    def test_negative_with_fault_session(self):
        findings = lint(
            """
            def phase(clock, injector, durations):
                session = injector.begin_phase("scan")
                clock.parallel("scan", durations, slots=2)
                session.finish(clock)
            """
        )
        assert "PT009" not in rule_ids(findings)

    def test_negative_fault_site_behind_helper(self):
        findings = lint(
            """
            def _guarded(injector, label):
                return injector.begin_phase(label)

            def phase(clock, injector, durations):
                session = _guarded(injector, "scan")
                clock.parallel("scan", durations, slots=2)
                session.finish(clock)
            """
        )
        assert "PT009" not in rule_ids(findings)

    def test_serial_bookings_exempt(self):
        findings = lint(
            """
            def phase(clock):
                clock.serial("merge", 0.5)
            """
        )
        assert "PT009" not in rule_ids(findings)

    def test_exempt_paths(self):
        findings = lint(
            """
            def phase(clock, durations):
                clock.parallel("scan", durations, slots=2)
            """,
            path="src/repro/simtime/fixture.py",
        )
        assert "PT009" not in rule_ids(findings)


# ------------------------------------------------------------------ PT010


class TestTransitiveImpureAggregate:
    def test_positive_combine_delegates_to_mutator(self):
        findings = lint(
            """
            def _merge(a, b):
                a.update(b)
                return a

            class MultisetAggregate:
                def combine(self, a, b):
                    return _merge(a, b)
            """
        )
        pt10 = [f for f in findings if f.rule_id == "PT010"]
        assert pt10 and "_merge" in pt10[0].message

    def test_positive_two_levels_deep(self):
        findings = lint(
            """
            def _poke(d, other):
                d.update(other)

            def _merge(a, b):
                _poke(a, b)
                return a

            class MultisetAggregate:
                def combine(self, a, b):
                    return _merge(a, b)
            """
        )
        assert "PT010" in rule_ids(findings)

    def test_negative_pure_helper(self):
        findings = lint(
            """
            def _merge(a, b):
                out = dict(a)
                out.update(b)
                return out

            class MultisetAggregate:
                def combine(self, a, b):
                    return _merge(a, b)
            """
        )
        assert "PT010" not in rule_ids(findings)

    def test_accumulator_first_arg_of_apply_unprotected(self):
        # apply(acc, delta): the accumulator is the method's own state and
        # may be mutated; only the *delta* (arg 2) is protected.
        findings = lint(
            """
            def _absorb(acc, delta):
                acc.update(delta)
                return acc

            class SumAggregate:
                def apply(self, acc, delta):
                    return _absorb(acc, delta)
            """
        )
        assert "PT010" not in rule_ids(findings)

    def test_non_aggregate_class_ignored(self):
        findings = lint(
            """
            def _merge(a, b):
                a.update(b)
                return a

            class Planner:
                def combine(self, a, b):
                    return _merge(a, b)
            """
        )
        assert "PT010" not in rule_ids(findings)


# -------------------------------------------------------------- ordering


class TestFindingOrder:
    def test_findings_sorted_by_path_line_col_rule(self):
        src = """
            import random
            import time

            def late():
                return time.time()

            def early():
                return random.random()
            """
        findings = lint(src)
        keys = [(f.path, f.line, f.col, f.rule_id) for f in findings]
        assert keys == sorted(keys)
