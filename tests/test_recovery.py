"""WAL, crash recovery and hot-standby replication (Section 4.1)."""

from __future__ import annotations

import json

import pytest

from repro.storage import Cluster, InsertOp, SelectQuery, UpdateOp
from repro.storage.queries import DeleteOp
from repro.storage.recovery import (
    WriteAheadLog,
    decode_op,
    encode_op,
    recover_cluster,
)
from repro.temporal import ColumnEquals, CurrentVersion, Interval, TrueP
from repro.workloads import AmadeusConfig, AmadeusWorkload
from repro.workloads.amadeus import bookings_schema
from tests.conftest import build_employee_table, employee_schema


class TestOpCodec:
    def test_insert_roundtrip(self):
        op = InsertOp({"name": "X", "descr": "D", "salary": 5},
                      {"bt": Interval(3, 9)})
        decoded = decode_op(encode_op(op))
        assert isinstance(decoded, InsertOp)
        assert decoded.values == {"name": "X", "descr": "D", "salary": 5}
        assert decoded.business == {"bt": Interval(3, 9)}

    def test_update_roundtrip(self):
        op = UpdateOp("Anna", {"salary": 7}, {"bt": 42})
        decoded = decode_op(encode_op(op))
        assert isinstance(decoded, UpdateOp)
        assert decoded.key_value == "Anna"
        assert decoded.changes == {"salary": 7}
        assert decoded.business == {"bt": 42}

    def test_delete_roundtrip(self):
        op = DeleteOp(17, None)
        decoded = decode_op(encode_op(op))
        assert isinstance(decoded, DeleteOp)
        assert decoded.key_value == 17 and decoded.business is None

    def test_read_op_rejected(self):
        with pytest.raises(TypeError):
            encode_op(SelectQuery(TrueP()))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_op({"kind": "nope"})


class TestWal:
    def test_append_and_replay(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with WriteAheadLog(path) as wal:
            wal.append(0, InsertOp({"x": 1}, None))
            wal.append(1, DeleteOp(5, None))
            assert wal.appended == 2
        records = list(WriteAheadLog.replay(path))
        assert [v for v, _ in records] == [0, 1]
        assert isinstance(records[1][1], DeleteOp)

    def test_torn_tail_skipped(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with WriteAheadLog(path) as wal:
            wal.append(0, InsertOp({"x": 1}, None))
        with open(path, "a") as f:
            f.write('{"version": 1, "op": {"kind": "ins')  # crash mid-write
        records = list(WriteAheadLog.replay(path))
        assert len(records) == 1  # torn record never acknowledged


class TestRecovery:
    def test_cluster_recovers_exact_state(self, tmp_path):
        """Replay reconstructs byte-identical partitions."""
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        schema = employee_schema()
        from repro.temporal import TemporalTable

        cluster = Cluster.from_table(TemporalTable(schema), 3, wal=wal)
        ops = [
            InsertOp({"name": "Anna", "descr": "CEO", "salary": 10}, {"bt": 0}),
            InsertOp({"name": "Ben", "descr": "Coder", "salary": 5}, {"bt": 0}),
            UpdateOp("Anna", {"salary": 15}, {"bt": 10}),
            InsertOp({"name": "Chris", "descr": "Coder", "salary": 5}, {"bt": 3}),
            DeleteOp("Ben", {"bt": 20}),
            UpdateOp("Chris", {"descr": "Manager"}, {"bt": 5}),
        ]
        for op in ops:  # one txn each, as in the Amadeus update stream
            cluster.execute_batch([op])
        wal.close()

        recovered = recover_cluster(schema, path, num_storage=3)
        assert recovered._version == cluster._version  # noqa: SLF001
        for orig, rec in zip(cluster.nodes, recovered.nodes):
            assert len(orig.table) == len(rec.table)
            for col in schema.physical_columns():
                assert orig.table.column(col).tolist() == rec.table.column(col).tolist()

    def test_recovered_cluster_answers_queries(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        workload = AmadeusWorkload(AmadeusConfig(num_bookings=300, seed=5))
        wal = WriteAheadLog(path)
        from repro.temporal import TemporalTable

        cluster = Cluster.from_table(
            TemporalTable(bookings_schema()), 2, wal=wal
        )
        inserts = workload.insert_stream(40)
        cluster.execute_batch(inserts)
        updates = [
            UpdateOp(op.values["booking_id"], {"fare": 1.0}) for op in inserts[:10]
        ]
        cluster.execute_batch(updates)
        wal.close()

        recovered = recover_cluster(bookings_schema(), path, num_storage=2)
        probe = SelectQuery(CurrentVersion("tt"))
        a, _ = cluster.execute_query(probe)
        b, _ = recovered.execute_query(SelectQuery(CurrentVersion("tt")))
        assert a == b == 40

    def test_replay_version_mismatch_detected(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w") as f:
            record = {"version": 5, "op": encode_op(InsertOp({"x": 1}, None))}
            f.write(json.dumps(record) + "\n")
        from repro.temporal import Column, ColumnType, TableSchema

        schema = TableSchema("t", [Column("x", ColumnType.INT)], ["bt"], key="x")
        with pytest.raises(RuntimeError):
            recover_cluster(schema, path, num_storage=1)


class TestStandby:
    def _twin_clusters(self):
        table = build_employee_table()
        primary = Cluster.from_table(table, 3)
        standby = Cluster.from_table(table, 3)
        primary.attach_standby(standby)
        return primary, standby

    def test_standby_tracks_writes(self):
        primary, standby = self._twin_clusters()
        primary.execute_batch([UpdateOp("Anna", {"salary": 99_000}, {"bt": 9_500})])
        for p_node, s_node in zip(primary.nodes, standby.nodes):
            assert p_node.table.column("salary").tolist() == s_node.table.column(
                "salary"
            ).tolist()

    def test_failover_preserves_answers(self):
        primary, _standby = self._twin_clusters()
        primary.execute_batch([UpdateOp("Ben", {"salary": 1}, {"bt": 9_500})])
        probe = SelectQuery(ColumnEquals("name", "Ben") & CurrentVersion("tt"))
        before, _ = primary.execute_query(probe)
        primary.failover_node(1)  # shoot down a straggler
        after, _ = primary.execute_query(
            SelectQuery(ColumnEquals("name", "Ben") & CurrentVersion("tt"))
        )
        assert before == after

    def test_standby_validation(self):
        table = build_employee_table()
        primary = Cluster.from_table(table, 3)
        with pytest.raises(ValueError):
            primary.attach_standby(Cluster.from_table(table, 2))
        with pytest.raises(RuntimeError):
            primary.failover_node(0)
        smaller = Cluster.from_table(table, 3)
        primary.attach_standby(smaller)
        with pytest.raises(IndexError):
            primary.failover_node(9)
