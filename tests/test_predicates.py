"""Predicates: vectorized masks must agree with per-record matches."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.temporal import (
    And,
    Column,
    ColumnBetween,
    ColumnEquals,
    ColumnIn,
    ColumnType,
    CurrentVersion,
    FOREVER,
    Not,
    Or,
    Overlaps,
    TableSchema,
    TemporalTable,
    TimeTravel,
    TrueP,
)


@pytest.fixture(scope="module")
def table():
    schema = TableSchema(
        "t",
        [Column("k", ColumnType.INT), Column("grp", ColumnType.INT)],
        business_dims=["bt"],
        key="k",
    )
    t = TemporalTable(schema)
    rng = np.random.default_rng(17)
    for i in range(60):
        start = int(rng.integers(0, 50))
        end = int(start + rng.integers(1, 40))
        t.insert(
            {"k": i, "grp": i % 5},
            {"bt": (start, FOREVER if i % 7 == 0 else end)},
        )
    for i in range(0, 30, 3):
        t.update(i, {"grp": (i + 1) % 5})
    return t


ALL_PREDICATES = [
    TrueP(),
    ColumnEquals("grp", 2),
    ColumnIn("grp", [0, 3]),
    ColumnBetween("k", 10, 40),
    TimeTravel("tt", 5),
    TimeTravel("bt", 25),
    Overlaps("bt", 10, 30),
    CurrentVersion("tt"),
    ColumnEquals("grp", 1) & Overlaps("bt", 0, 20),
    ColumnEquals("grp", 1) | ColumnEquals("grp", 2),
    ~ColumnEquals("grp", 0),
    And([TrueP(), CurrentVersion("tt"), ColumnBetween("k", 0, 50)]),
    Or([TimeTravel("tt", 0), TimeTravel("tt", 100)]),
    Not(Overlaps("bt", 0, 1000)),
]


@pytest.mark.parametrize("pred", ALL_PREDICATES, ids=lambda p: type(p).__name__ + str(id(p) % 97))
def test_mask_matches_consistency(table, pred):
    """The vectorized mask and the per-record matches() must agree on
    every row — the contract shared by the pure and vectorized paths."""
    chunk = table.chunk()
    mask = pred.mask(chunk)
    assert mask.dtype == bool and len(mask) == len(chunk)
    for i, record in enumerate(chunk.records()):
        assert bool(mask[i]) == pred.matches(record), f"row {i}"


def test_combinator_operators(table):
    chunk = table.chunk()
    a = ColumnEquals("grp", 1)
    b = Overlaps("bt", 5, 15)
    assert ((a & b).mask(chunk) == (a.mask(chunk) & b.mask(chunk))).all()
    assert ((a | b).mask(chunk) == (a.mask(chunk) | b.mask(chunk))).all()
    assert ((~a).mask(chunk) == ~a.mask(chunk)).all()


def test_time_travel_half_open(table):
    """A version starting exactly at t is visible at t; one ending at t is
    not (half-open intervals)."""
    chunk = table.chunk()
    starts = chunk.column("tt_start")
    ends = chunk.column("tt_end")
    for t in (0, 1, 5):
        mask = TimeTravel("tt", t).mask(chunk)
        expected = (starts <= t) & (t < ends)
        assert (mask == expected).all()


def test_overlaps_boundary(table):
    chunk = table.chunk()
    # An interval [10, 20) does not overlap query [20, 30).
    pred = Overlaps("bt", 20, 30)
    for record in chunk.records():
        if record["bt_start"] == 10 and record["bt_end"] == 20:
            assert not pred.matches(record)


def test_current_version_counts(table):
    chunk = table.chunk()
    n_current = int(CurrentVersion("tt").mask(chunk).sum())
    # Exactly one current version per logical key.
    assert n_current == 60


@given(st.integers(-5, 60), st.integers(1, 60))
def test_overlaps_equals_interval_logic(lo, width):
    """Overlaps(mask) must equal the Interval.overlaps relation."""
    from repro.temporal.timestamps import Interval

    schema = TableSchema("x", [Column("k", ColumnType.INT)], ["bt"], key="k")
    t = TemporalTable(schema)
    spans = [(0, 10), (10, 20), (5, 25), (30, FOREVER)]
    for i, (s, e) in enumerate(spans):
        t.insert({"k": i}, {"bt": (s, e)})
    mask = Overlaps("bt", lo, lo + width).mask(t.chunk())
    for i, (s, e) in enumerate(spans):
        assert bool(mask[i]) == Interval(s, e).overlaps(Interval(lo, lo + width))
