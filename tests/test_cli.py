"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDemo:
    def test_demo_prints_all_three_figures(self, capsys):
        code, out, _err = run(capsys, "demo")
        assert code == 0
        assert "Figure 2" in out and "Figure 3" in out and "Figure 4" in out
        assert "23000" in out  # the 1995 payroll of Figure 2/4


class TestSql:
    def test_count_on_employee(self, capsys):
        code, out, _ = run(
            capsys, "sql", "SELECT COUNT(*) FROM employee WHERE CURRENT(tt)"
        )
        assert code == 0
        assert out.strip() == "5"  # current versions of Figure 1

    def test_aggregation_on_employee(self, capsys):
        code, out, _ = run(
            capsys, "sql",
            "SELECT SUM(salary) FROM employee GROUP BY TEMPORAL (tt)",
        )
        assert code == 0
        assert "tt_start" in out and "SUM" in out

    def test_tpcbih_dataset(self, capsys):
        code, out, _ = run(
            capsys, "sql", "--dataset", "tpcbih", "--scale", "0.1",
            "SELECT COUNT(*) FROM customer WHERE CURRENT(tt)",
        )
        assert code == 0
        assert int(out.strip()) > 0

    def test_explain(self, capsys):
        code, out, _ = run(
            capsys, "sql", "--explain",
            "SELECT SUM(salary) FROM employee GROUP BY TEMPORAL (bt, tt)",
        )
        assert code == 0
        assert "ParTime temporal aggregation" in out

    def test_sql_error_is_reported(self, capsys):
        code, _out, err = run(capsys, "sql", "SELECT FROG(x) FROM employee")
        assert code == 1
        assert "unknown aggregate" in err

    def test_unknown_table_reported(self, capsys):
        code, _out, err = run(capsys, "sql", "SELECT COUNT(*) FROM nope")
        assert code == 1
        assert "unknown table" in err


class TestTables:
    def test_tables_listing(self, capsys):
        code, out, _ = run(capsys, "tables", "--dataset", "tpcbih",
                           "--scale", "0.1")
        assert code == 0
        assert "customer" in out and "orders" in out
        assert "time dimensions: bt, tt" in out


class TestExperiments:
    def test_experiment_catalogue(self, capsys):
        code, out, _ = run(capsys, "experiments")
        assert code == 0
        assert "Figure 19" in out and "bench_fig19_parallelization.py" in out
        assert out.count("Ablation") >= 6


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
