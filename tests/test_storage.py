"""The Crescando substrate: partitioning, shared scans, cluster batches."""

from __future__ import annotations

import pytest

from repro.core import ParTime, TemporalAggregationQuery, WindowSpec
from repro.storage import (
    Cluster,
    CrescandoEngine,
    DeleteOp,
    HashPartitioner,
    InsertOp,
    RangePartitioner,
    RoundRobinPartitioner,
    SelectQuery,
    TemporalAggQuery,
    UpdateOp,
)
from repro.storage.partitioning import split_table
from repro.temporal import ColumnEquals, CurrentVersion, Overlaps
from tests.conftest import BT_1993, BT_1995, BT_1996, build_employee_table


@pytest.fixture
def table():
    return build_employee_table()


# ----------------------------------------------------------- partitioning


def test_round_robin_balance(table):
    parts = split_table(table, RoundRobinPartitioner(), 4)
    sizes = [len(p) for p in parts]
    assert sum(sizes) == len(table)
    assert max(sizes) - min(sizes) <= 1


def test_hash_partitioner_colocates_entities(table):
    parts = split_table(table, HashPartitioner("name"), 3)
    for part in parts:
        names = set(part.column("name"))
        # every version of an entity lands on the same node
        for other in parts:
            if other is part:
                continue
            assert names.isdisjoint(set(other.column("name")))


def test_range_partitioner_skews_time(table):
    parts = split_table(table, RangePartitioner("tt_start"), 2)
    assert sum(len(p) for p in parts) == len(table)
    lows = parts[0].column("tt_start")
    highs = parts[1].column("tt_start")
    if len(lows) and len(highs):
        assert lows.max() <= highs.min()


def test_partitions_preserve_version_counter(table):
    parts = split_table(table, RoundRobinPartitioner(), 3)
    for p in parts:
        assert p.current_version == table.current_version


# ----------------------------------------------------------------- scans


@pytest.mark.parametrize("num_storage", [1, 2, 5])
def test_cluster_select_counts(table, num_storage):
    cluster = Cluster.from_table(table, num_storage)
    op = SelectQuery(ColumnEquals("name", "Ben"))
    result = cluster.execute_batch([op])
    assert result.results[op.op_id] == 4  # Ben has 4 versions in Figure 1


@pytest.mark.parametrize("num_storage", [1, 2, 3, 9])
def test_cluster_temporal_aggregation_matches_partime(table, num_storage):
    cluster = Cluster.from_table(table, num_storage)
    query = TemporalAggregationQuery(
        varied_dims=("tt",), value_column="salary", aggregate="sum",
        predicate=Overlaps("bt", BT_1995, BT_1996),
    )
    op = TemporalAggQuery(query)
    result, seconds = cluster.execute_query(op)
    expected = ParTime().execute(table, query, workers=num_storage)
    assert result.pairs() == expected.pairs()
    assert seconds > 0


def test_cluster_windowed_and_multidim(table):
    cluster = Cluster.from_table(table, 3, num_aggregators=2)
    windowed = TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("bt",), value_column="salary",
            predicate=CurrentVersion("tt"),
            window=WindowSpec(BT_1993, 365, 3),
        )
    )
    multidim = TemporalAggQuery(
        TemporalAggregationQuery(
            varied_dims=("bt", "tt"), value_column="salary"
        )
    )
    batch = cluster.execute_batch([windowed, multidim])
    wres = batch.results[windowed.op_id]
    assert wres.points()[-1] == (BT_1995, 23_000.0)
    mres = batch.results[multidim.op_id]
    reference = ParTime().execute(
        table,
        TemporalAggregationQuery(varied_dims=("bt", "tt"), value_column="salary"),
        workers=3,
    )
    grid_bt = sorted({iv.start for row in reference for iv in (row.intervals[0],)})
    for bt in grid_bt:
        for tt in (0, 6, 8, 12, 20):
            assert mres.value_at(bt, tt) == reference.value_at(bt, tt)


def test_multidim_pivot_fixed_cluster_wide(table):
    cluster = Cluster.from_table(table, 2)
    op = TemporalAggQuery(
        TemporalAggregationQuery(varied_dims=("bt", "tt"), value_column="salary")
    )
    fixed = cluster._fix_pivot(op)  # noqa: SLF001
    assert fixed.query.pivot in ("bt", "tt")


# ---------------------------------------------------------------- writes


def test_cluster_broadcast_update(table):
    cluster = Cluster.from_table(table, 3)
    version_before = max(n.table.current_version for n in cluster.nodes)
    op = UpdateOp("Anna", {"salary": 20_000}, {"bt": BT_1995})
    batch = cluster.execute_batch([op])
    assert batch.results[op.op_id]  # some rows were created somewhere
    for node in cluster.nodes:
        assert node.table.current_version == version_before + 1

    # The update is visible to subsequent queries.
    query = TemporalAggregationQuery(
        varied_dims=("tt",), value_column="salary",
        predicate=Overlaps("bt", BT_1995, BT_1996),
    )
    result, _ = cluster.execute_query(TemporalAggQuery(query))
    assert result.pairs()[-1][1] == 28_000  # 23k - 15k(Anna) + 20k(Anna)


def test_cluster_insert_routes_round_robin(table):
    cluster = Cluster.from_table(table, 3)
    sizes_before = [len(n) for n in cluster.nodes]
    ops = [
        InsertOp(
            {"name": f"N{i}", "descr": "Coder", "salary": 1_000},
            {"bt": BT_1995},
        )
        for i in range(6)
    ]
    cluster.execute_batch(ops)
    sizes_after = [len(n) for n in cluster.nodes]
    assert [a - b for a, b in zip(sizes_after, sizes_before)] == [2, 2, 2]


def test_cluster_delete(table):
    cluster = Cluster.from_table(table, 2)
    op = DeleteOp("Ben", {"bt": BT_1993})
    cluster.execute_batch([op])
    sel = SelectQuery(ColumnEquals("name", "Ben") & CurrentVersion("tt"))
    batch = cluster.execute_batch([sel])
    assert batch.results[sel.op_id] == 0


def test_mixed_batch_write_then_read_consistency(table):
    """Reads in a batch observe the batch's earlier writes (the shared
    scan processes updates and queries in the same cycle)."""
    cluster = Cluster.from_table(table, 2)
    upd = UpdateOp("Ben", {"salary": 9_000}, {"bt": BT_1995})
    query = TemporalAggregationQuery(
        varied_dims=("tt",), value_column="salary",
        predicate=Overlaps("bt", BT_1995, BT_1996),
    )
    agg = TemporalAggQuery(query)
    batch = cluster.execute_batch([upd, agg])
    assert batch.results[agg.op_id].pairs()[-1][1] == 24_000  # 23k - 8k + 9k


# ----------------------------------------------------------- cost shapes


def test_sharing_cheaper_than_no_sharing(table):
    """The defining property of the shared scan: a batch of queries costs
    less than the sum of individual scans (base pass amortised)."""
    ops = [SelectQuery(ColumnEquals("name", "Anna")) for _ in range(20)]
    shared = Cluster.from_table(table, 2, sharing=True)
    unshared = Cluster.from_table(table, 2, sharing=False)
    b1 = shared.execute_batch(list(ops))
    b2 = unshared.execute_batch(list(ops))
    assert b1.scan_seconds < b2.scan_seconds


def test_engine_facade(table):
    engine = CrescandoEngine.response_time_config(3)
    load_s = engine.bulkload(table)
    assert load_s >= 0
    assert engine.cluster.num_storage == 2
    query = TemporalAggregationQuery(
        varied_dims=("tt",), value_column="salary",
        predicate=Overlaps("bt", BT_1995, BT_1996),
    )
    result, seconds = engine.temporal_aggregation(query)
    assert result.pairs()[-1][1] == 23_000
    count, _ = engine.select(ColumnEquals("name", "Chris"))
    assert count == 2
    assert engine.memory_bytes() > 0


def test_engine_with_cores_split():
    engine = CrescandoEngine.with_cores(18)
    assert engine.num_storage == 9 and engine.num_aggregators == 9
    with pytest.raises(ValueError):
        CrescandoEngine.with_cores(1)
